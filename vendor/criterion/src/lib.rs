//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a small, fixed number of iterations and
//! prints a mean wall-clock time per iteration. It keeps the workspace's
//! `cargo bench` targets compiling and runnable with no network access; it
//! makes no statistical claims (no warm-up, outlier analysis, or reports).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Iterations per benchmark. Small on purpose: this harness smoke-runs
/// benches rather than measuring them rigorously.
const ITERATIONS: u32 = 10;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (accepted for API compatibility).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Prints the final summary (no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the group's nominal sample size (accepted for compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher { total_nanos: 0 };
        f(&mut bencher, input);
        report(&label, bencher.total_nanos);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            std::hint::black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { total_nanos: 0 };
    f(&mut bencher);
    report(label, bencher.total_nanos);
}

fn report(label: &str, total_nanos: u128) {
    let per_iter = total_nanos / u128::from(ITERATIONS.max(1));
    println!("bench {label:<50} {:>12} ns/iter (smoke run)", per_iter);
}

/// Registers a set of benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_groups_and_functions() {
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, n| b.iter(|| n * 2));
        group.bench_with_input(BenchmarkId::new("f", 9), &9, |b, n| b.iter(|| n + 1));
        group.finish();
    }
}
