//! Offline stand-in for the `proptest` crate.
//!
//! This workspace must build with no network access, so the proptest API
//! surface its property suites use is reimplemented here: the [`Strategy`]
//! trait (map/filter/recursive/boxed), tuple and range strategies,
//! `prop::sample::select`, `prop::collection::vec`, and the `proptest!`,
//! `prop_oneof!`, `prop_assert*!`, `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its values via the assertion
//!   message only;
//! * deterministic generation seeded from the test name, so runs are
//!   reproducible (and failures stable) across invocations;
//! * `prop_assume!` skips the current case instead of resampling.

#![forbid(unsafe_code)]

/// Deterministic generation source and per-suite configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 generation source (deterministic per test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name (FNV-1a).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "TestRng::below: zero bound");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// The [`Strategy`] trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the generation source.
    pub trait Strategy: Clone + 'static {
        /// The type of generated values.
        type Value: 'static;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy::from_fn(move |rng| self.generate(rng))
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::from_fn(move |rng| f(self.generate(rng)))
        }

        /// Keeps only values satisfying `pred`, retrying generation.
        ///
        /// # Panics
        ///
        /// Panics (failing the test) if 1000 consecutive candidates are
        /// rejected.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            BoxedStrategy::from_fn(move |rng| {
                for _ in 0..1000 {
                    let v = self.generate(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("prop_filter rejected 1000 consecutive candidates: {whence}")
            })
        }

        /// Builds a recursive strategy: `self` generates leaves, and `f`
        /// wraps an inner strategy into one more layer. `depth` bounds the
        /// layer count; the remaining parameters (desired size, expected
        /// branch factor) are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S2: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let deeper = f(current).boxed();
                current = BoxedStrategy::from_fn(move |rng| {
                    // Mix leaves back in so expected size stays bounded.
                    if rng.below(4) == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                });
            }
            current
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T> {
            self
        }
    }

    /// Strategy producing one fixed value (cloned per case).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among boxed alternatives (the `prop_oneof!` engine).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn weighted_union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: no arms with nonzero weight");
        BoxedStrategy::from_fn(move |rng| {
            let mut draw = rng.next_u64() % total;
            for (w, strat) in &arms {
                let w = u64::from(*w);
                if draw < w {
                    return strat.generate(rng);
                }
                draw -= w;
            }
            unreachable!("weighted draw out of range")
        })
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy on empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy on empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized + 'static {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Bias toward ASCII (including controls) but keep some
            // multi-byte code points for parser fuzzing.
            match rng.next_u64() % 4 {
                0..=2 => (rng.next_u64() % 128) as u8 as char,
                _ => char::from_u32((rng.next_u64() % 0x110000) as u32).unwrap_or('\u{fffd}'),
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 48) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    /// The strategy for arbitrary boxed values, mirrored for completeness.
    pub fn arbitrary_with<T: Arbitrary>() -> BoxedStrategy<T> {
        any::<T>().boxed()
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};

    /// An inclusive size band for generated containers.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` whose length falls in `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let n = size.lo + rng.below(size.hi - size.lo + 1);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// `prop::sample` — choosing from explicit candidate pools.
pub mod sample {
    use crate::strategy::BoxedStrategy;

    /// Uniform choice from a non-empty vector of candidates.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
        assert!(!items.is_empty(), "select from empty pool");
        BoxedStrategy::from_fn(move |rng| items[rng.below(items.len())].clone())
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced re-exports (`prop::sample::select`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header and any number of
/// `fn name(arg in strategy, ...) { body }` items (attributes and doc
/// comments on each are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let strategy = ($($strat,)+);
            for _case in 0..config.cases {
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                // A closure per case so prop_assume! can skip via return.
                let case = move || $body;
                case();
            }
        }
    )*};
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples destructure.
        #[test]
        fn ranges_and_tuples(x in 0u8..3, (lo, hi) in (0u64..10, 10u64..20)) {
            prop_assert!(x < 3);
            prop_assert!(lo < hi);
        }

        /// prop_oneof draws every arm eventually; prop_assume skips.
        #[test]
        fn oneof_and_assume(v in prop_oneof![3 => 0usize..4, 1 => 10usize..14], b in any::<bool>()) {
            prop_assume!(v != 2);
            prop_assert!(v < 4 || (10..14).contains(&v));
            let _ = b;
        }
    }

    #[test]
    fn vec_and_select_and_filter() {
        let mut rng = crate::test_runner::TestRng::from_name("smoke");
        let strat = prop::collection::vec(
            prop::sample::select(vec!["a", "b"]).prop_map(str::to_owned),
            1..=3,
        )
        .prop_filter("nonempty", |v| !v.is_empty());
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|s| s == "a" || s == "b"));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 1,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::from_name("rec");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 4 + 3);
        }
    }
}
