//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so this shim adapts
//! `std::thread::scope` to crossbeam's 0.8 calling convention (closures
//! receive a `&Scope` argument, `scope` returns a `Result`).

#![forbid(unsafe_code)]

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to `scope` closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        ///
        /// # Errors
        ///
        /// Returns the boxed panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself (for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (unjoined panics propagate, as with
    /// `std::thread::scope`); the `Result` exists for crossbeam API
    /// compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut parts = [0u64; 4];
        super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, slot) in parts.iter_mut().enumerate() {
                handles.push(scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                }));
            }
            for h in handles {
                h.join().expect("no panics");
            }
        })
        .expect("scope failed");
        assert_eq!(parts, [1, 2, 3, 4]);
    }

    #[test]
    fn unjoined_handles_are_joined_at_scope_exit() {
        let mut total = [0u32; 8];
        super::thread::scope(|scope| {
            for chunk in total.chunks_mut(2) {
                scope.spawn(move |_| {
                    for c in chunk {
                        *c += 1;
                    }
                });
            }
        })
        .expect("scope failed");
        assert!(total.iter().all(|&c| c == 1));
    }
}
