//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build with no network access, so the handful of
//! `rand 0.8` APIs it uses are reimplemented here on top of a SplitMix64
//! generator. Determinism per seed is all the callers need (seeded
//! property-test heap generators); no cryptographic claims are made.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampleable range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform bits mapped to [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0f64..10.0);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_mixes() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious bias: {heads}");
    }
}
