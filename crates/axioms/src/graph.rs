//! Concrete heap graphs.
//!
//! The paper views "a data structure as a directed graph where edges are
//! labeled with their corresponding pointer field names" (§3.1). This module
//! provides that graph, with *deterministic* edges — an object has exactly
//! one pointer per field, possibly null — and exact computation of the
//! vertex set `v.RE` denoted by an access path, via the product of the graph
//! with the DFA of `RE`.
//!
//! Heap graphs are the ground truth for the axiom model checker
//! ([`crate::check`]) and for the soundness property tests: a dependence
//! disproven by APT must never materialize on any heap satisfying the
//! axioms.

use apt_regex::dfa::Dfa;
use apt_regex::{Regex, Symbol};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A vertex (heap object) in a [`HeapGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph with field-labeled, single-valued edges.
#[derive(Debug, Clone, Default)]
pub struct HeapGraph {
    edges: Vec<BTreeMap<Symbol, NodeId>>,
}

impl HeapGraph {
    /// An empty heap.
    pub fn new() -> HeapGraph {
        HeapGraph::default()
    }

    /// Allocates a new object with all fields null.
    pub fn add_node(&mut self) -> NodeId {
        self.edges.push(BTreeMap::new());
        NodeId(self.edges.len() - 1)
    }

    /// Allocates `n` objects, returning their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the heap has no objects.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Sets `from.field = to`, overwriting any previous target.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range.
    pub fn set_edge(&mut self, from: NodeId, field: impl Into<Symbol>, to: NodeId) {
        assert!(to.0 < self.edges.len(), "target node out of range");
        self.edges[from.0].insert(field.into(), to);
    }

    /// Sets `from.field = null`.
    pub fn clear_edge(&mut self, from: NodeId, field: impl Into<Symbol>) {
        self.edges[from.0].remove(&field.into());
    }

    /// The target of `from.field`, if non-null.
    pub fn edge(&self, from: NodeId, field: impl Into<Symbol>) -> Option<NodeId> {
        self.edges[from.0].get(&field.into()).copied()
    }

    /// Iterates over all `(from, field, to)` edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .flat_map(|(i, m)| m.iter().map(move |(&f, &t)| (NodeId(i), f, t)))
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.edges.len()).map(NodeId)
    }

    /// Follows a concrete word of fields from `from`; `None` when a null
    /// field is hit.
    pub fn walk(&self, from: NodeId, word: &[Symbol]) -> Option<NodeId> {
        let mut cur = from;
        for &f in word {
            cur = self.edge(cur, f)?;
        }
        Some(cur)
    }

    /// The exact vertex set `from.re` — every vertex reachable from `from`
    /// along some word of `L(re)`.
    ///
    /// Computed on the product of the heap with the DFA of `re`, so it is
    /// exact even for infinite languages (`N*` on a cyclic list terminates).
    pub fn targets(&self, from: NodeId, re: &Regex) -> BTreeSet<NodeId> {
        let alpha = re.symbols();
        let dfa = Dfa::build(re, &alpha);
        let mut out = BTreeSet::new();
        let mut seen = BTreeSet::new();
        let mut stack = vec![(from, dfa.start())];
        seen.insert((from, dfa.start()));
        while let Some((node, state)) = stack.pop() {
            if dfa.is_accepting(state) {
                out.insert(node);
            }
            for &sym in &alpha {
                if let Some(next_node) = self.edge(node, sym) {
                    let next_state = dfa.next_state(state, sym);
                    if seen.insert((next_node, next_state)) {
                        stack.push((next_node, next_state));
                    }
                }
            }
        }
        out
    }

    /// Renders the heap in a `dot`-like edge list, for debugging.
    pub fn to_edge_list(&self) -> String {
        let mut s = String::new();
        for (from, f, to) in self.iter_edges() {
            s.push_str(&format!("{from} -{f}-> {to}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_regex::parse;

    /// A three-level leaf-linked binary tree like Figure 3 of the paper.
    fn leaf_linked_tree() -> (HeapGraph, NodeId) {
        let mut g = HeapGraph::new();
        let n = g.add_nodes(7);
        // n[0] root; n[1]=root.L, n[2]=root.R; leaves n[3..7]
        g.set_edge(n[0], "L", n[1]);
        g.set_edge(n[0], "R", n[2]);
        g.set_edge(n[1], "L", n[3]);
        g.set_edge(n[1], "R", n[4]);
        g.set_edge(n[2], "L", n[5]);
        g.set_edge(n[2], "R", n[6]);
        g.set_edge(n[3], "N", n[4]);
        g.set_edge(n[4], "N", n[5]);
        g.set_edge(n[5], "N", n[6]);
        (g, n[0])
    }

    #[test]
    fn walk_follows_fields() {
        let (g, root) = leaf_linked_tree();
        let l = Symbol::intern("L");
        let n = Symbol::intern("N");
        let leaf = g.walk(root, &[l, l]).unwrap();
        assert_eq!(g.walk(root, &[l, l, n]), g.walk(leaf, &[n]));
        assert_eq!(g.walk(root, &[n]), None);
    }

    #[test]
    fn targets_of_literal_path() {
        let (g, root) = leaf_linked_tree();
        let t = g.targets(root, &parse("L.L.N").unwrap());
        assert_eq!(t.len(), 1);
        // and it coincides with L.R
        let t2 = g.targets(root, &parse("L.R").unwrap());
        assert_eq!(t, t2);
    }

    #[test]
    fn targets_of_starred_path() {
        let (g, root) = leaf_linked_tree();
        // all four leaves are reachable by (L|R).(L|R)
        let leaves = g.targets(root, &parse("(L|R).(L|R)").unwrap());
        assert_eq!(leaves.len(), 4);
        // and from the first leaf, N* reaches all four leaves
        let first = g
            .walk(root, &[Symbol::intern("L"), Symbol::intern("L")])
            .unwrap();
        let chain = g.targets(first, &parse("N*").unwrap());
        assert_eq!(chain.len(), 4);
    }

    #[test]
    fn targets_terminate_on_cycles() {
        let mut g = HeapGraph::new();
        let n = g.add_nodes(3);
        g.set_edge(n[0], "next", n[1]);
        g.set_edge(n[1], "next", n[2]);
        g.set_edge(n[2], "next", n[0]); // circular list
        let t = g.targets(n[0], &parse("next+").unwrap());
        assert_eq!(t.len(), 3);
        assert!(t.contains(&n[0])); // cycle returns to the head
    }

    #[test]
    fn epsilon_targets_self() {
        let mut g = HeapGraph::new();
        let a = g.add_node();
        let t = g.targets(a, &Regex::epsilon());
        assert_eq!(t.into_iter().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn edges_overwrite() {
        let mut g = HeapGraph::new();
        let n = g.add_nodes(3);
        g.set_edge(n[0], "f", n[1]);
        g.set_edge(n[0], "f", n[2]);
        assert_eq!(g.edge(n[0], "f"), Some(n[2]));
        g.clear_edge(n[0], "f");
        assert_eq!(g.edge(n[0], "f"), None);
    }
}
