//! A higher-level data-structure description layer.
//!
//! §3.2 of the paper points out that axioms "can be specified indirectly
//! using a higher level of abstraction, e.g. the ADDS data structure
//! description language \[HHN92\]". This module provides that layer: a
//! [`StructureSpec`] collects dimension declarations (`tree`, `list`,
//! `acyclic`, …) and expands them into the corresponding [`AxiomSet`].
//!
//! It also ships the two structures the paper works out in full:
//! [`leaf_linked_tree_axioms`] (Figure 3) and [`sparse_matrix_axioms`]
//! (Appendix A).

use crate::{Axiom, AxiomSet};
use apt_regex::{Regex, Symbol};

/// Builder for a data-structure description; expands to an [`AxiomSet`].
///
/// ```
/// use apt_axioms::adds::StructureSpec;
/// // The leaf-linked binary tree of Figure 3:
/// let axioms = StructureSpec::new()
///     .tree(["L", "R"])
///     .list("N")
///     .acyclic(["L", "R", "N"])
///     .into_axioms();
/// assert_eq!(axioms.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StructureSpec {
    axioms: Vec<Axiom>,
    next_label: usize,
}

impl StructureSpec {
    /// An empty description.
    pub fn new() -> StructureSpec {
        StructureSpec::default()
    }

    fn label(&mut self) -> String {
        self.next_label += 1;
        format!("A{}", self.next_label)
    }

    fn push(&mut self, axiom: Axiom) -> &mut Self {
        let l = self.label();
        self.axioms.push(axiom.named(l));
        self
    }

    /// Declares that `fields` form the child links of a tree-like dimension:
    /// siblings are distinct (`∀p, p.f <> p.g` for every pair) and no two
    /// parents share a child (`∀p<>q, p.(f1|…) <> q.(f1|…)`).
    ///
    /// These are the paper's A1 and A2 for `{L, R}`. Note that, exactly as
    /// the paper observes, this does *not* imply acyclicity — add
    /// [`StructureSpec::acyclic`] for a true tree.
    pub fn tree<I, S>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let syms: Vec<Symbol> = fields.into_iter().map(Into::into).collect();
        for (i, &f) in syms.iter().enumerate() {
            for &g in &syms[i + 1..] {
                self.push(Axiom::disjoint_same_origin(
                    Regex::field(f),
                    Regex::field(g),
                ));
            }
        }
        let any = Regex::alt_all(syms.iter().map(|&s| Regex::field(s)));
        self.push(Axiom::disjoint_distinct_origins(any.clone(), any));
        self
    }

    /// Declares that `field` forms a linked-list dimension: distinct nodes
    /// have distinct successors (`∀p<>q, p.f <> q.f` — the paper's A3).
    ///
    /// As the paper notes, this allows one cyclic back-edge; add
    /// [`StructureSpec::acyclic`] to forbid it.
    pub fn list(mut self, field: impl Into<Symbol>) -> Self {
        let f = Regex::field(field.into());
        self.push(Axiom::disjoint_distinct_origins(f.clone(), f));
        self
    }

    /// Declares that the substructure formed by `fields` is acyclic:
    /// `∀p, p.(f1|…|fk)+ <> p.ε` — the paper's A4.
    pub fn acyclic<I, S>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        let any = Regex::alt_all(fields.into_iter().map(|s| Regex::field(s.into())));
        self.push(Axiom::disjoint_same_origin(
            Regex::plus(any),
            Regex::epsilon(),
        ));
        self
    }

    /// Declares a raw same-origin disjointness: `∀p, p.lhs <> p.rhs`.
    pub fn disjoint(mut self, lhs: Regex, rhs: Regex) -> Self {
        self.push(Axiom::disjoint_same_origin(lhs, rhs));
        self
    }

    /// Declares a raw distinct-origin disjointness: `∀p<>q, p.lhs <> q.rhs`.
    pub fn disjoint_across(mut self, lhs: Regex, rhs: Regex) -> Self {
        self.push(Axiom::disjoint_distinct_origins(lhs, rhs));
        self
    }

    /// Declares a cycle property: `∀p, p.lhs = p.rhs` (e.g. `next.prev = ε`
    /// for a doubly-linked list).
    pub fn cycle(mut self, lhs: Regex, rhs: Regex) -> Self {
        self.push(Axiom::equal(lhs, rhs));
        self
    }

    /// Declares that fields of different *target types* never alias: for
    /// every pair drawn from different groups, `∀p, p.f <> p.g` and
    /// `∀p<>q, p.f <> q.g`. This is the paper's Appendix A remark that
    /// "some axioms are inferred since pointer fields of different types
    /// should lead to different vertices".
    pub fn typed_fields<'a, I>(mut self, groups: I) -> Self
    where
        I: IntoIterator<Item = &'a [&'a str]>,
    {
        let groups: Vec<Vec<Symbol>> = groups
            .into_iter()
            .map(|g| g.iter().map(|&n| Symbol::intern(n)).collect())
            .collect();
        for (i, ga) in groups.iter().enumerate() {
            for gb in &groups[i + 1..] {
                for &f in ga {
                    for &g in gb {
                        self.push(Axiom::disjoint_same_origin(
                            Regex::field(f),
                            Regex::field(g),
                        ));
                        self.push(Axiom::disjoint_distinct_origins(
                            Regex::field(f),
                            Regex::field(g),
                        ));
                    }
                }
            }
        }
        self
    }

    /// Finishes the description, producing the axiom set.
    pub fn into_axioms(self) -> AxiomSet {
        AxiomSet::from_axioms(self.axioms)
    }
}

/// Error from parsing an ADDS-style description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddsError {
    /// 1-based line of the offending declaration.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAddsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ADDS parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseAddsError {}

/// Parses a textual structure description in the spirit of the ADDS
/// language \[HHN92\] the paper points to for indirect axiom specification.
///
/// One declaration per line inside `structure <Name> { … }` (the braces
/// and name are optional — bare declarations are accepted too):
///
/// * `tree f1, f2, …;` — tree dimension over the fields;
/// * `list f;` — linked-list dimension;
/// * `acyclic f1, f2, …;` — the fields form no cycle;
/// * `disjoint RE1 , RE2;` — same-origin disjointness `∀p`;
/// * `disjoint across RE1 , RE2;` — distinct-origin disjointness `∀p<>q`;
/// * `cycle RE1 = RE2;` — set equality `∀p` (e.g. `cycle next.prev = eps;`).
///
/// ```
/// use apt_axioms::adds::parse_adds;
/// let axioms = parse_adds(r"
///     structure LLBinaryTree {
///         tree L, R;
///         list N;
///         acyclic L, R, N;
///     }
/// ").unwrap();
/// assert_eq!(axioms.len(), 4);
/// ```
///
/// # Errors
///
/// Returns [`ParseAddsError`] on unknown declarations or malformed
/// regular expressions.
pub fn parse_adds(text: &str) -> Result<AxiomSet, ParseAddsError> {
    let mut spec = StructureSpec::new();
    // Strip comments line-wise, then split declarations on ';' (tracking
    // the line each declaration starts on).
    let mut cleaned = String::new();
    for raw in text.lines() {
        let t = raw.trim();
        if !(t.starts_with("//") || t.starts_with('#')) {
            cleaned.push_str(raw);
        }
        cleaned.push('\n');
    }
    let mut line = 1usize;
    for piece in cleaned.split(';') {
        let start_line = line;
        line += piece.matches('\n').count();
        let err = |message: String| ParseAddsError {
            line: start_line
                + piece
                    .find(|c: char| !c.is_whitespace())
                    .map_or(0, |i| piece[..i].matches('\n').count()),
            message,
        };
        // Structure headers and braces are cosmetic.
        let mut decl = piece.trim();
        while let Some(open) = decl.find('{') {
            let head = decl[..open].trim();
            if !(head.is_empty() || head.starts_with("structure")) {
                return Err(err(format!("unexpected '{{' after {head:?}")));
            }
            decl = decl[open + 1..].trim();
        }
        let debraced = decl.replace('}', " ");
        let decl = debraced.trim();
        if decl.is_empty() {
            continue;
        }
        let (keyword, rest) = match decl.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => return Err(err(format!("malformed declaration {decl:?}"))),
        };
        let fields = |s: &str| -> Vec<String> {
            s.split(',')
                .map(|f| f.trim().to_owned())
                .filter(|f| !f.is_empty())
                .collect()
        };
        match keyword {
            "tree" => {
                let fs = fields(rest);
                if fs.len() < 2 {
                    return Err(err("tree needs at least two fields".into()));
                }
                spec = spec.tree(fs.iter().map(String::as_str));
            }
            "list" => {
                let fs = fields(rest);
                if fs.len() != 1 {
                    return Err(err("list takes exactly one field".into()));
                }
                spec = spec.list(fs[0].as_str());
            }
            "acyclic" => {
                let fs = fields(rest);
                if fs.is_empty() {
                    return Err(err("acyclic needs at least one field".into()));
                }
                spec = spec.acyclic(fs.iter().map(String::as_str));
            }
            "disjoint" => {
                let (across, body) = match rest.strip_prefix("across") {
                    Some(b) => (true, b.trim()),
                    None => (false, rest),
                };
                let (l, r) = body
                    .split_once(',')
                    .ok_or_else(|| err("disjoint needs two expressions separated by ','".into()))?;
                let lhs = apt_regex::parse(l.trim()).map_err(|e| err(e.to_string()))?;
                let rhs = apt_regex::parse(r.trim()).map_err(|e| err(e.to_string()))?;
                spec = if across {
                    spec.disjoint_across(lhs, rhs)
                } else {
                    spec.disjoint(lhs, rhs)
                };
            }
            "cycle" => {
                let (l, r) = rest
                    .split_once('=')
                    .ok_or_else(|| err("cycle needs 'RE1 = RE2'".into()))?;
                let lhs = apt_regex::parse(l.trim()).map_err(|e| err(e.to_string()))?;
                let rhs = apt_regex::parse(r.trim()).map_err(|e| err(e.to_string()))?;
                spec = spec.cycle(lhs, rhs);
            }
            other => return Err(err(format!("unknown declaration {other:?}"))),
        }
    }
    Ok(spec.into_axioms())
}

/// The four axioms of Figure 3 (leaf-linked binary tree), named A1–A4
/// exactly as in the paper.
pub fn leaf_linked_tree_axioms() -> AxiomSet {
    AxiomSet::parse(
        "A1: forall p, p.L <> p.R\n\
         A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
         A3: forall p <> q, p.N <> q.N\n\
         A4: forall p, p.(L|R|N)+ <> p.eps",
    )
    .expect("figure 3 axioms parse")
}

/// The three axioms of §5 that suffice to prove Theorem T for the sparse
/// matrix factorization loop.
pub fn sparse_matrix_minimal_axioms() -> AxiomSet {
    AxiomSet::parse(
        "A1: forall p <> q, p.ncolE <> q.ncolE\n\
         A2: forall p, p.ncolE+ <> p.nrowE+\n\
         A3: forall p, p.(ncolE|nrowE)+ <> p.eps",
    )
    .expect("section 5 axioms parse")
}

/// Error from [`parse_axioms_auto`]: whichever sub-parser was selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAutoError {
    /// The text looked like an ADDS description and failed there.
    Adds(ParseAddsError),
    /// The text was parsed as one-axiom-per-line and failed there.
    Axioms(crate::ParseAxiomError),
}

impl std::fmt::Display for ParseAutoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseAutoError::Adds(e) => e.fmt(f),
            ParseAutoError::Axioms(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ParseAutoError {}

/// Whether `text` looks like an ADDS description (any line opening with a
/// structure keyword) rather than a one-axiom-per-line file.
pub fn looks_like_adds(text: &str) -> bool {
    text.lines().any(|l| {
        let t = l.trim();
        [
            "structure",
            "tree ",
            "list ",
            "acyclic ",
            "disjoint ",
            "cycle ",
        ]
        .iter()
        .any(|k| t.starts_with(k))
    })
}

/// Parses an axiom file in either supported format — an ADDS description
/// (`structure … { tree L, R; }`) or one axiom per line (`A1: forall p,
/// p.L <> p.R`) — auto-detected via [`looks_like_adds`]. This is the one
/// entry point the CLI and the serving layer share, so a set accepted by
/// `apt prove` is accepted verbatim by `open_session`.
///
/// # Errors
///
/// Returns [`ParseAutoError`] from whichever sub-parser the detection
/// selected.
pub fn parse_axioms_auto(text: &str) -> Result<AxiomSet, ParseAutoError> {
    if looks_like_adds(text) {
        parse_adds(text).map_err(ParseAutoError::Adds)
    } else {
        AxiomSet::parse(text).map_err(ParseAutoError::Axioms)
    }
}

/// The twelve sparse-matrix axioms of Appendix A, in the paper's order.
pub fn sparse_matrix_axioms() -> AxiomSet {
    AxiomSet::parse(
        "S1: forall p <> q, p.nrowE <> q.nrowE\n\
         S2: forall p <> q, p.ncolE <> q.ncolE\n\
         S3: forall p, p.nrowE <> p.ncolE\n\
         S4: forall p, p.ncolE* <> p.nrowE+.ncolE*\n\
         S5: forall p, p.nrowE* <> p.ncolE+.nrowE*\n\
         S6: forall p <> q, p.nrowH <> q.nrowH\n\
         S7: forall p <> q, p.ncolH <> q.ncolH\n\
         S8: forall p <> q, p.relem.ncolE* <> q.relem.ncolE*\n\
         S9: forall p <> q, p.celem.nrowE* <> q.celem.nrowE*\n\
         S10: forall p <> q, p.rows <> q.nrowH\n\
         S11: forall p <> q, p.cols <> q.ncolH\n\
         S12: forall p, p.(rows|cols|relem|celem|nrowH|ncolH|nrowE|ncolE)+ <> p.eps",
    )
    .expect("appendix A axioms parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AxiomKind;

    #[test]
    fn tree_spec_generates_a1_a2_shape() {
        let s = StructureSpec::new().tree(["L", "R"]).into_axioms();
        assert_eq!(s.len(), 2);
        assert_eq!(s.of_kind(AxiomKind::DisjointSameOrigin).count(), 1);
        assert_eq!(s.of_kind(AxiomKind::DisjointDistinctOrigins).count(), 1);
    }

    #[test]
    fn ternary_tree_generates_three_sibling_axioms() {
        let s = StructureSpec::new().tree(["a", "b", "c"]).into_axioms();
        // 3 pairwise sibling axioms + 1 no-shared-child axiom
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn spec_equivalent_to_fig3() {
        let spec = StructureSpec::new()
            .tree(["L", "R"])
            .list("N")
            .acyclic(["L", "R", "N"])
            .into_axioms();
        let fig3 = leaf_linked_tree_axioms();
        assert_eq!(spec.len(), fig3.len());
        // Same statements modulo names.
        for (a, b) in spec.iter().zip(fig3.iter()) {
            assert_eq!(a.kind(), b.kind());
            assert!(apt_regex::ops::equivalent(a.lhs(), b.lhs()));
            assert!(apt_regex::ops::equivalent(a.rhs(), b.rhs()));
        }
    }

    #[test]
    fn canned_sets_parse() {
        assert_eq!(leaf_linked_tree_axioms().len(), 4);
        assert_eq!(sparse_matrix_minimal_axioms().len(), 3);
        assert_eq!(sparse_matrix_axioms().len(), 12);
    }

    #[test]
    fn typed_fields_infer_cross_type_disjointness() {
        let s = StructureSpec::new()
            .typed_fields([&["nrowH", "ncolH"] as &[_], &["nrowE", "ncolE"]])
            .into_axioms();
        // 2×2 cross pairs × 2 axiom forms
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn cycle_spec() {
        let s = StructureSpec::new()
            .cycle(apt_regex::parse("next.prev").unwrap(), Regex::epsilon())
            .into_axioms();
        assert_eq!(s.of_kind(AxiomKind::Equal).count(), 1);
    }

    #[test]
    fn parse_adds_figure3() {
        let axioms = parse_adds(
            "structure LLBinaryTree {\n\
                tree L, R;\n\
                list N;\n\
                acyclic L, R, N;\n\
             }",
        )
        .unwrap();
        let fig3 = leaf_linked_tree_axioms();
        assert_eq!(axioms.len(), fig3.len());
        for (a, b) in axioms.iter().zip(fig3.iter()) {
            assert_eq!(a.kind(), b.kind());
            assert!(apt_regex::ops::equivalent(a.lhs(), b.lhs()));
            assert!(apt_regex::ops::equivalent(a.rhs(), b.rhs()));
        }
    }

    #[test]
    fn parse_adds_disjoint_and_cycle() {
        let axioms = parse_adds(
            "disjoint ncolE*, nrowE+.ncolE*;\n\
             disjoint across relem.ncolE*, relem.ncolE*;\n\
             cycle next.prev = eps;",
        )
        .unwrap();
        assert_eq!(axioms.len(), 3);
        assert_eq!(axioms.of_kind(AxiomKind::DisjointSameOrigin).count(), 1);
        assert_eq!(
            axioms.of_kind(AxiomKind::DisjointDistinctOrigins).count(),
            1
        );
        assert_eq!(axioms.of_kind(AxiomKind::Equal).count(), 1);
    }

    #[test]
    fn parse_adds_skips_comments_and_braces() {
        let axioms = parse_adds(
            "// a comment\n\
             structure T {\n\
                 # another comment\n\
                 list next;\n\
             }",
        )
        .unwrap();
        assert_eq!(axioms.len(), 1);
    }

    #[test]
    fn parse_adds_errors_carry_line_numbers() {
        let e = parse_adds("list next;\nbogus decl;\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse_adds("tree OnlyOne;").unwrap_err();
        assert!(e.message.contains("two fields"));
        let e = parse_adds("disjoint a..b, c;").unwrap_err();
        assert!(e.message.contains("parse error"));
    }

    #[test]
    fn labels_are_sequential() {
        let s = StructureSpec::new()
            .tree(["L", "R"])
            .acyclic(["L", "R"])
            .into_axioms();
        assert!(s.by_name("A1").is_some());
        assert!(s.by_name("A3").is_some());
        assert!(s.by_name("A4").is_none());
    }
}
