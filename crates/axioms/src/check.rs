//! Model-checking axioms against concrete heaps.
//!
//! §3.2 of the paper notes that programmer-supplied axioms can be
//! "automatically verified". This module does exactly that for a concrete
//! heap snapshot: it decides whether every axiom in a set holds of a given
//! [`HeapGraph`], and reports a concrete counterexample when one does not.
//!
//! The checker is the ground-truth side of the reproduction's soundness
//! tests: APT's **No** answers must be consistent with every heap that
//! passes this check.

use crate::graph::{HeapGraph, NodeId};
use crate::{Axiom, AxiomKind, AxiomSet};
use std::fmt;

/// A concrete counterexample to an axiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Display form of the violated axiom.
    pub axiom: String,
    /// The origin vertex bound to `p`.
    pub p: NodeId,
    /// The origin vertex bound to `q` (same as `p` for single-variable
    /// forms).
    pub q: NodeId,
    /// For disjointness axioms: a vertex in both path sets. For equality
    /// axioms: a vertex in exactly one of the two sets.
    pub witness: NodeId,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "axiom {:?} violated at p={}, q={} (witness vertex {})",
            self.axiom, self.p, self.q, self.witness
        )
    }
}

/// Checks one axiom against a heap.
///
/// Returns the first violation found, scanning vertices in id order, or
/// `None` if the axiom holds.
pub fn check_axiom(heap: &HeapGraph, axiom: &Axiom) -> Option<Violation> {
    let violation = |p: NodeId, q: NodeId, witness: NodeId| Violation {
        axiom: axiom.to_string(),
        p,
        q,
        witness,
    };
    match axiom.kind() {
        AxiomKind::DisjointSameOrigin => {
            for p in heap.nodes() {
                let a = heap.targets(p, axiom.lhs());
                let b = heap.targets(p, axiom.rhs());
                if let Some(&w) = a.intersection(&b).next() {
                    return Some(violation(p, p, w));
                }
            }
            None
        }
        AxiomKind::DisjointDistinctOrigins => {
            // Precompute target sets once per vertex, then compare pairs.
            let lhs_sets: Vec<_> = heap.nodes().map(|v| heap.targets(v, axiom.lhs())).collect();
            let rhs_sets: Vec<_> = heap.nodes().map(|v| heap.targets(v, axiom.rhs())).collect();
            for p in heap.nodes() {
                for q in heap.nodes() {
                    if p == q {
                        continue;
                    }
                    if let Some(&w) = lhs_sets[p.0].intersection(&rhs_sets[q.0]).next() {
                        return Some(violation(p, q, w));
                    }
                }
            }
            None
        }
        AxiomKind::Equal => {
            for p in heap.nodes() {
                let a = heap.targets(p, axiom.lhs());
                let b = heap.targets(p, axiom.rhs());
                if let Some(&w) = a.symmetric_difference(&b).next() {
                    return Some(violation(p, p, w));
                }
            }
            None
        }
    }
}

/// Checks every axiom of a set against a heap.
///
/// # Errors
///
/// Returns the first [`Violation`] found.
///
/// ```
/// use apt_axioms::{check::check_set, graph::HeapGraph, AxiomSet};
/// let axioms = AxiomSet::parse("forall p <> q, p.next <> q.next").unwrap();
/// let mut heap = HeapGraph::new();
/// let n = heap.add_nodes(3);
/// heap.set_edge(n[0], "next", n[1]);
/// heap.set_edge(n[1], "next", n[2]);
/// assert!(check_set(&heap, &axioms).is_ok());
/// // Two predecessors of one node violate listness:
/// heap.set_edge(n[2], "next", n[1]);
/// assert!(check_set(&heap, &axioms).is_err());
/// ```
pub fn check_set(heap: &HeapGraph, axioms: &AxiomSet) -> Result<(), Violation> {
    for axiom in axioms.iter() {
        if let Some(v) = check_axiom(heap, axiom) {
            return Err(v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_axioms() -> AxiomSet {
        AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p <> q, p.N <> q.N\n\
             A4: forall p, p.(L|R|N)+ <> p.eps",
        )
        .unwrap()
    }

    fn leaf_linked_tree() -> HeapGraph {
        let mut g = HeapGraph::new();
        let n = g.add_nodes(7);
        g.set_edge(n[0], "L", n[1]);
        g.set_edge(n[0], "R", n[2]);
        g.set_edge(n[1], "L", n[3]);
        g.set_edge(n[1], "R", n[4]);
        g.set_edge(n[2], "L", n[5]);
        g.set_edge(n[2], "R", n[6]);
        g.set_edge(n[3], "N", n[4]);
        g.set_edge(n[4], "N", n[5]);
        g.set_edge(n[5], "N", n[6]);
        g
    }

    #[test]
    fn figure3_heap_satisfies_figure3_axioms() {
        assert_eq!(check_set(&leaf_linked_tree(), &fig3_axioms()), Ok(()));
    }

    #[test]
    fn shared_child_violates_a2() {
        let mut g = leaf_linked_tree();
        // make two parents share a child
        g.set_edge(NodeId(2), "L", NodeId(4));
        let v = check_set(&g, &fig3_axioms()).unwrap_err();
        assert!(v.axiom.contains("A2"), "violated: {}", v.axiom);
    }

    #[test]
    fn self_loop_violates_acyclicity() {
        let mut g = leaf_linked_tree();
        g.set_edge(NodeId(6), "N", NodeId(0));
        // back-edge creates a cycle through the whole structure
        let v = check_set(&g, &fig3_axioms()).unwrap_err();
        assert!(v.axiom.contains("A4"), "violated: {}", v.axiom);
    }

    #[test]
    fn equal_axiom_checks_set_equality() {
        // circular doubly-linked pair: next then prev returns to self
        // (the axiom requires every node to have a next, hence circular)
        let ax = AxiomSet::parse("forall p, p.next.prev = p.eps").unwrap();
        let mut g = HeapGraph::new();
        let n = g.add_nodes(2);
        g.set_edge(n[0], "next", n[1]);
        g.set_edge(n[1], "next", n[0]);
        g.set_edge(n[0], "prev", n[1]);
        g.set_edge(n[1], "prev", n[0]);
        assert!(check_set(&g, &ax).is_ok());
        // break the invariant
        g.set_edge(n[1], "prev", n[1]);
        let v = check_set(&g, &ax).unwrap_err();
        assert_eq!(v.p, n[0]);
    }

    #[test]
    fn equal_axiom_vacuous_when_paths_dangle() {
        // p.next.prev = p.eps fails when next exists but prev is null:
        // the lhs set is empty while rhs is {p}... which IS a difference.
        let ax = AxiomSet::parse("forall p, p.next.prev = p.eps").unwrap();
        let mut g = HeapGraph::new();
        let n = g.add_nodes(2);
        g.set_edge(n[0], "next", n[1]);
        // n[1].prev is null → lhs = ∅ ≠ {n0}
        assert!(check_set(&g, &ax).is_err());
    }

    #[test]
    fn empty_axiom_set_always_holds() {
        assert!(check_set(&leaf_linked_tree(), &AxiomSet::new()).is_ok());
    }

    #[test]
    fn violation_reports_witness() {
        let ax = AxiomSet::parse("forall p, p.L <> p.R").unwrap();
        let mut g = HeapGraph::new();
        let n = g.add_nodes(2);
        g.set_edge(n[0], "L", n[1]);
        g.set_edge(n[0], "R", n[1]);
        let v = check_set(&g, &ax).unwrap_err();
        assert_eq!(v.witness, n[1]);
        assert_eq!(v.p, n[0]);
    }
}
