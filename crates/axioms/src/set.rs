//! Axiom sets.
//!
//! The dependence tester takes "a set `𝒜` of applicable axioms" (§4.1). The
//! set carries a stable identity so the prover's proof cache can key on it,
//! and §3.4's structural-modification rule needs set intersection (the
//! axioms valid across a modifying statement are the intersection of the
//! sets valid before and after it).

use crate::{Axiom, AxiomKind};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique identity for an [`AxiomSet`], used as a proof-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AxiomSetId(u64);

fn fresh_id() -> AxiomSetId {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    AxiomSetId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// An immutable collection of aliasing axioms describing one data structure.
#[derive(Debug, Clone)]
pub struct AxiomSet {
    id: AxiomSetId,
    axioms: Vec<Axiom>,
}

impl AxiomSet {
    /// An empty set (proves nothing).
    pub fn new() -> AxiomSet {
        AxiomSet {
            id: fresh_id(),
            axioms: Vec::new(),
        }
    }

    /// Builds a set from axioms.
    pub fn from_axioms<I: IntoIterator<Item = Axiom>>(axioms: I) -> AxiomSet {
        AxiomSet {
            id: fresh_id(),
            axioms: axioms.into_iter().collect(),
        }
    }

    /// Parses one axiom per non-empty line (`#`-prefixed lines are comments).
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::ParseAxiomError`] encountered.
    ///
    /// ```
    /// use apt_axioms::AxiomSet;
    /// let axioms = AxiomSet::parse(r"
    ///     ## Figure 3 of the paper
    ///     A1: forall p, p.L <> p.R
    ///     A2: forall p <> q, p.(L|R) <> q.(L|R)
    ///     A3: forall p <> q, p.N <> q.N
    ///     A4: forall p, p.(L|R|N)+ <> p.eps
    /// ").unwrap();
    /// assert_eq!(axioms.len(), 4);
    /// ```
    pub fn parse(text: &str) -> Result<AxiomSet, crate::ParseAxiomError> {
        let mut axioms = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            axioms.push(
                line.parse::<crate::Axiom>()
                    .map_err(|e| e.at_line(idx + 1))?,
            );
        }
        Ok(AxiomSet::from_axioms(axioms))
    }

    /// The set's cache identity. Two sets built separately always have
    /// different ids even if they contain equal axioms.
    pub fn id(&self) -> AxiomSetId {
        self.id
    }

    /// Number of axioms.
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// Iterates over all axioms.
    pub fn iter(&self) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter()
    }

    /// Iterates over axioms of one form.
    pub fn of_kind(&self, kind: AxiomKind) -> impl Iterator<Item = &Axiom> {
        self.axioms.iter().filter(move |a| a.kind() == kind)
    }

    /// Finds an axiom by trace name.
    pub fn by_name(&self, name: &str) -> Option<&Axiom> {
        self.axioms.iter().find(|a| a.name() == Some(name))
    }

    /// A new set containing this set's axioms plus `extra`.
    #[must_use]
    pub fn with(&self, extra: Axiom) -> AxiomSet {
        let mut axioms = self.axioms.clone();
        axioms.push(extra);
        AxiomSet::from_axioms(axioms)
    }

    /// The intersection of two sets (axioms present in both, compared
    /// structurally) — the §3.4 rule for dependence tests spanning a
    /// structural modification.
    #[must_use]
    pub fn intersect(&self, other: &AxiomSet) -> AxiomSet {
        AxiomSet::from_axioms(
            self.axioms
                .iter()
                .filter(|a| other.axioms.contains(a))
                .cloned(),
        )
    }

    /// Every field symbol mentioned by any axiom.
    pub fn symbols(&self) -> Vec<apt_regex::Symbol> {
        let mut syms: Vec<_> = self
            .axioms
            .iter()
            .flat_map(|a| {
                let mut s = a.lhs().symbols();
                s.extend(a.rhs().symbols());
                s
            })
            .collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }
}

impl Default for AxiomSet {
    fn default() -> Self {
        AxiomSet::new()
    }
}

impl FromIterator<Axiom> for AxiomSet {
    fn from_iter<I: IntoIterator<Item = Axiom>>(iter: I) -> Self {
        AxiomSet::from_axioms(iter)
    }
}

impl Extend<Axiom> for AxiomSet {
    /// Extending allocates a fresh set identity (the contents changed, so
    /// cached proofs must not be reused).
    fn extend<I: IntoIterator<Item = Axiom>>(&mut self, iter: I) {
        self.axioms.extend(iter);
        self.id = fresh_id();
    }
}

impl fmt::Display for AxiomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for a in &self.axioms {
            writeln!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> AxiomSet {
        AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p <> q, p.N <> q.N\n\
             A4: forall p, p.(L|R|N)+ <> p.eps",
        )
        .unwrap()
    }

    #[test]
    fn parse_multi_line_with_comments() {
        let s = AxiomSet::parse("# hi\n\nA1: forall p, p.L <> p.R\n").unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup_by_name_and_kind() {
        let s = fig3();
        assert!(s.by_name("A4").is_some());
        assert!(s.by_name("A9").is_none());
        assert_eq!(s.of_kind(AxiomKind::DisjointSameOrigin).count(), 2);
        assert_eq!(s.of_kind(AxiomKind::DisjointDistinctOrigins).count(), 2);
        assert_eq!(s.of_kind(AxiomKind::Equal).count(), 0);
    }

    #[test]
    fn ids_are_unique() {
        assert_ne!(fig3().id(), fig3().id());
    }

    #[test]
    fn intersection_keeps_common_axioms() {
        let a = fig3();
        let b = AxiomSet::parse("A1: forall p, p.L <> p.R").unwrap();
        let i = a.intersect(&b);
        assert_eq!(i.len(), 1);
        assert!(i.by_name("A1").is_some());
    }

    #[test]
    fn symbols_collected() {
        let syms = fig3().symbols();
        let names: Vec<_> = syms.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), 3);
        for n in ["L", "R", "N"] {
            assert!(names.contains(&n));
        }
    }

    #[test]
    fn extend_changes_identity() {
        let mut s = fig3();
        let before = s.id();
        s.extend(["forall p, p.L <> p.N".parse::<Axiom>().unwrap()]);
        assert_ne!(s.id(), before);
        assert_eq!(s.len(), 5);
    }
}
