//! Compiled axiom sets: the prover-facing index over an [`AxiomSet`].
//!
//! §4.2 of the paper treats the axiom list as an unordered bag — every
//! applicability check walks every axiom. But almost every application
//! fails immediately on the *leading field symbol*: a goal side whose words
//! all start with `ncolE` can never be covered by an axiom side whose
//! language starts only with `nrowE`. Compiling an [`AxiomSet`] once
//! precomputes, per axiom side:
//!
//! * the interned [`RegexId`]s (already carried by [`Axiom`]),
//! * first-/last-symbol **bitsets** over the set's field alphabet,
//! * nullability and alphabet metadata,
//! * a minimized DFA (the [`Dfa::minimize`] quotient over the side's own
//!   alphabet), kept for compile-time decisions and observability,
//!
//! plus whole-set indexes: per-kind axiom lists, and a field → injectivity
//! map (`∀p<>q, p.f <> q.f` up to language equality) decided **once at
//! compile time** instead of re-proved with four subset checks on every
//! tail peel.
//!
//! The bitset signatures give *necessary* conditions for language
//! inclusion, so the prover's dispatch may skip an axiom only when the
//! subset check was certain to fail — indexed search returns exactly the
//! verdicts and proofs of the linear scan (the `prover_dispatch` property
//! suite pins this down).

use crate::{Axiom, AxiomKind, AxiomSet, AxiomSetId};
use apt_regex::dfa::Dfa;
use apt_regex::{ops, Limits, Regex, RegexId, Symbol};
use std::collections::HashMap;
use std::sync::Arc;

/// State cap for the compile-time injectivity decisions. Axiom sides are
/// tiny in practice; an axiom side that blows past this is recorded as
/// *undecided* and the prover falls back to its runtime subset checks for
/// it, so compilation itself can never hang on a pathological set.
const COMPILE_MAX_STATES: usize = 4_096;

/// A 64-slot symbol bitset over a [`CompiledAxioms`] alphabet.
///
/// Bits 0–62 name the first 63 symbols of the compiled alphabet; bit 63 is
/// a shared overflow bucket for every further symbol *and* for symbols
/// foreign to the alphabet. The mapping is monotone (`S ⊆ T` implies
/// `bits(S) ⊆ bits(T)`), so a failed [`SymBits::contains_all`] check is a
/// definite refutation of set inclusion while a passing one is merely
/// "possible" — exactly the one-sided precision dispatch pruning needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SymBits(u64);

impl SymBits {
    /// The bit index of the overflow bucket.
    const OVERFLOW: u32 = 63;

    /// Whether every bit of `other` is set in `self`.
    pub fn contains_all(self, other: SymBits) -> bool {
        other.0 & !self.0 == 0
    }

    /// Whether no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// The dispatch signature of one regular expression: nullability plus
/// first-/last-/alphabet-symbol bitsets over the compiled alphabet.
///
/// Stored as four `u64` lanes — `[first, last, symbols, ε-flag]` — so the
/// whole containment test is one 4-lane `sub & !sup` fold. The common case
/// on the prover's dispatch path is a *failed* containment (the misses
/// outnumber hits ~15:1 on the paper suites), so the kernel does the four
/// independent and-nots unconditionally and tests the OR once, rather than
/// short-circuiting lane by lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideSig {
    lanes: [u64; 4],
}

impl SideSig {
    /// Builds a signature from its components.
    pub fn new(first: SymBits, last: SymBits, symbols: SymBits, nullable: bool) -> SideSig {
        SideSig {
            lanes: [first.0, last.0, symbols.0, u64::from(nullable)],
        }
    }

    /// Symbols that can begin a word.
    pub fn first(&self) -> SymBits {
        SymBits(self.lanes[0])
    }

    /// Symbols that can end a word.
    pub fn last(&self) -> SymBits {
        SymBits(self.lanes[1])
    }

    /// Every symbol of any word.
    pub fn symbols(&self) -> SymBits {
        SymBits(self.lanes[2])
    }

    /// Whether ε is in the language.
    pub fn nullable(&self) -> bool {
        self.lanes[3] != 0
    }

    /// Whether `L(self) ⊆ L(sup)` is *possible*: the conjunction of the
    /// necessary conditions `ε ∈ L(self) ⇒ ε ∈ L(sup)`,
    /// `first(self) ⊆ first(sup)`, `last(self) ⊆ last(sup)` and
    /// `alphabet(self) ⊆ alphabet(sup)` (each evaluated on the lossy
    /// bitsets, which can only widen the sets). A `false` here means the
    /// real subset check must answer `false`; a `true` decides nothing.
    ///
    /// Each condition is a lane-wise `self & !sup == 0` — including the
    /// ε implication, since `a ⇒ b` over the 0/1 flag lane *is* bit
    /// containment — so the whole test is four and-nots and one compare.
    pub fn could_be_subset_of(&self, sup: &SideSig) -> bool {
        let (a, b) = (&self.lanes, &sup.lanes);
        let bad = (a[0] & !b[0]) | (a[1] & !b[1]) | (a[2] & !b[2]) | (a[3] & !b[3]);
        bad == 0
    }

    /// Whether `L(self) = L(other)` is possible (both inclusion directions
    /// pass the necessary conditions).
    pub fn could_equal(&self, other: &SideSig) -> bool {
        self.could_be_subset_of(other) && other.could_be_subset_of(self)
    }
}

/// One axiom with its compiled per-side metadata.
#[derive(Debug, Clone)]
pub struct CompiledAxiom {
    axiom: Axiom,
    lhs_sig: SideSig,
    rhs_sig: SideSig,
    /// Minimized DFAs of both sides over their own alphabets — compile-time
    /// artifacts (`None` when the side tripped [`COMPILE_MAX_STATES`]).
    lhs_min: Option<Arc<Dfa>>,
    rhs_min: Option<Arc<Dfa>>,
    /// Raw (subset-construction) state counts behind the minimized DFAs.
    raw_states: usize,
}

impl CompiledAxiom {
    /// The underlying axiom.
    pub fn axiom(&self) -> &Axiom {
        &self.axiom
    }

    /// The axiom's display label (name or rendered form).
    pub fn label(&self) -> String {
        self.axiom.label()
    }

    /// The axiom form.
    pub fn kind(&self) -> AxiomKind {
        self.axiom.kind()
    }

    /// Left side expression.
    pub fn lhs(&self) -> &Regex {
        self.axiom.lhs()
    }

    /// Right side expression.
    pub fn rhs(&self) -> &Regex {
        self.axiom.rhs()
    }

    /// Interned left side.
    pub fn lhs_id(&self) -> RegexId {
        self.axiom.lhs_id()
    }

    /// Interned right side.
    pub fn rhs_id(&self) -> RegexId {
        self.axiom.rhs_id()
    }

    /// Dispatch signature of the left side.
    pub fn lhs_sig(&self) -> &SideSig {
        &self.lhs_sig
    }

    /// Dispatch signature of the right side.
    pub fn rhs_sig(&self) -> &SideSig {
        &self.rhs_sig
    }

    /// The compile-time minimized DFA of the left side, if built.
    pub fn lhs_min_dfa(&self) -> Option<&Arc<Dfa>> {
        self.lhs_min.as_ref()
    }

    /// The compile-time minimized DFA of the right side, if built.
    pub fn rhs_min_dfa(&self) -> Option<&Arc<Dfa>> {
        self.rhs_min.as_ref()
    }
}

/// How the compiled set answers "is `f` injective?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injectivity<'c> {
    /// Decided at compile time: `Some(label)` names the certifying axiom,
    /// `None` means no axiom makes the field injective.
    Decided(Option<&'c str>),
    /// At least one distinct-origin axiom tripped the compile-time state
    /// cap; the caller must fall back to runtime subset checks.
    Undecided,
}

/// A compiled [`AxiomSet`]: per-axiom dispatch signatures, per-kind
/// indexes, and the compile-time injectivity map. Build once per set (the
/// engine shares one across its worker provers via [`Arc`]).
#[derive(Debug)]
pub struct CompiledAxioms {
    set_id: AxiomSetId,
    axioms: Vec<CompiledAxiom>,
    same_origin: Vec<u32>,
    distinct_origins: Vec<u32>,
    equal: Vec<u32>,
    /// Symbol → bit index over the set's alphabet (bit 63 = overflow).
    bit: HashMap<Symbol, u32>,
    /// Field → label of the first axiom certifying it injective.
    injective: HashMap<Symbol, String>,
    /// Distinct-origin axiom indices whose injectivity question tripped the
    /// compile-time cap (empty for every sane axiom set).
    injective_undecided: Vec<u32>,
    /// Total minimized states across all compiled axiom sides.
    min_states: usize,
    /// Total raw subset-construction states behind them.
    raw_states: usize,
}

impl CompiledAxioms {
    /// Compiles `set`: interns per-side metadata, builds the per-kind
    /// indexes, and decides the injectivity map.
    pub fn compile(set: &AxiomSet) -> CompiledAxioms {
        let bit = Self::alphabet_bits(set);
        let limits = Limits::none().with_max_states(COMPILE_MAX_STATES);

        let mut axioms = Vec::with_capacity(set.len());
        let mut same_origin = Vec::new();
        let mut distinct_origins = Vec::new();
        let mut equal = Vec::new();
        let mut injective: HashMap<Symbol, String> = HashMap::new();
        let mut injective_undecided = Vec::new();
        let mut min_states = 0usize;
        let mut raw_states = 0usize;

        for (i, ax) in set.iter().enumerate() {
            let idx = u32::try_from(i).expect("axiom set too large to compile");
            let lhs_sig = Self::sig_for(&bit, ax.lhs_id());
            let rhs_sig = Self::sig_for(&bit, ax.rhs_id());
            let (lhs_min, lhs_raw) = Self::min_dfa(ax.lhs(), &limits);
            let (rhs_min, rhs_raw) = Self::min_dfa(ax.rhs(), &limits);
            raw_states += lhs_raw + rhs_raw;
            min_states += lhs_min.as_ref().map_or(0, |d| d.state_count())
                + rhs_min.as_ref().map_or(0, |d| d.state_count());

            match ax.kind() {
                AxiomKind::DisjointSameOrigin => same_origin.push(idx),
                AxiomKind::DisjointDistinctOrigins => {
                    distinct_origins.push(idx);
                    match Self::injective_field(ax, &limits) {
                        Ok(Some(f)) => {
                            injective.entry(f).or_insert_with(|| ax.label());
                        }
                        Ok(None) => {}
                        Err(()) => injective_undecided.push(idx),
                    }
                }
                AxiomKind::Equal => equal.push(idx),
            }

            axioms.push(CompiledAxiom {
                axiom: ax.clone(),
                lhs_sig,
                rhs_sig,
                lhs_min,
                rhs_min,
                raw_states: lhs_raw + rhs_raw,
            });
        }

        CompiledAxioms {
            set_id: set.id(),
            axioms,
            same_origin,
            distinct_origins,
            equal,
            bit,
            injective,
            injective_undecided,
            min_states,
            raw_states,
        }
    }

    fn alphabet_bits(set: &AxiomSet) -> HashMap<Symbol, u32> {
        set.symbols()
            .into_iter()
            .enumerate()
            .map(|(i, s)| (s, (i as u32).min(SymBits::OVERFLOW)))
            .collect()
    }

    fn bits_of(bit: &HashMap<Symbol, u32>, syms: &[Symbol]) -> SymBits {
        let mut out = 0u64;
        for s in syms {
            let b = bit.get(s).copied().unwrap_or(SymBits::OVERFLOW);
            out |= 1u64 << b;
        }
        SymBits(out)
    }

    fn sig_for(bit: &HashMap<Symbol, u32>, id: RegexId) -> SideSig {
        let (nullable, first, last, symbols) = id.profile();
        SideSig::new(
            Self::bits_of(bit, &first),
            Self::bits_of(bit, &last),
            Self::bits_of(bit, &symbols),
            nullable,
        )
    }

    fn min_dfa(re: &Regex, limits: &Limits) -> (Option<Arc<Dfa>>, usize) {
        let alpha = re.symbols();
        match Dfa::try_build(re, &alpha, limits) {
            Ok(raw) => {
                let raw_states = raw.state_count();
                (Some(Arc::new(raw.minimize())), raw_states)
            }
            Err(_) => (None, 0),
        }
    }

    /// Decides whether `ax` (distinct-origin) certifies some field `f`
    /// injective: both sides language-equal to the one-word language `{f}`.
    /// `Err(())` means the compile-time cap stopped the decision.
    fn injective_field(ax: &Axiom, limits: &Limits) -> Result<Option<Symbol>, ()> {
        // Necessary structural conditions first — they decide the common
        // "obviously not" case without touching any automaton.
        let lhs_syms = ax.lhs().symbols();
        let [f] = lhs_syms[..] else {
            return Ok(None);
        };
        let fre = Regex::field(f);
        let fre_id = RegexId::intern(&fre);
        // Structural fast path, mirroring the prover's id compare.
        if ax.lhs_id() == fre_id && ax.rhs_id() == fre_id {
            return Ok(Some(f));
        }
        if ax.lhs().is_nullable() || ax.rhs().is_nullable() || ax.rhs().symbols() != [f] {
            return Ok(None);
        }
        let equal_to_f = |side: &Regex| -> Result<bool, ()> {
            ops::try_equivalent(side, &fre, limits).map_err(|_| ())
        };
        Ok((equal_to_f(ax.lhs())? && equal_to_f(ax.rhs())?).then_some(f))
    }

    /// The identity of the compiled set.
    pub fn set_id(&self) -> AxiomSetId {
        self.set_id
    }

    /// All compiled axioms, in set order.
    pub fn axioms(&self) -> &[CompiledAxiom] {
        &self.axioms
    }

    /// The compiled axioms of one kind, in set order.
    pub fn of_kind(&self, kind: AxiomKind) -> impl Iterator<Item = &CompiledAxiom> {
        let idx = match kind {
            AxiomKind::DisjointSameOrigin => &self.same_origin,
            AxiomKind::DisjointDistinctOrigins => &self.distinct_origins,
            AxiomKind::Equal => &self.equal,
        };
        idx.iter().map(|&i| &self.axioms[i as usize])
    }

    /// The equality axioms, in set order (borrowed — the prover no longer
    /// clones `eq_axioms` per rewrite attempt).
    pub fn eq_axioms(&self) -> impl Iterator<Item = &CompiledAxiom> {
        self.of_kind(AxiomKind::Equal)
    }

    /// Whether the set contains any equality axiom.
    pub fn has_equal(&self) -> bool {
        !self.equal.is_empty()
    }

    /// The compile-time injectivity verdict for `f`.
    pub fn injectivity(&self, f: Symbol) -> Injectivity<'_> {
        if !self.injective_undecided.is_empty() {
            return Injectivity::Undecided;
        }
        Injectivity::Decided(self.injective.get(&f).map(String::as_str))
    }

    /// The dispatch signature of an arbitrary interned expression (a goal
    /// side), over this set's alphabet.
    pub fn sig_of(&self, id: RegexId) -> SideSig {
        Self::sig_for(&self.bit, id)
    }

    /// Total `(raw, minimized)` DFA states across all compiled axiom sides
    /// — the compile-time half of the minimized-vs-raw observability
    /// counters.
    pub fn state_totals(&self) -> (usize, usize) {
        (self.raw_states, self.min_states)
    }

    /// Raw states behind axiom `idx`'s sides (observability).
    pub fn raw_states_of(&self, idx: usize) -> usize {
        self.axioms[idx].raw_states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adds;

    fn sig(c: &CompiledAxioms, text: &str) -> SideSig {
        c.sig_of(RegexId::intern(&apt_regex::parse(text).unwrap()))
    }

    #[test]
    fn per_kind_indexes_cover_the_set_in_order() {
        let set = adds::sparse_matrix_axioms();
        let c = CompiledAxioms::compile(&set);
        assert_eq!(c.axioms().len(), set.len());
        assert_eq!(c.set_id(), set.id());
        let mut count = 0;
        for kind in [
            AxiomKind::DisjointSameOrigin,
            AxiomKind::DisjointDistinctOrigins,
            AxiomKind::Equal,
        ] {
            let labels: Vec<String> = c.of_kind(kind).map(CompiledAxiom::label).collect();
            let expect: Vec<String> = set.of_kind(kind).map(Axiom::label).collect();
            assert_eq!(labels, expect, "{kind:?}");
            count += labels.len();
        }
        assert_eq!(count, set.len());
    }

    #[test]
    fn sig_pruning_is_sound_on_axiom_sides() {
        // For every pair of axiom sides, a pruned pair must be a real
        // non-subset; every real subset must pass the signature check.
        let set = adds::leaf_linked_tree_axioms();
        let c = CompiledAxioms::compile(&set);
        let sides: Vec<(&Regex, SideSig)> = c
            .axioms()
            .iter()
            .flat_map(|ca| [(ca.lhs(), *ca.lhs_sig()), (ca.rhs(), *ca.rhs_sig())])
            .collect();
        for (ra, sa) in &sides {
            for (rb, sb) in &sides {
                if ops::is_subset(ra, rb) {
                    assert!(
                        sa.could_be_subset_of(sb),
                        "signature pruned a real subset: {ra} ⊆ {rb}"
                    );
                }
            }
        }
    }

    #[test]
    fn injectivity_decided_from_figure3() {
        // Figure 3: A2 (forall p<>q, p.(L|R) <> q.(L|R)) is not per-field
        // injective; A3 (forall p<>q, p.N <> q.N) certifies N.
        let set = adds::leaf_linked_tree_axioms();
        let c = CompiledAxioms::compile(&set);
        let n = Symbol::from("N");
        let l = Symbol::from("L");
        assert_eq!(c.injectivity(n), Injectivity::Decided(Some("A3")));
        assert_eq!(c.injectivity(l), Injectivity::Decided(None));
    }

    #[test]
    fn injectivity_up_to_language_equality() {
        // The certifying side need not be the literal field: N|N and
        // N.N* ∩ … — here N|N simplifies structurally, so exercise a
        // genuinely non-literal form.
        let set = AxiomSet::parse("J1: forall p <> q, p.(N.N*|N) <> q.N").unwrap();
        let c = CompiledAxioms::compile(&set);
        // lhs is N.N*|N which is N+ — NOT language-equal to {N}; so J1
        // does not certify injectivity.
        assert_eq!(c.injectivity(Symbol::from("N")), Injectivity::Decided(None));

        let set = AxiomSet::parse("J2: forall p <> q, p.(N|N) <> q.N").unwrap();
        let c = CompiledAxioms::compile(&set);
        assert_eq!(
            c.injectivity(Symbol::from("N")),
            Injectivity::Decided(Some("J2"))
        );
    }

    #[test]
    fn goal_sigs_respect_overflow_and_foreign_symbols() {
        let set = adds::leaf_linked_tree_axioms(); // alphabet {L, N, R}
        let c = CompiledAxioms::compile(&set);
        let foreign = sig(&c, "zzz");
        // A foreign symbol maps to the overflow bit, which no axiom-side
        // signature contains — so dispatch prunes it against every side.
        for ca in c.axioms() {
            assert!(!foreign.could_be_subset_of(ca.lhs_sig()));
            assert!(!foreign.could_be_subset_of(ca.rhs_sig()));
        }
        // But ∅ and ε remain compatible everywhere / nullable-gated.
        let eps = sig(&c, "eps");
        assert!(eps.first().is_empty() && eps.nullable());
    }

    #[test]
    fn lane_packed_containment_matches_the_four_conditions() {
        // The 4-lane fold must agree with the written-out conjunction on
        // every pair of goal/axiom signatures the paper suites produce.
        let set = adds::sparse_matrix_axioms();
        let c = CompiledAxioms::compile(&set);
        let mut sigs: Vec<SideSig> = c
            .axioms()
            .iter()
            .flat_map(|ca| [*ca.lhs_sig(), *ca.rhs_sig()])
            .collect();
        for text in ["eps", "empty", "zzz", "ncolE", "nrowE.ncolE*", "d*"] {
            sigs.push(sig(&c, text));
        }
        for a in &sigs {
            for b in &sigs {
                let naive = (!a.nullable() || b.nullable())
                    && b.first().contains_all(a.first())
                    && b.last().contains_all(a.last())
                    && b.symbols().contains_all(a.symbols());
                assert_eq!(a.could_be_subset_of(b), naive, "{a:?} vs {b:?}");
                assert_eq!(
                    a.could_equal(b),
                    a.could_be_subset_of(b) && b.could_be_subset_of(a)
                );
            }
        }
    }

    #[test]
    fn minimized_dfas_are_no_larger_than_raw() {
        let set = adds::sparse_matrix_axioms();
        let c = CompiledAxioms::compile(&set);
        let (raw, min) = c.state_totals();
        assert!(min <= raw, "minimized {min} > raw {raw}");
        assert!(min > 0);
        for (i, ca) in c.axioms().iter().enumerate() {
            assert!(ca.lhs_min_dfa().is_some());
            assert!(ca.rhs_min_dfa().is_some());
            assert!(c.raw_states_of(i) > 0);
        }
    }

    #[test]
    fn eq_axioms_borrowed_in_order() {
        let set = AxiomSet::parse(
            "D1: forall p, p.next.prev = p.eps\n\
             D2: forall p, p.prev.next = p.eps\n\
             D3: forall p, p.next+ <> p.eps",
        )
        .unwrap();
        let c = CompiledAxioms::compile(&set);
        assert!(c.has_equal());
        let labels: Vec<String> = c.eq_axioms().map(CompiledAxiom::label).collect();
        assert_eq!(labels, ["D1", "D2"]);
    }
}
