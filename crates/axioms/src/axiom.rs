//! Aliasing axioms (§3.1 of the paper).
//!
//! An axiom states a uniform aliasing property of a data structure and takes
//! one of three forms:
//!
//! 1. `∀ p, p.RE1 <> p.RE2` — from any one vertex, the two path sets never
//!    meet ([`AxiomKind::DisjointSameOrigin`]).
//! 2. `∀ p <> q, p.RE1 <> q.RE2` — from two *distinct* vertices, the two
//!    path sets never meet ([`AxiomKind::DisjointDistinctOrigins`]).
//! 3. `∀ p, p.RE1 = p.RE2` — the two path sets are always equal; used to
//!    describe cycles ([`AxiomKind::Equal`]).

use apt_regex::{Regex, RegexId};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The three axiom forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AxiomKind {
    /// `∀ p, p.RE1 <> p.RE2`.
    DisjointSameOrigin,
    /// `∀ p <> q, p.RE1 <> q.RE2`.
    DisjointDistinctOrigins,
    /// `∀ p, p.RE1 = p.RE2`.
    Equal,
}

/// One aliasing axiom: a kind plus its two regular expressions and an
/// optional name used in proof traces (the paper labels axioms `A1`, `A2`, …).
///
/// Both sides are hash-consed at construction ([`Axiom::lhs_id`],
/// [`Axiom::rhs_id`]), so the prover's per-goal applicability scans compare
/// and cache axiom sides by id without re-interning or formatting them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Axiom {
    name: Option<String>,
    kind: AxiomKind,
    lhs: Regex,
    rhs: Regex,
    // Ids are a pure function of the trees above, so the derived
    // PartialEq/Hash stay consistent with the pre-id definition.
    lhs_id: RegexId,
    rhs_id: RegexId,
}

impl Axiom {
    fn new(kind: AxiomKind, lhs: Regex, rhs: Regex) -> Axiom {
        let lhs_id = RegexId::intern(&lhs);
        let rhs_id = RegexId::intern(&rhs);
        Axiom {
            name: None,
            kind,
            lhs,
            rhs,
            lhs_id,
            rhs_id,
        }
    }

    /// `∀ p, p.lhs <> p.rhs`.
    pub fn disjoint_same_origin(lhs: Regex, rhs: Regex) -> Axiom {
        Axiom::new(AxiomKind::DisjointSameOrigin, lhs, rhs)
    }

    /// `∀ p <> q, p.lhs <> q.rhs`.
    pub fn disjoint_distinct_origins(lhs: Regex, rhs: Regex) -> Axiom {
        Axiom::new(AxiomKind::DisjointDistinctOrigins, lhs, rhs)
    }

    /// `∀ p, p.lhs = p.rhs`.
    pub fn equal(lhs: Regex, rhs: Regex) -> Axiom {
        Axiom::new(AxiomKind::Equal, lhs, rhs)
    }

    /// Attaches a trace name (`A1`, `A2`, …).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Axiom {
        self.name = Some(name.into());
        self
    }

    /// The trace name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The axiom form.
    pub fn kind(&self) -> AxiomKind {
        self.kind
    }

    /// The left path expression (`RE1`).
    pub fn lhs(&self) -> &Regex {
        &self.lhs
    }

    /// The right path expression (`RE2`).
    pub fn rhs(&self) -> &Regex {
        &self.rhs
    }

    /// The hash-consed id of [`Axiom::lhs`], interned once at construction.
    pub fn lhs_id(&self) -> RegexId {
        self.lhs_id
    }

    /// The hash-consed id of [`Axiom::rhs`], interned once at construction.
    pub fn rhs_id(&self) -> RegexId {
        self.rhs_id
    }

    /// Whether this is one of the two disjointness forms.
    pub fn is_disjointness(&self) -> bool {
        matches!(
            self.kind,
            AxiomKind::DisjointSameOrigin | AxiomKind::DisjointDistinctOrigins
        )
    }

    /// A short label for traces: the name if present, otherwise the full
    /// statement.
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => self.to_string(),
        }
    }
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        match self.kind {
            AxiomKind::DisjointSameOrigin => {
                write!(f, "forall p, p.{} <> p.{}", self.lhs, self.rhs)
            }
            AxiomKind::DisjointDistinctOrigins => {
                write!(f, "forall p <> q, p.{} <> q.{}", self.lhs, self.rhs)
            }
            AxiomKind::Equal => write!(f, "forall p, p.{} = p.{}", self.lhs, self.rhs),
        }
    }
}

/// Error from parsing an axiom's concrete syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAxiomError {
    /// What went wrong.
    pub message: String,
    /// The 1-based source line, when parsing multi-line input
    /// ([`crate::AxiomSet::parse`] fills this in).
    pub line: Option<usize>,
}

impl ParseAxiomError {
    /// Attaches the 1-based source line the error occurred on.
    #[must_use]
    pub fn at_line(mut self, line: usize) -> ParseAxiomError {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for ParseAxiomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "axiom parse error at line {line}: {}", self.message),
            None => write!(f, "axiom parse error: {}", self.message),
        }
    }
}

impl Error for ParseAxiomError {}

fn err(message: impl Into<String>) -> ParseAxiomError {
    ParseAxiomError {
        message: message.into(),
        line: None,
    }
}

/// Strips a leading `var.` from an axiom side and parses the remainder as a
/// regular expression; a bare `var` denotes `ε`.
fn parse_side(side: &str, var: &str) -> Result<Regex, ParseAxiomError> {
    let side = side.trim();
    if side == var {
        return Ok(Regex::epsilon());
    }
    let Some(rest) = side.strip_prefix(var) else {
        return Err(err(format!(
            "axiom side {side:?} must start with quantified variable {var:?}"
        )));
    };
    let Some(re_text) = rest.trim_start().strip_prefix('.') else {
        return Err(err(format!(
            "expected '.' after variable in axiom side {side:?}"
        )));
    };
    apt_regex::parse(re_text).map_err(|e| err(format!("in side {side:?}: {e}")))
}

impl FromStr for Axiom {
    type Err = ParseAxiomError;

    /// Parses the paper's concrete axiom syntax, optionally prefixed by a
    /// `Name:` label:
    ///
    /// ```
    /// use apt_axioms::Axiom;
    /// let a1: Axiom = "A1: forall p, p.L <> p.R".parse().unwrap();
    /// assert_eq!(a1.name(), Some("A1"));
    /// let a2: Axiom = "forall p <> q, p.(L|R) <> q.(L|R)".parse().unwrap();
    /// let cyc: Axiom = "forall p, p.nextZ = p.eps".parse().unwrap();
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        // Optional "Name:" prefix (must come before "forall").
        let (name, s) = match s.find(':') {
            Some(ci) if !s[..ci].contains("forall") => {
                (Some(s[..ci].trim().to_owned()), s[ci + 1..].trim())
            }
            _ => (None, s),
        };
        let Some(rest) = s.strip_prefix("forall") else {
            return Err(err("axiom must start with 'forall'"));
        };
        let Some(comma) = rest.find(',') else {
            return Err(err("missing ',' after quantifier"));
        };
        let quant = rest[..comma].trim();
        let body = rest[comma + 1..].trim();

        let (kind_hint, pvar, qvar) = if let Some((p, q)) = quant.split_once("<>") {
            (true, p.trim().to_owned(), q.trim().to_owned())
        } else {
            (false, quant.to_owned(), quant.to_owned())
        };
        if pvar.is_empty() || qvar.is_empty() {
            return Err(err(format!("bad quantifier {quant:?}")));
        }

        // Body: either `p.RE1 <> q.RE2` or `p.RE1 = p.RE2`.
        if let Some((l, r)) = body.split_once("<>") {
            let lhs = parse_side(l, &pvar)?;
            let rhs = parse_side(r, &qvar)?;
            let ax = if kind_hint {
                Axiom::disjoint_distinct_origins(lhs, rhs)
            } else {
                Axiom::disjoint_same_origin(lhs, rhs)
            };
            Ok(match name {
                Some(n) => ax.named(n),
                None => ax,
            })
        } else if let Some((l, r)) = body.split_once('=') {
            if kind_hint {
                return Err(err("equality axioms quantify a single variable"));
            }
            let lhs = parse_side(l, &pvar)?;
            let rhs = parse_side(r, &qvar)?;
            let ax = Axiom::equal(lhs, rhs);
            Ok(match name {
                Some(n) => ax.named(n),
                None => ax,
            })
        } else {
            Err(err("axiom body must relate two sides with '<>' or '='"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_regex::parse as re;

    #[test]
    fn parse_same_origin() {
        let a: Axiom = "forall p, p.L <> p.R".parse().unwrap();
        assert_eq!(a.kind(), AxiomKind::DisjointSameOrigin);
        assert_eq!(a.lhs(), &re("L").unwrap());
        assert_eq!(a.rhs(), &re("R").unwrap());
    }

    #[test]
    fn parse_distinct_origins() {
        let a: Axiom = "forall p <> q, p.ncolE <> q.ncolE".parse().unwrap();
        assert_eq!(a.kind(), AxiomKind::DisjointDistinctOrigins);
    }

    #[test]
    fn parse_equality() {
        let a: Axiom = "forall p, p.next+ = p.next*".parse().unwrap();
        assert_eq!(a.kind(), AxiomKind::Equal);
    }

    #[test]
    fn parse_epsilon_side() {
        let a: Axiom = "forall p, p.(L|R|N)+ <> p.eps".parse().unwrap();
        assert!(a.rhs().is_epsilon());
        // bare variable also means ε
        let b: Axiom = "forall p, p.(L|R|N)+ <> p".parse().unwrap();
        assert!(b.rhs().is_epsilon());
    }

    #[test]
    fn parse_named() {
        let a: Axiom = "A4: forall p, p.(L|R|N)+ <> p.eps".parse().unwrap();
        assert_eq!(a.name(), Some("A4"));
        assert_eq!(a.label(), "A4");
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "forall p, p.L <> p.R",
            "forall p <> q, p.(L|R) <> q.(L|R)",
            "forall p, p.next = p.prev",
        ] {
            let a: Axiom = text.parse().unwrap();
            let b: Axiom = a.to_string().parse().unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!("p.L <> p.R".parse::<Axiom>().is_err());
        assert!("forall p p.L <> p.R".parse::<Axiom>().is_err());
        assert!("forall p, q.L <> p.R".parse::<Axiom>().is_err());
        assert!("forall p <> q, p.L = q.L".parse::<Axiom>().is_err());
        assert!("forall p, p.L".parse::<Axiom>().is_err());
    }

    #[test]
    fn sides_are_interned_at_construction() {
        let a: Axiom = "forall p, p.L <> p.R".parse().unwrap();
        assert_eq!(a.lhs_id(), RegexId::intern(a.lhs()));
        assert_eq!(a.rhs_id(), RegexId::intern(a.rhs()));
        // Structurally equal sides of different axioms share one id.
        let b: Axiom = "forall p <> q, p.L <> q.N".parse().unwrap();
        assert_eq!(a.lhs_id(), b.lhs_id());
        assert_ne!(a.rhs_id(), b.rhs_id());
    }

    #[test]
    fn quantifier_variable_names_are_free() {
        let a: Axiom = "forall x, x.L <> x.R".parse().unwrap();
        assert_eq!(a.kind(), AxiomKind::DisjointSameOrigin);
        let b: Axiom = "forall u <> v, u.N <> v.N".parse().unwrap();
        assert_eq!(b.kind(), AxiomKind::DisjointDistinctOrigins);
    }
}
