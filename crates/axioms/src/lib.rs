//! Aliasing axioms for dynamic, pointer-based data structures.
//!
//! Part of the reproduction of Hummel, Hendren & Nicolau, *A General Data
//! Dependence Test for Dynamic, Pointer-Based Data Structures* (PLDI 1994).
//! An **aliasing axiom** (§3.1) states a uniform property of a data
//! structure — e.g. "from any vertex, `L` and `R` lead to different
//! vertices" — and takes one of three forms over regular path expressions.
//! Sets of axioms are the first input to the APT dependence tester (the
//! second being access paths, see `apt-paths`).
//!
//! This crate provides:
//!
//! * [`Axiom`]/[`AxiomKind`] — the three axiom forms with the paper's
//!   concrete syntax (`forall p, p.L <> p.R`).
//! * [`AxiomSet`] — identity-carrying collections with the §3.4
//!   intersection rule for structural modifications.
//! * [`adds`] — the higher-level description layer (tree/list/acyclic
//!   declarations) plus the paper's canned axiom sets (Figure 3 and
//!   Appendix A).
//! * [`graph`]/[`check`] — concrete heap graphs and a model checker that
//!   verifies an axiom set against a heap, used as ground truth by the
//!   soundness tests.
//!
//! # Example
//!
//! ```
//! use apt_axioms::{adds, check::check_set, graph::HeapGraph};
//!
//! let axioms = adds::leaf_linked_tree_axioms();
//! let mut heap = HeapGraph::new();
//! let n = heap.add_nodes(3);
//! heap.set_edge(n[0], "L", n[1]);
//! heap.set_edge(n[0], "R", n[2]);
//! heap.set_edge(n[1], "N", n[2]);
//! assert!(check_set(&heap, &axioms).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adds;
mod axiom;
pub mod check;
pub mod compiled;
pub mod graph;
mod set;

pub use axiom::{Axiom, AxiomKind, ParseAxiomError};
pub use compiled::{CompiledAxiom, CompiledAxioms, Injectivity, SideSig, SymBits};
pub use set::{AxiomSet, AxiomSetId};
