//! A minimal JSON value, parser, and writer.
//!
//! The workspace builds fully offline with no serialization dependency,
//! so the serving layer carries its own JSON: a recursive-descent parser
//! with a depth bound (a network peer must not be able to blow the stack
//! with `[[[[…`), and a deterministic writer (object keys keep insertion
//! order, so protocol frames are stable across runs and easy to diff in
//! tests). Only what the wire protocol needs is implemented — no
//! streaming, no arbitrary-precision numbers.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (IEEE double, like real-world JSON).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON text (one line, no trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Builds an object from key/value pairs (used by the protocol layer).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `text`; trailing non-whitespace is an
/// error (a frame is exactly one value).
///
/// # Errors
///
/// Returns a [`JsonError`] naming the offending byte offset.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos after the last digit; the
                            // shared `pos += 1` below would skip a char.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    match s.chars().next() {
                        Some(c) => {
                            if (c as u32) < 0x20 {
                                return Err(self.err("unescaped control character"));
                            }
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_frames() {
        let frame = obj(vec![
            ("verb", "prove".into()),
            ("a", "L.L.N".into()),
            ("fuel", Json::Num(100000.0)),
            ("deadline", Json::Null),
            (
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Bool(false)]),
            ),
        ]);
        let text = frame.render();
        assert_eq!(
            text,
            r#"{"verb":"prove","a":"L.L.N","fuel":100000,"deadline":null,"flags":[true,false]}"#
        );
        assert_eq!(parse(&text).unwrap(), frame);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::Str("a\"b\\c\nd\tπ\u{1}".to_owned());
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
        // Unicode escapes, including a surrogate pair.
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            r#"{"a" 1}"#,
            r#"{"a":1} extra"#,
            "\"unterminated",
            r#""\ud800x""#,
            "{\"k\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: must error, not overflow the stack.
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_accessors() {
        let v = parse(r#"{"n": 42, "f": 1.5, "neg": -3, "big": 1e3}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("big").unwrap().as_u64(), Some(1000));
        assert!(v.get("missing").is_none());
    }
}
