//! The event loop: every connection is a state machine, no connection
//! is a thread.
//!
//! One reactor thread owns an epoll instance ([`crate::poll::Poller`]),
//! the nonblocking listeners, and a map of connection state machines.
//! Readiness drives everything:
//!
//! * **Reads** accumulate into a per-connection buffer with the
//!   [`crate::server::MAX_LINE`] frame cap enforced *incrementally* — a
//!   partial frame is rejected the moment it crosses the cap, not after
//!   the whole oversized line has been buffered. Complete lines queue
//!   (bounded by [`crate::server::PIPELINE_DEPTH`]) behind the single
//!   in-flight request each connection is allowed, preserving in-order
//!   responses and the pool's admission-control semantics.
//! * **Writes** go through a per-connection output buffer. `WouldBlock`
//!   arms write interest; a slow reader therefore never blocks a worker
//!   — the reply parks in the buffer and read interest is suspended
//!   once the buffer passes its high-water mark (backpressure), so a
//!   peer that stops reading also stops being read.
//! * **Deadlines** live on a timer wheel instead of per-socket
//!   `set_read_timeout`: an idle connection, or one dribbling a partial
//!   frame (slow-loris), gets a machine-readable `timeout` frame and is
//!   closed. The deadline renews on activity while the read buffer is
//!   empty; a partial frame must complete within one deadline of its
//!   first byte.
//! * **Workers** never touch sockets. The reactor parses a frame and
//!   either answers inline (control verbs) or submits a job to the
//!   bounded pool; the worker pushes the finished frame onto a
//!   completion queue and rings the reactor's eventfd
//!   [`crate::poll::Waker`]. Disconnects cancel the connection's
//!   [`CancelToken`], aborting in-flight proofs exactly as the threaded
//!   implementation did.
//!
//! Shutdown (the `shutdown` verb or
//! [`crate::server::ServerHandle::stop`]) also rides the waker: the
//! loop wakes immediately, flushes the shutdown reply, closes every
//! connection (cancelling their tokens), and returns — no sleep-polling
//! anywhere.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use apt_core::CancelToken;

use crate::json::Json;
use crate::metrics::Metrics;
use crate::poll::{Event, Interest, Poller, Waker};
use crate::proto::{error_frame, ErrorCode, ProtoError};
use crate::server::{handle_line, Ctx, FlushMsg, LineOutcome, MAX_LINE, PIPELINE_DEPTH};

/// Stop reading from a connection whose unsent replies exceed this;
/// resume below [`OUTBUF_LOW`]. A slow reader parks its own replies
/// here instead of blocking anyone.
const OUTBUF_HIGH: usize = 256 * 1024;
/// Resume reading once the output buffer drains under this.
const OUTBUF_LOW: usize = 64 * 1024;
/// Read chunk size per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Timer-wheel slot granularity: deadlines fire within one tick of
/// expiry, which is plenty for idle timeouts measured in hundreds of
/// milliseconds to minutes.
const WHEEL_TICK: Duration = Duration::from_millis(50);
/// Timer-wheel slots; deadlines further out than `SLOTS × TICK` are
/// re-examined when their slot comes around.
const WHEEL_SLOTS: usize = 128;

/// Token of the reactor's eventfd waker.
const WAKER_TOKEN: u64 = u64::MAX;
/// First connection token; listeners use `0..CONN_BASE`.
const CONN_BASE: u64 = 1024;

// ---------------------------------------------------------------------------
// Sockets.
// ---------------------------------------------------------------------------

/// A nonblocking accepted socket, TCP or Unix.
pub(crate) enum Stream {
    /// TCP connection (`TCP_NODELAY` set by the listener).
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => {
                let mut r: &TcpStream = s;
                r.read(buf)
            }
            Stream::Unix(s) => {
                let mut r: &UnixStream = s;
                r.read(buf)
            }
        }
    }

    fn write(&self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => {
                let mut w: &TcpStream = s;
                w.write(buf)
            }
            Stream::Unix(s) => {
                let mut w: &UnixStream = s;
                w.write(buf)
            }
        }
    }

    fn fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// A bound, nonblocking listener.
pub(crate) enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener plus its socket-file path (removed on
    /// shutdown).
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Accepts one pending connection, nonblocking.
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                // One-line request/response frames: Nagle + delayed ACK
                // would add ~40ms per round-trip.
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Stream::Unix(stream))
            }
        }
    }

    fn fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker → reactor completions.
// ---------------------------------------------------------------------------

/// A finished pooled job: the rendered response frame headed back to
/// its connection's write buffer.
pub(crate) struct Completion {
    /// Connection token the reply belongs to.
    pub(crate) conn: u64,
    /// The response frame.
    pub(crate) frame: Json,
    /// When the request line arrived (service-time histogram start).
    pub(crate) started: Instant,
    /// The connection's cancel token at submission time; cancelled
    /// here means the peer vanished mid-proof.
    pub(crate) cancel: CancelToken,
}

/// What worker threads share with the reactor: the completion queue and
/// the eventfd that interrupts a blocked `epoll_wait`.
pub(crate) struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    /// Rung by workers after pushing a completion and by
    /// [`crate::server::ServerHandle::stop`].
    pub(crate) waker: Waker,
}

impl ReactorShared {
    pub(crate) fn new(waker: Waker) -> ReactorShared {
        ReactorShared {
            completions: Mutex::new(Vec::new()),
            waker,
        }
    }

    /// Queues a finished reply and wakes the reactor.
    pub(crate) fn push(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(completion);
        self.waker.wake();
    }

    fn take(&self) -> Vec<Completion> {
        std::mem::take(
            &mut *self
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
}

// ---------------------------------------------------------------------------
// Timer wheel.
// ---------------------------------------------------------------------------

/// A hashed timer wheel over connection tokens. Entries are *hints*:
/// each connection holds its authoritative deadline, the wheel only
/// schedules when to look. A deadline that moved later by the time its
/// slot fires is re-inserted; a connection holds at most one live wheel
/// entry (`Conn::in_wheel`), so re-arming on every request costs
/// nothing.
struct TimerWheel {
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_tick: Instant,
    armed: usize,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_tick: now,
            armed: 0,
        }
    }

    /// Schedules `token` to be examined no later than `deadline`.
    fn insert(&mut self, deadline: Instant, token: u64) {
        let ticks_away = deadline
            .saturating_duration_since(self.last_tick)
            .as_millis()
            .checked_div(WHEEL_TICK.as_millis())
            .unwrap_or(0) as usize;
        // At least one tick out (never the slot currently firing), at
        // most a full revolution (farther deadlines get re-inserted).
        let ticks_away = ticks_away.clamp(1, WHEEL_SLOTS - 1);
        let slot = (self.cursor + ticks_away) % WHEEL_SLOTS;
        self.slots[slot].push(token);
        self.armed += 1;
    }

    /// Advances to `now`, collecting tokens whose slot has come up.
    fn advance(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        let elapsed = now.saturating_duration_since(self.last_tick);
        let ticks = (elapsed.as_millis() / WHEEL_TICK.as_millis()) as usize;
        if ticks == 0 {
            return due;
        }
        if ticks >= WHEEL_SLOTS {
            // Slept a full revolution (or more): every slot is due.
            for slot in &mut self.slots {
                due.append(slot);
            }
            self.last_tick = now;
        } else {
            for _ in 0..ticks {
                self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
                self.last_tick += WHEEL_TICK;
                due.append(&mut self.slots[self.cursor]);
            }
        }
        self.armed -= due.len();
        due
    }

    /// How long `epoll_wait` may sleep before the next slot fires.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        let next = self.last_tick + WHEEL_TICK;
        Some(
            next.saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        )
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine.
// ---------------------------------------------------------------------------

struct Conn {
    stream: Stream,
    fd: RawFd,
    /// Accumulating read buffer; at most one partial frame.
    inbuf: Vec<u8>,
    /// When the current partial frame started (slow-loris deadline).
    partial_since: Option<Instant>,
    /// Unsent reply bytes.
    outbuf: Vec<u8>,
    /// Complete lines waiting behind the in-flight request.
    pending: VecDeque<(String, Instant)>,
    /// A pooled job is running for this connection.
    busy: bool,
    /// Cancelled when the connection closes; aborts in-flight proofs.
    cancel: CancelToken,
    /// Authoritative read deadline (the wheel holds only hints).
    deadline: Option<Instant>,
    /// Whether a wheel entry is live for this connection.
    in_wheel: bool,
    /// Currently registered epoll interest.
    registered: Interest,
    /// Flush the output buffer, then close.
    closing: bool,
    /// The socket died (EOF, I/O error): close immediately.
    dead: bool,
    /// This connection's `shutdown` verb succeeded: once its reply is
    /// flushed (or the connection dies), stop the whole server.
    shutdown_after: bool,
}

impl Conn {
    fn new(stream: Stream, cancel: CancelToken) -> Conn {
        let fd = stream.fd();
        Conn {
            stream,
            fd,
            inbuf: Vec::new(),
            partial_since: None,
            outbuf: Vec::new(),
            pending: VecDeque::new(),
            busy: false,
            cancel,
            deadline: None,
            in_wheel: false,
            registered: Interest::READ,
            closing: false,
            dead: false,
            shutdown_after: false,
        }
    }

    /// Backpressure: too many queued lines or too many unsent bytes.
    fn paused(&self) -> bool {
        self.pending.len() >= PIPELINE_DEPTH || self.outbuf.len() > OUTBUF_HIGH
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.closing && !self.dead && !self.paused(),
            writable: !self.outbuf.is_empty(),
        }
    }

    fn should_close(&self) -> bool {
        self.dead || (self.closing && self.outbuf.is_empty())
    }
}

/// Appends `frame` to the connection's write buffer, counting an error
/// frame and recording service time when `started` is known, then
/// attempts an immediate flush.
fn respond(metrics: &Metrics, conn: &mut Conn, frame: &Json, started: Option<Instant>) {
    if frame.get("ok") == Some(&Json::Bool(false)) {
        Metrics::bump(&metrics.errors_total);
    }
    if let Some(t) = started {
        metrics.latency_request.record(t.elapsed());
    }
    let mut text = frame.render();
    text.push('\n');
    conn.outbuf.extend_from_slice(text.as_bytes());
    try_flush(conn);
}

/// Writes as much of the output buffer as the socket will take.
/// `WouldBlock` leaves the remainder for the next writable event; any
/// other error marks the connection dead.
fn try_flush(conn: &mut Conn) {
    let mut off = 0usize;
    while off < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[off..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if off == conn.outbuf.len() {
        conn.outbuf.clear();
    } else if off > 0 {
        conn.outbuf.drain(..off);
    }
}

// ---------------------------------------------------------------------------
// The reactor.
// ---------------------------------------------------------------------------

/// The event loop. Owns the poller, the listeners, and every
/// connection; runs on the thread that calls
/// [`crate::server::Server::run`].
pub(crate) struct Reactor {
    poller: Poller,
    shared: Arc<ReactorShared>,
    ctx: Arc<Ctx>,
    listeners: Vec<Listener>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    flush_tx: Option<Sender<FlushMsg>>,
    flush_interval: Option<Duration>,
    last_flush: Instant,
}

impl Reactor {
    /// Builds the reactor and registers listeners and waker with the
    /// poller. The waker lands in `ctx` so [`ServerHandle::stop`]
    /// (and pool completions) can interrupt a blocked `epoll_wait`.
    ///
    /// [`ServerHandle::stop`]: crate::server::ServerHandle::stop
    pub(crate) fn new(
        ctx: Arc<Ctx>,
        listeners: Vec<Listener>,
        flush_tx: Option<Sender<FlushMsg>>,
        flush_interval: Option<Duration>,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.add(waker.fd(), WAKER_TOKEN, Interest::READ)?;
        for (i, listener) in listeners.iter().enumerate() {
            poller.add(listener.fd(), i as u64, Interest::READ)?;
        }
        let shared = Arc::new(ReactorShared::new(waker.clone()));
        ctx.set_waker(waker);
        let now = Instant::now();
        Ok(Reactor {
            poller,
            shared,
            ctx,
            listeners,
            conns: HashMap::new(),
            wheel: TimerWheel::new(now),
            next_token: CONN_BASE,
            flush_tx,
            flush_interval,
            last_flush: now,
        })
    }

    /// Serves until shutdown. On return every connection has been
    /// closed and every in-flight token cancelled; queued pool jobs are
    /// the caller's to drain.
    pub(crate) fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let now = Instant::now();
            self.maybe_flush(now);
            let timeout = self.wait_timeout(now);
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                eprintln!("apt-serve: epoll_wait failed ({e}); shutting down");
                self.ctx.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                self.handle_event(ev);
            }
            events = batch;
            self.drain_completions();
            self.fire_timers(Instant::now());
        }
        // Teardown: cancel every in-flight proof and close every
        // socket. Dropping the streams closes the fds; the kernel
        // detaches them from the (also dropped) epoll instance.
        for (_, conn) in self.conns.drain() {
            conn.cancel.cancel();
            self.ctx
                .metrics
                .connections_active
                .fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// How long the next `epoll_wait` may block: until the next timer
    /// tick or snapshot flush, or forever when neither is armed.
    fn wait_timeout(&self, now: Instant) -> Option<Duration> {
        let mut timeout = self.wheel.next_timeout(now);
        if let (Some(_), Some(interval)) = (&self.flush_tx, self.flush_interval) {
            let due = (self.last_flush + interval).saturating_duration_since(now);
            let due = due.max(Duration::from_millis(1));
            timeout = Some(timeout.map_or(due, |t| t.min(due)));
        }
        timeout
    }

    /// Rings the snapshot flusher when its interval has elapsed.
    fn maybe_flush(&mut self, now: Instant) {
        if let (Some(tx), Some(interval)) = (&self.flush_tx, self.flush_interval) {
            if now.saturating_duration_since(self.last_flush) >= interval {
                let _ = tx.send(FlushMsg::Flush);
                self.last_flush = now;
            }
        }
    }

    fn handle_event(&mut self, ev: &Event) {
        if ev.token == WAKER_TOKEN {
            self.shared.waker.drain();
        } else if (ev.token as usize) < self.listeners.len() {
            self.on_accept(ev.token as usize);
        } else {
            self.on_conn_event(ev.token, ev);
        }
    }

    /// Drains the listener's accept backlog, admitting connections up
    /// to the configured cap.
    fn on_accept(&mut self, idx: usize) {
        loop {
            match self.listeners[idx].accept() {
                Ok(stream) => {
                    if self.conns.len() >= self.ctx.config.max_connections {
                        Metrics::bump(&self.ctx.metrics.connection_refusals);
                        let e = ProtoError {
                            code: ErrorCode::Overloaded,
                            message: format!(
                                "connection limit reached ({}); retry later",
                                self.ctx.config.max_connections
                            ),
                            verb: None,
                        };
                        let mut text = error_frame(None, &e).render();
                        text.push('\n');
                        // Best-effort refusal frame on a socket we are
                        // about to drop; a full buffer loses it.
                        let _ = stream.write(text.as_bytes());
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    let conn = Conn::new(stream, CancelToken::new());
                    if self.poller.add(conn.fd, token, Interest::READ).is_err() {
                        continue;
                    }
                    Metrics::bump(&self.ctx.metrics.connections_total);
                    Metrics::bump(&self.ctx.metrics.connections_active);
                    self.conns.insert(token, conn);
                    self.arm_deadline(token, Instant::now());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient accept errors (ECONNABORTED, EMFILE burst):
                // leave the listener registered; level-triggered epoll
                // re-reports any still-pending backlog.
                Err(_) => break,
            }
        }
    }

    /// (Re-)arms the connection's read deadline at `now + idle`.
    fn arm_deadline(&mut self, token: u64, now: Instant) {
        let Some(idle) = self.ctx.config.idle_timeout else {
            return;
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let deadline = now + idle;
        conn.deadline = Some(deadline);
        if !conn.in_wheel {
            conn.in_wheel = true;
            self.wheel.insert(deadline, token);
        }
    }

    fn on_conn_event(&mut self, token: u64, ev: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if ev.writable {
            try_flush(conn);
        }
        if ev.readable {
            self.on_readable(token);
        } else if ev.closed {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
        }
        self.process_pending(token);
        self.finalize(token);
    }

    /// Reads until `WouldBlock` (or backpressure pauses the
    /// connection), extracting complete lines and enforcing the frame
    /// cap on the partial remainder as it grows.
    fn on_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.closing || conn.dead {
            return;
        }
        let metrics = &self.ctx.metrics;
        let mut chunk = vec![0u8; READ_CHUNK];
        let mut renew_deadline = false;
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer hung up: abort anything in flight for this
                    // connection. The threaded reader did exactly this
                    // on EOF.
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    let mut scan_from = 0usize;
                    while let Some(pos) = conn.inbuf[scan_from..].iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = conn.inbuf.drain(..=scan_from + pos).collect();
                        scan_from = 0;
                        let text = String::from_utf8_lossy(&line).into_owned();
                        conn.pending.push_back((text, Instant::now()));
                    }
                    if conn.inbuf.is_empty() {
                        conn.partial_since = None;
                        renew_deadline = true;
                    } else {
                        if conn.inbuf.len() > MAX_LINE {
                            // Satellite guarantee: the cap trips on the
                            // partial frame as soon as it is crossed.
                            let e = ProtoError::bad(format!(
                                "request line exceeds {MAX_LINE} bytes; closing connection"
                            ));
                            respond(metrics, conn, &error_frame(None, &e), None);
                            conn.closing = true;
                            break;
                        }
                        if conn.partial_since.is_none() {
                            // The slow-loris clock starts at the first
                            // byte of a partial frame and is *not*
                            // renewed by further dribble.
                            conn.partial_since = Some(Instant::now());
                            renew_deadline = true;
                        }
                    }
                    if conn.paused() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if renew_deadline && !conn.dead && !conn.closing {
            self.arm_deadline(token, Instant::now());
        }
    }

    /// Feeds queued lines through dispatch while the connection has no
    /// in-flight pooled job. Inline verbs answer immediately; a pooled
    /// verb marks the connection busy until its completion arrives.
    fn process_pending(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || conn.closing || conn.dead {
                return;
            }
            let Some((line, arrived)) = conn.pending.pop_front() else {
                return;
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            Metrics::bump(&self.ctx.metrics.requests_total);
            let cancel = conn.cancel.clone();
            // Dispatch must not take the reactor down: a panic in an
            // inline verb becomes an `internal` error frame.
            let outcome = match catch_unwind(AssertUnwindSafe(|| {
                handle_line(&self.ctx, trimmed, &cancel)
            })) {
                Ok(outcome) => outcome,
                Err(_) => LineOutcome::Reply {
                    frame: error_frame(
                        None,
                        &ProtoError {
                            code: ErrorCode::Internal,
                            message: "request crashed; fault isolated to this request".to_owned(),
                            verb: None,
                        },
                    ),
                    shutdown: false,
                },
            };
            match outcome {
                LineOutcome::Reply { frame, shutdown } => {
                    let conn = match self.conns.get_mut(&token) {
                        Some(conn) => conn,
                        None => return,
                    };
                    respond(&self.ctx.metrics, conn, &frame, Some(arrived));
                    if shutdown {
                        // Flush the acknowledgement, then close this
                        // connection; closing it triggers the
                        // server-wide shutdown (see `close_conn`).
                        conn.shutdown_after = true;
                        conn.closing = true;
                        return;
                    }
                }
                LineOutcome::Job { id, work } => {
                    let shared = Arc::clone(&self.shared);
                    let job_cancel = cancel.clone();
                    let job_id = id.clone();
                    let submitted = self.ctx.pool.submit(Box::new(move || {
                        let frame = match catch_unwind(AssertUnwindSafe(work)) {
                            Ok(frame) => frame,
                            Err(_) => error_frame(
                                job_id.as_ref(),
                                &ProtoError {
                                    code: ErrorCode::Internal,
                                    message: "request crashed; fault isolated to this request"
                                        .to_owned(),
                                    verb: None,
                                },
                            ),
                        };
                        shared.push(Completion {
                            conn: token,
                            frame,
                            started: arrived,
                            cancel: job_cancel,
                        });
                    }));
                    match submitted {
                        Ok(()) => {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.busy = true;
                            }
                            return;
                        }
                        Err(e) => {
                            if e.code == ErrorCode::Overloaded {
                                Metrics::bump(&self.ctx.metrics.overload_refusals);
                            }
                            let conn = match self.conns.get_mut(&token) {
                                Some(conn) => conn,
                                None => return,
                            };
                            respond(
                                &self.ctx.metrics,
                                conn,
                                &error_frame(id.as_ref(), &e),
                                Some(arrived),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Applies finished pool jobs: reply, un-busy, continue the
    /// connection's pipeline.
    fn drain_completions(&mut self) {
        for completion in self.shared.take() {
            if completion.cancel.is_cancelled() {
                Metrics::bump(&self.ctx.metrics.disconnect_cancels);
            }
            let token = completion.conn;
            match self.conns.get_mut(&token) {
                Some(conn) => {
                    respond(
                        &self.ctx.metrics,
                        conn,
                        &completion.frame,
                        Some(completion.started),
                    );
                    conn.busy = false;
                }
                None => {
                    // The peer vanished before its answer was ready;
                    // error frames still count, as they did when the
                    // threaded handler built the frame before the
                    // doomed write.
                    if completion.frame.get("ok") == Some(&Json::Bool(false)) {
                        Metrics::bump(&self.ctx.metrics.errors_total);
                    }
                    continue;
                }
            }
            self.process_pending(token);
            self.finalize(token);
        }
    }

    /// Examines due wheel slots; fires, re-inserts, or forgets.
    fn fire_timers(&mut self, now: Instant) {
        for token in self.wheel.advance(now) {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            let Some(deadline) = conn.deadline else {
                conn.in_wheel = false;
                continue;
            };
            if conn.paused() {
                // Backpressured connections are stalled on *us* (or on
                // their own unread replies); the threaded reader could
                // not time out while blocked handing off a line, so
                // neither do we. Check again next revolution.
                let renewed = now + self.ctx.config.idle_timeout.unwrap_or(WHEEL_TICK);
                conn.deadline = Some(renewed);
                self.wheel.insert(renewed, token);
                continue;
            }
            if deadline > now {
                self.wheel.insert(deadline, token);
                continue;
            }
            conn.in_wheel = false;
            if !conn.closing && !conn.dead {
                Metrics::bump(&self.ctx.metrics.read_timeouts);
                let e = ProtoError {
                    code: ErrorCode::Timeout,
                    message: "read deadline exceeded; closing connection".to_owned(),
                    verb: None,
                };
                respond(&self.ctx.metrics, conn, &error_frame(None, &e), None);
            }
            conn.closing = true;
            self.finalize(token);
        }
    }

    /// Settles a connection after any activity: close it if it is done
    /// for, otherwise reconcile its epoll interest with its state.
    fn finalize(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.should_close() {
            self.close_conn(token);
            return;
        }
        // Hysteresis: reads resume below OUTBUF_LOW, not the instant
        // the buffer dips under the high-water mark.
        let mut desired = conn.desired_interest();
        if desired.readable
            && conn.registered.readable != desired.readable
            && conn.outbuf.len() >= OUTBUF_LOW
        {
            desired.readable = false;
        }
        if desired != conn.registered {
            if self.poller.modify(conn.fd, token, desired).is_err() {
                conn.dead = true;
                self.close_conn(token);
                return;
            }
            conn.registered = desired;
        }
    }

    /// Removes and closes a connection: cancels its token (aborting any
    /// in-flight proof), deregisters, closes the socket; a connection
    /// carrying a flushed `shutdown` acknowledgement stops the server.
    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        conn.cancel.cancel();
        self.poller.remove(conn.fd);
        self.ctx
            .metrics
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
        if conn.shutdown_after {
            self.ctx.trigger_shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_after_deadline_not_before() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.insert(start + Duration::from_millis(120), 7);
        // Nothing due in the first tick.
        assert!(wheel.advance(start + Duration::from_millis(40)).is_empty());
        // By 200ms the slot (120ms ≈ tick 3) has come up.
        let due = wheel.advance(start + Duration::from_millis(200));
        assert_eq!(due, vec![7]);
        assert_eq!(wheel.armed, 0);
        assert!(wheel
            .next_timeout(start + Duration::from_millis(200))
            .is_none());
    }

    #[test]
    fn wheel_survives_a_long_sleep() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.insert(start + Duration::from_millis(100), 1);
        wheel.insert(start + Duration::from_secs(3600), 2);
        // A sleep longer than a full revolution dumps every slot for
        // re-examination; the caller re-inserts unexpired deadlines.
        let due = wheel.advance(start + Duration::from_secs(30));
        assert_eq!(due.len(), 2);
    }

    #[test]
    fn wheel_clamps_far_deadlines_into_range() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        // A 2-minute deadline lands in the last slot, not out of
        // bounds; advancing one revolution surfaces it for re-insert.
        wheel.insert(start + Duration::from_secs(120), 9);
        assert!(wheel.next_timeout(start).is_some());
        let horizon = WHEEL_TICK * (WHEEL_SLOTS as u32);
        let due = wheel.advance(start + horizon);
        assert_eq!(due, vec![9]);
    }
}
