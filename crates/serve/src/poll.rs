//! A std-only epoll shim: readiness notification without a crate.
//!
//! The container has no mio/tokio/libc, so the reactor talks to the
//! kernel directly through four raw syscall bindings — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, and `eventfd` — wrapped here behind a
//! safe, minimal API:
//!
//! * [`Poller`] — one epoll instance; register/modify/deregister file
//!   descriptors with a `u64` token and an [`Interest`] (read and/or
//!   write readiness), then [`Poller::wait`] for [`Event`]s.
//! * [`Waker`] — an `eventfd` registered like any other fd; any thread
//!   may [`Waker::wake`] to make a blocked `wait` return immediately.
//!   This is how worker threads hand completed replies back to the
//!   reactor and how [`crate::server::ServerHandle::stop`] interrupts a
//!   sleeping server without polling.
//! * [`nofile_limit`] — `RLIMIT_NOFILE`, so callers (the concurrency
//!   bench, `--max-connections` defaulting) can scale connection counts
//!   to what the kernel will actually allow.
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root holds `deny(unsafe_code)` and everything above this layer
//! stays in safe Rust. Level-triggered mode is used throughout — the
//! reactor re-arms interest explicitly, which keeps the state machine
//! auditable (no "did we drain to EAGAIN?" edge-trigger hazards).

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw kernel interface (x86-64 Linux ABI via the C library).
// ---------------------------------------------------------------------------

mod ffi {
    use std::os::raw::{c_int, c_uint, c_void};

    // `epoll_event` is `__attribute__((packed))` on x86/x86-64 only.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct RLimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    }
}

fn last_error_if(failed: bool) -> io::Result<()> {
    if failed {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// `RLIMIT_NOFILE` (soft limit) for this process, when the kernel will
/// say. Connection-count scaling derives from this: a daemon can hold
/// roughly `nofile - slack` sockets before `accept` starts failing.
pub fn nofile_limit() -> Option<u64> {
    let mut lim = ffi::RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid, writable RLimit for the duration of the
    // call; getrlimit writes both fields or fails.
    let rc = unsafe { ffi::getrlimit(ffi::RLIMIT_NOFILE, &mut lim) };
    if rc == 0 {
        Some(lim.rlim_cur)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Interest and events.
// ---------------------------------------------------------------------------

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction (registration kept, delivery paused) — used by
    /// the reactor's backpressure to stop reading from a connection
    /// whose replies it cannot flush.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = ffi::EPOLLRDHUP;
        if self.readable {
            bits |= ffi::EPOLLIN;
        }
        if self.writable {
            bits |= ffi::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable now (includes peer half-close: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to the error /
    /// EOF and close.
    pub closed: bool,
}

// ---------------------------------------------------------------------------
// Poller.
// ---------------------------------------------------------------------------

/// One epoll instance (level-triggered).
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (`CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; the return value is checked.
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        last_error_if(epfd < 0)?;
        Ok(Poller { epfd })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = ffi::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // SAFETY: `ev` is a valid EpollEvent for the duration of the
        // call; the kernel copies it out before returning.
        let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
        last_error_if(rc < 0)
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (bad fd, duplicate registration).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Re-arms an existing registration with new interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (fd no longer registered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless if the fd was already closed (the
    /// kernel removes closed fds from epoll itself).
    pub fn remove(&self, fd: RawFd) {
        let mut ev = ffi::EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`; EPOLL_CTL_DEL ignores the event payload
        // (non-NULL only for pre-2.6.9 kernels).
        let _ = unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks until readiness, a [`Waker::wake`], or `timeout`; appends
    /// the ready set to `events` (cleared first). `None` blocks
    /// indefinitely. Retries `EINTR` internally.
    ///
    /// # Errors
    ///
    /// Propagates non-`EINTR` `epoll_wait` failures.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(t) => {
                // Round up so a 0.4ms deadline does not spin at 0ms.
                let ms = t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0));
                std::os::raw::c_int::try_from(ms).unwrap_or(std::os::raw::c_int::MAX)
            }
        };
        const CAP: usize = 256;
        let mut raw = [ffi::EpollEvent { events: 0, data: 0 }; CAP];
        let n = loop {
            // SAFETY: `raw` is a valid array of CAP events; the kernel
            // writes at most `maxevents` entries.
            let rc = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    CAP as std::os::raw::c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in raw.iter().take(n) {
            let bits = ev.events;
            events.push(Event {
                token: { ev.data },
                readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0,
                writable: bits & ffi::EPOLLOUT != 0,
                closed: bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        let _ = unsafe { ffi::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// Waker.
// ---------------------------------------------------------------------------

use std::sync::Arc;

struct WakerFd(RawFd);

impl Drop for WakerFd {
    fn drop(&mut self) {
        // SAFETY: we own the fd and close it exactly once.
        let _ = unsafe { ffi::close(self.0) };
    }
}

/// A cross-thread wakeup for a [`Poller`]: an `eventfd` the reactor
/// registers like any connection. Cloning shares the same fd; `wake`
/// from any thread makes the next (or current) `wait` return with an
/// event on the waker's token. Coalesces: many wakes before a drain
/// cost one event.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<WakerFd>,
}

impl Waker {
    /// A fresh eventfd-backed waker (nonblocking, CLOEXEC).
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        last_error_if(fd < 0)?;
        Ok(Waker {
            fd: Arc::new(WakerFd(fd)),
        })
    }

    /// The fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.fd.0
    }

    /// Signals the poller. Never blocks: an eventfd at `u64::MAX - 1`
    /// returns `EAGAIN`, which still leaves the counter nonzero and the
    /// poller pending, so the failure is ignorable.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a valid u64; eventfd semantics.
        let _ = unsafe {
            ffi::write(
                self.fd.0,
                (&raw const one).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Clears the pending wakeup so level-triggered polling stops
    /// reporting it. Call on every waker event.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads 8 bytes into a valid u64; nonblocking, so this
        // returns EAGAIN rather than blocking when already drained.
        let _ = unsafe {
            ffi::read(
                self.fd.0,
                (&raw mut counter).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 7, Interest::READ).unwrap();
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: the next wait times out instead of re-reporting.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 42, Interest::READ).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 42);
        assert!(events[0].readable);

        // Pause interest: the same pending bytes stop being reported.
        poller
            .modify(server.as_raw_fd(), 42, Interest::NONE)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // Resume and consume.
        poller
            .modify(server.as_raw_fd(), 42, Interest::READ)
            .unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");

        // Peer disappears: readable (EOF) is reported.
        drop(client);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable || events[0].closed);
        poller.remove(server.as_raw_fd());
    }

    #[test]
    fn nofile_limit_is_sane() {
        let lim = nofile_limit().unwrap();
        assert!(lim >= 64, "soft NOFILE limit implausibly low: {lim}");
    }
}
