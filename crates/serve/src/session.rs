//! The session registry: compiled axiom sets resident behind the wire.
//!
//! `open_session` is the whole point of the daemon — parsing and
//! compiling an axiom set (alphabet bitmasks, dispatch index, DFA
//! cache) is the expensive part of a dependence query, and the caches
//! an engine accumulates make later queries against the same set far
//! cheaper. The registry keeps each compiled [`DepEngine`] behind an
//! `Arc` keyed by a short session id, so any number of connections can
//! share one warm engine.
//!
//! Two policies live here:
//!
//! * **Dedupe.** Opening an axiom set that is *structurally* equal to
//!   one already open returns the existing session. The key is a hash
//!   of the parsed `Vec<Axiom>` — not the raw text — so comment lines,
//!   blank lines, whitespace, and spelling differences that parse to
//!   the same axioms all land on the same engine (and its caches).
//! * **LRU eviction.** At most `max_sessions` engines stay resident;
//!   opening one more evicts the least-recently-used session. Eviction
//!   only drops the registry's `Arc` — queries already running against
//!   the evicted engine keep their own clone and finish normally.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

use apt_axioms::adds::parse_axioms_auto;
use apt_axioms::AxiomSet;
use apt_core::{DepEngine, ProverConfig};
use apt_regex::ArenaScope;

use crate::proto::ProtoError;

/// What `open_session` tells the caller.
#[derive(Debug, Clone)]
pub struct Opened {
    /// The session id to use in later requests (`"s0"`, `"s1"`, …).
    pub session: String,
    /// Whether this landed on an already-open session.
    pub deduped: bool,
    /// How many axioms the set parsed to.
    pub axioms: usize,
    /// Session id of an engine the open evicted, if any.
    pub evicted: Option<String>,
}

/// A point-in-time description of one resident session, for `stats`.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session id.
    pub session: String,
    /// Axiom count of the compiled set.
    pub axioms: usize,
    /// How many `open_session` calls deduped onto this engine.
    pub opens: u64,
    /// How many prove/batch requests have used it.
    pub uses: u64,
}

struct Entry {
    engine: Arc<DepEngine>,
    set_hash: u64,
    /// The source text the engine was compiled from, kept for the
    /// snapshot tier: restore recompiles deterministically from text
    /// rather than persisting compiled DFAs/indexes. For deduped opens
    /// the first text wins — any text that parses to the set works.
    source: String,
    axioms: usize,
    opens: u64,
    uses: u64,
    last_used: u64,
}

/// One session's exportable warm state, as handed to the snapshot
/// flusher: the id (an informational label in the snapshot), the axiom
/// source text, and the engine whose caches to export.
pub struct SessionDump {
    /// Session id at dump time.
    pub session: String,
    /// Axiom-set source text.
    pub source: String,
    /// The resident engine (caches are exported outside the registry
    /// lock).
    pub engine: Arc<DepEngine>,
}

struct Inner {
    sessions: HashMap<String, Entry>,
    by_hash: HashMap<u64, String>,
    next_id: u64,
    tick: u64,
}

/// Registry of resident compiled engines. All methods are `&self`; the
/// registry is shared across connections behind one `Arc`.
pub struct SessionRegistry {
    inner: Mutex<Inner>,
    max_sessions: usize,
}

/// Structural identity of an axiom set: a hash over the parsed axioms,
/// in order. Deliberately *not* a hash of the source text.
fn set_hash(set: &AxiomSet) -> u64 {
    let mut h = DefaultHasher::new();
    for axiom in set.iter() {
        axiom.hash(&mut h);
    }
    set.len().hash(&mut h);
    h.finish()
}

impl SessionRegistry {
    /// A registry that keeps at most `max_sessions` engines resident.
    pub fn new(max_sessions: usize) -> SessionRegistry {
        SessionRegistry {
            inner: Mutex::new(Inner {
                sessions: HashMap::new(),
                by_hash: HashMap::new(),
                next_id: 0,
                tick: 0,
            }),
            max_sessions: max_sessions.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parses `axioms_text` (ADDS or axiom-per-line, auto-detected) and
    /// returns a session for its compiled engine, deduping structurally
    /// equal sets and evicting the LRU session when full.
    ///
    /// # Errors
    ///
    /// `bad_request` when the text does not parse.
    pub fn open(&self, axioms_text: &str) -> Result<Opened, ProtoError> {
        // Open the arena retention scope *before* parsing: the axiom
        // expressions interned by the parse are then charged to this
        // session's epoch, so evicting the session reclaims them. (On a
        // deduped or failed open the scope simply drops again and its
        // charges drain — the resident session's own scope keeps the
        // shared entries alive.)
        let scope = Arc::new(ArenaScope::new());
        let set =
            parse_axioms_auto(axioms_text).map_err(|e| ProtoError::bad(format!("axioms: {e}")))?;
        let hash = set_hash(&set);
        let axioms = set.len();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(session) = inner.by_hash.get(&hash).cloned() {
            // Hash collisions between distinct sets are possible in
            // principle; confirm structural equality before deduping.
            let entry = inner.sessions.get_mut(&session);
            if let Some(entry) = entry {
                let same = entry.engine.axioms().len() == axioms
                    && entry.engine.axioms().iter().eq(set.iter());
                if same {
                    entry.opens += 1;
                    entry.last_used = tick;
                    return Ok(Opened {
                        session,
                        deduped: true,
                        axioms,
                        evicted: None,
                    });
                }
            }
        }
        let evicted = if inner.sessions.len() >= self.max_sessions {
            let victim = inner
                .sessions
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(id, _)| id.clone());
            victim.inspect(|id| {
                if let Some(old) = inner.sessions.remove(id) {
                    inner.by_hash.remove(&old.set_hash);
                }
            })
        } else {
            None
        };
        let session = format!("s{}", inner.next_id);
        inner.next_id += 1;
        let engine = Arc::new(DepEngine::from_arc_in(
            Arc::new(set),
            ProverConfig::default(),
            scope,
        ));
        inner.sessions.insert(
            session.clone(),
            Entry {
                engine,
                set_hash: hash,
                source: axioms_text.to_owned(),
                axioms,
                opens: 1,
                uses: 0,
                last_used: tick,
            },
        );
        inner.by_hash.insert(hash, session.clone());
        Ok(Opened {
            session,
            deduped: false,
            axioms,
            evicted,
        })
    }

    /// The engine behind `session`, bumping its recency and use count.
    ///
    /// # Errors
    ///
    /// `no_such_session` when the id was never opened or has been
    /// evicted/closed.
    pub fn get(&self, session: &str) -> Result<Arc<DepEngine>, ProtoError> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.sessions.get_mut(session).ok_or_else(|| ProtoError {
            code: crate::proto::ErrorCode::NoSuchSession,
            message: format!("no session {session:?} (evicted or never opened)"),
            verb: None,
        })?;
        entry.last_used = tick;
        entry.uses += 1;
        Ok(Arc::clone(&entry.engine))
    }

    /// Drops a session eagerly. Returns whether it existed.
    pub fn close(&self, session: &str) -> bool {
        let mut inner = self.lock();
        match inner.sessions.remove(session) {
            Some(entry) => {
                inner.by_hash.remove(&entry.set_hash);
                true
            }
            None => false,
        }
    }

    /// Resident session count.
    pub fn len(&self) -> usize {
        self.lock().sessions.len()
    }

    /// Whether no sessions are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache statistics for one session *without* bumping its recency
    /// or use count — the `stats` verb must not perturb LRU order.
    pub fn peek_cache_stats(&self, session: &str) -> Option<apt_core::CacheStats> {
        let inner = self.lock();
        inner.sessions.get(session).map(|e| e.engine.cache_stats())
    }

    /// Descriptions of every resident session, most-recently-used first.
    pub fn snapshot(&self) -> Vec<SessionInfo> {
        let inner = self.lock();
        let mut rows: Vec<(u64, SessionInfo)> = inner
            .sessions
            .iter()
            .map(|(id, e)| {
                (
                    e.last_used,
                    SessionInfo {
                        session: id.clone(),
                        axioms: e.axioms,
                        opens: e.opens,
                        uses: e.uses,
                    },
                )
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.0));
        rows.into_iter().map(|(_, info)| info).collect()
    }

    /// Every resident session's source text and engine, most-recently-
    /// used first (so a size-capped snapshot would keep the warmest).
    /// Clones `Arc`s under the lock; callers export caches after.
    pub fn dump_sessions(&self) -> Vec<SessionDump> {
        let inner = self.lock();
        let mut rows: Vec<(u64, SessionDump)> = inner
            .sessions
            .iter()
            .map(|(id, e)| {
                (
                    e.last_used,
                    SessionDump {
                        session: id.clone(),
                        source: e.source.clone(),
                        engine: Arc::clone(&e.engine),
                    },
                )
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.0));
        rows.into_iter().map(|(_, dump)| dump).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "
        A1: forall p, p.L <> p.R
        A2: forall p <> q, p.(L|R) <> q.(L|R)
        A3: forall p <> q, p.N <> q.N
        A4: forall p, p.(L|R|N)+ <> p.eps
    ";

    #[test]
    fn dedupes_structurally_equal_sets_not_text() {
        let reg = SessionRegistry::new(8);
        let first = reg.open(FIG3).unwrap();
        assert!(!first.deduped);
        assert_eq!(first.axioms, 4);

        // Same axioms, different text: comments, blank lines, spacing,
        // and unnamed-vs-named differences that still parse identically.
        let noisy = "
            # left and right subtrees never alias
            A1: forall p ,  p.L <> p.R

            A2: forall p <> q, p.(L|R) <> q.(L|R)
            A3: forall p <> q, p.N <> q.N
            A4: forall p, p.(L|R|N)+ <> p.eps
        ";
        assert_ne!(FIG3, noisy);
        let second = reg.open(noisy).unwrap();
        assert!(second.deduped, "parsed-set hash must dedupe");
        assert_eq!(second.session, first.session);
        assert_eq!(reg.len(), 1);

        // Same engine instance, not merely an equal one.
        let a = reg.get(&first.session).unwrap();
        let b = reg.get(&second.session).unwrap();
        assert!(Arc::ptr_eq(&a, &b));

        // A genuinely different set gets its own session.
        let third = reg.open("B1: forall p, p.X <> p.Y").unwrap();
        assert!(!third.deduped);
        assert_ne!(third.session, first.session);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn rejects_unparsable_axioms() {
        let reg = SessionRegistry::new(4);
        let err = reg.open("forall p, p.( <> q").unwrap_err();
        assert_eq!(err.code, crate::proto::ErrorCode::BadRequest);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_sessions() {
        let reg = SessionRegistry::new(2);
        let a = reg.open("A: forall p, p.L <> p.R").unwrap();
        let b = reg.open("B: forall p, p.X <> p.Y").unwrap();
        // Touch `a` so `b` is the LRU victim.
        reg.get(&a.session).unwrap();
        let c = reg.open("C: forall p, p.U <> p.V").unwrap();
        assert_eq!(c.evicted.as_deref(), Some(b.session.as_str()));
        assert!(reg.get(&a.session).is_ok());
        assert!(reg.get(&b.session).is_err());
        assert_eq!(reg.len(), 2);

        // An evicted set can be reopened (fresh compile, new id).
        let b2 = reg.open("B: forall p, p.X <> p.Y").unwrap();
        assert!(!b2.deduped);
        assert_ne!(b2.session, b.session);
    }

    #[test]
    fn close_frees_the_slot_and_the_hash() {
        let reg = SessionRegistry::new(4);
        let a = reg.open(FIG3).unwrap();
        assert!(reg.close(&a.session));
        assert!(!reg.close(&a.session));
        assert!(reg.get(&a.session).is_err());
        // Re-opening after close compiles fresh.
        let again = reg.open(FIG3).unwrap();
        assert!(!again.deduped);
    }

    #[test]
    fn snapshot_reports_usage() {
        let reg = SessionRegistry::new(4);
        let a = reg.open(FIG3).unwrap();
        reg.open(FIG3).unwrap();
        reg.get(&a.session).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].opens, 2);
        assert_eq!(snap[0].uses, 1);
        assert_eq!(snap[0].axioms, 4);
    }
}
