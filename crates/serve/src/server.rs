//! The daemon: listeners, admission control, and per-connection plumbing.
//!
//! ## Threading model
//!
//! Every listener (TCP and/or Unix socket) gets an accept thread; every
//! accepted connection gets a **reader** thread and a **handler**
//! thread. The reader turns the socket into a bounded stream of lines
//! and — crucially — notices the peer vanishing: when its read returns
//! EOF or an error it cancels the connection-wide [`CancelToken`],
//! which aborts any proof currently running for that connection via the
//! prover's cooperative cancellation brake. Cancelled runs publish
//! nothing to the shared caches, so an abandoned query cannot poison a
//! session for later clients.
//!
//! Proving itself happens on a fixed pool of worker threads behind a
//! bounded queue. When the queue is at its high-water mark new work is
//! *refused* with an `overloaded` error frame instead of being queued —
//! under overload the daemon degrades to fast, explicit refusals,
//! never to unbounded memory growth or silent timeouts. Cheap
//! control verbs (`open_session`, `stats`, …) bypass the pool.
//!
//! ## Shutdown
//!
//! The `shutdown` verb answers `{"ok":true}`, then flips a flag the
//! accept loops poll and shuts down every registered connection socket.
//! Readers see EOF, cancel their tokens, handlers drain, the pool
//! joins, and [`Server::run`] returns.
//!
//! ## Warm-state snapshots
//!
//! With a snapshot directory configured, [`Server::run`] first restores
//! whatever warm state a previous life left behind (per-section, under
//! checksums — see [`crate::snapshot`]), then serves; a background
//! flusher rewrites the snapshot periodically and a final write happens
//! on graceful shutdown. Restore can only *add* warmth: any failure on
//! this path degrades to cold state for the affected sections and the
//! daemon serves regardless.
//!
//! ## Read deadlines
//!
//! Each connection's reader enforces an idle/read deadline: a
//! connection that sends nothing — or dribbles a partial frame without
//! ever finishing it (slow-loris) — past the deadline receives a
//! machine-readable `timeout` error frame and is closed, so it cannot
//! pin a reader thread forever.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use apt_core::{Budget, CancelToken, DepQuery, Origin, Outcome, ProverConfig, ProverStats};
use apt_paths::{analyze_program, BatchOptions, DepTable, RowOutcome};

use crate::fault::FaultPlan;
use crate::json::{obj, Json};
use crate::metrics::{Metrics, RestoreOutcome};
use crate::proto::{
    error_frame, ok_frame, outcome_json, parse_request, stats_json, ErrorCode, ProtoError, Request,
    WireQuery, PROTO_VERSION, SUPPORTED_VERBS,
};
use crate::session::SessionRegistry;
use crate::snapshot::{self, AnalyzeSection, SectionOutcome, SessionSection, Snapshot};

/// How accept loops poll for shutdown between `WouldBlock`s.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// How the snapshot flusher polls for shutdown between intervals.
const FLUSH_POLL: Duration = Duration::from_millis(20);
/// Lines a reader may buffer ahead of the handler (pipelining depth).
const PIPELINE_DEPTH: usize = 8;
/// Hard cap on one request line; a longer frame is refused and the
/// connection closed (DoS guard — normal frames are a few KB).
const MAX_LINE: usize = 8 * 1024 * 1024;
/// Imported proofs spot-checked per restored section before the section
/// is trusted (one failure rejects the whole section's import).
const PROOF_VERIFY_SAMPLE: usize = 32;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Prover worker threads (the pool that runs queries).
    pub workers: usize,
    /// Queue slots; at `high_water` queued jobs new work is refused.
    pub high_water: usize,
    /// Resident compiled sessions before LRU eviction.
    pub max_sessions: usize,
    /// Budget applied when a request carries no overrides.
    pub default_budget: Budget,
    /// Hard ceiling no per-request budget may exceed.
    pub ceiling: Budget,
    /// Directory for warm-state snapshots; `None` disables the tier.
    pub snapshot_dir: Option<PathBuf>,
    /// Background flusher period; `None` means snapshots are written
    /// only on graceful shutdown.
    pub snapshot_interval: Option<Duration>,
    /// Per-connection idle/read deadline; `None` disables it (a peer
    /// may then hold a reader thread indefinitely — test use only).
    pub idle_timeout: Option<Duration>,
    /// Injected faults for the snapshot path (dev/test only).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl ServeConfig {
    /// Defaults: workers = available parallelism, 64-deep queue,
    /// 32 sessions, the prover's stock budget as both default and
    /// ceiling, a 120 s read deadline, snapshots disabled.
    pub fn new() -> ServeConfig {
        let workers = thread::available_parallelism().map_or(4, usize::from);
        ServeConfig {
            workers,
            high_water: 64,
            max_sessions: 32,
            default_budget: Budget::new(),
            ceiling: Budget::new(),
            snapshot_dir: None,
            snapshot_interval: None,
            idle_timeout: Some(Duration::from_secs(120)),
            fault_plan: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::new()
    }
}

// ---------------------------------------------------------------------------
// Worker pool with bounded-queue admission control.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: std::collections::VecDeque<Job>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    wake: Condvar,
    high_water: usize,
}

/// Fixed worker pool; `submit` refuses instead of queueing past the
/// high-water mark.
struct Pool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Pool {
    fn new(workers: usize, high_water: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            high_water: high_water.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(job) = state.queue.pop_front() {
                                break job;
                            }
                            if state.draining {
                                return;
                            }
                            state = shared
                                .wake
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    // A panicking job must not take the worker down.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Queue depth right now (for `stats`).
    fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Admits `job` or refuses with `overloaded`.
    fn submit(&self, job: Job) -> Result<(), ProtoError> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.draining {
            return Err(ProtoError {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".to_owned(),
                verb: None,
            });
        }
        if state.queue.len() >= self.shared.high_water {
            return Err(ProtoError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "work queue at high-water mark ({}); retry later",
                    self.shared.high_water
                ),
                verb: None,
            });
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Runs queued jobs to completion, then joins the workers.
    /// Idempotent: a second call finds no handles left to join.
    fn drain(&self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.draining = true;
        }
        self.shared.wake.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Stream abstraction over TCP and Unix sockets.
// ---------------------------------------------------------------------------

/// What a connection needs from its socket: byte I/O plus the ability
/// to clone a second handle (reader side), to force-close, and to set
/// a read deadline on blocking reads.
trait Conn: io::Read + io::Write + Send {
    fn split(&self) -> io::Result<Box<dyn Conn>>;
    fn force_close(&self) -> io::Result<()>;
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn force_close(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
}

impl Conn for UnixStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn force_close(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                // One-line request/response frames: Nagle + delayed ACK
                // would add ~40ms per round-trip.
                stream.set_nodelay(true)?;
                Ok(Box::new(stream))
            }
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// Shared state every connection handler sees.
struct Ctx {
    registry: SessionRegistry,
    metrics: Metrics,
    pool: Pool,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Second handles to live connections, for forced close on shutdown.
    conns: Mutex<HashMap<u64, Box<dyn Conn>>>,
    next_conn: AtomicU64,
    /// Persisted whole-program dependence tables by name (the `analyze`
    /// verb's incremental state; snapshotted beside the sessions).
    tables: Mutex<HashMap<String, DepTable>>,
}

impl Ctx {
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for (_, conn) in conns.drain() {
            let _ = conn.force_close();
        }
    }
}

/// A handle for stopping a running server from another thread (tests,
/// signal handlers).
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// Initiates the same graceful shutdown as the `shutdown` verb.
    pub fn stop(&self) {
        self.ctx.trigger_shutdown();
    }
}

/// The resident dependence-query daemon. Build with [`Server::new`],
/// bind one or more listeners, then [`Server::run`].
pub struct Server {
    ctx: Arc<Ctx>,
    listeners: Vec<Listener>,
}

impl Server {
    /// A server with no listeners yet.
    pub fn new(config: ServeConfig) -> Server {
        let ctx = Arc::new(Ctx {
            registry: SessionRegistry::new(config.max_sessions),
            metrics: Metrics::new(),
            pool: Pool::new(config.workers, config.high_water),
            config,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            tables: Mutex::new(HashMap::new()),
        });
        Server {
            ctx,
            listeners: Vec::new(),
        }
    }

    /// Binds a TCP listener; returns the actual address (use port 0 to
    /// let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.listeners.push(Listener::Tcp(listener));
        Ok(bound)
    }

    /// Binds a Unix-domain socket listener, replacing a stale socket
    /// file if one is present.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_unix(&mut self, path: &FsPath) -> io::Result<()> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        self.listeners
            .push(Listener::Unix(listener, path.to_owned()));
        Ok(())
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::stop`])
    /// arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns an error when no listener was bound.
    pub fn run(self) -> io::Result<()> {
        if self.listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listener bound (need --addr and/or --socket)",
            ));
        }
        // Warm up from a previous life before accepting the first
        // connection, so early clients land on restored caches.
        restore_from_snapshot(&self.ctx);
        let flusher = match (
            &self.ctx.config.snapshot_dir,
            self.ctx.config.snapshot_interval,
        ) {
            (Some(_), Some(interval)) if !interval.is_zero() => {
                let ctx = Arc::clone(&self.ctx);
                Some(thread::spawn(move || {
                    let mut last = Instant::now();
                    loop {
                        if ctx.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::sleep(FLUSH_POLL);
                        if last.elapsed() >= interval {
                            if let Err(e) = write_snapshot(&ctx) {
                                eprintln!("apt-serve: periodic snapshot failed: {e}");
                            }
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };
        let conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut accept_threads = Vec::new();
        let mut socket_files = Vec::new();
        for listener in self.listeners {
            if let Listener::Unix(_, path) = &listener {
                socket_files.push(path.clone());
            }
            let ctx = Arc::clone(&self.ctx);
            let conn_threads = Arc::clone(&conn_threads);
            accept_threads.push(thread::spawn(move || loop {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok(stream) => {
                        let ctx = Arc::clone(&ctx);
                        let handle = thread::spawn(move || serve_conn(&ctx, stream));
                        conn_threads
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            }));
        }
        for handle in accept_threads {
            let _ = handle.join();
        }
        // Accept loops only exit on shutdown; close any straggler
        // connections, then drain handlers and workers.
        self.ctx.trigger_shutdown();
        let handles =
            std::mem::take(&mut *conn_threads.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
        self.ctx.pool.drain();
        if let Some(handle) = flusher {
            let _ = handle.join();
        }
        // Graceful shutdown persists the warm state one last time. A
        // failure here (disk full, injected fault) costs the next
        // life's warmth, nothing else.
        if self.ctx.config.snapshot_dir.is_some() {
            if let Err(e) = write_snapshot(&self.ctx) {
                eprintln!("apt-serve: final snapshot failed: {e}");
            }
        }
        for path in socket_files {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Snapshot restore / flush.
// ---------------------------------------------------------------------------

/// Exports every resident session and writes the snapshot atomically.
/// Shared by the periodic flusher and the graceful-shutdown path.
fn write_snapshot(ctx: &Ctx) -> io::Result<u64> {
    let Some(dir) = &ctx.config.snapshot_dir else {
        return Ok(0);
    };
    let sections: Vec<SessionSection> = ctx
        .registry
        .dump_sessions()
        .into_iter()
        .map(|dump| SessionSection {
            name: dump.session,
            axioms_text: dump.source,
            export: dump.engine.export_cache(),
        })
        .collect();
    let analyses: Vec<AnalyzeSection> = {
        let tables = ctx.tables.lock().unwrap_or_else(PoisonError::into_inner);
        let mut analyses: Vec<AnalyzeSection> = tables
            .iter()
            .map(|(name, table)| AnalyzeSection {
                name: name.clone(),
                table: table.clone(),
            })
            .collect();
        // Deterministic section order keeps repeat snapshots comparable.
        analyses.sort_by(|a, b| a.name.cmp(&b.name));
        analyses
    };
    let snap = Snapshot {
        created_unix_ms: snapshot::unix_ms_now(),
        sections,
        analyses,
    };
    match snapshot::write_atomic(dir, &snap, ctx.config.fault_plan.as_deref()) {
        Ok((_, bytes)) => {
            ctx.metrics.update_snapshot_status(|s| {
                s.writes_total += 1;
                s.last_write = Some(Instant::now());
                s.last_write_bytes = bytes;
            });
            Ok(bytes)
        }
        Err(e) => {
            ctx.metrics.update_snapshot_status(|s| s.write_errors += 1);
            Err(e)
        }
    }
}

/// Startup restore. Every failure mode on this path — missing file,
/// unreadable file, bad header, corrupt sections, unparsable axioms,
/// proofs that do not check — degrades to cold state for the affected
/// scope and the server starts anyway.
fn restore_from_snapshot(ctx: &Ctx) {
    let Some(dir) = &ctx.config.snapshot_dir else {
        return;
    };
    ctx.metrics.update_snapshot_status(|s| s.enabled = true);
    let faults = ctx.config.fault_plan.as_deref();
    let bytes = match snapshot::read_snapshot_bytes(dir, faults) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return,
        Err(e) => {
            eprintln!("apt-serve: snapshot read failed ({e}); starting cold");
            return;
        }
    };
    let restored_bytes = bytes.len() as u64;
    let outcomes = match snapshot::decode(&bytes) {
        Ok((_, outcomes)) => outcomes,
        Err(e) => {
            eprintln!("apt-serve: snapshot unusable ({e}); starting cold");
            return;
        }
    };
    let (mut warm, mut corrupt, mut goals, mut subsets) = (0usize, 0usize, 0usize, 0usize);
    let mut tables = 0usize;
    for outcome in outcomes {
        match outcome {
            SectionOutcome::Restored(section) => match restore_section(ctx, &section) {
                Ok(stats) => {
                    warm += 1;
                    goals += stats.goals;
                    subsets += stats.subsets;
                }
                Err(reason) => {
                    corrupt += 1;
                    eprintln!(
                        "apt-serve: snapshot section [{}] rejected: {reason}",
                        section.name
                    );
                }
            },
            SectionOutcome::Analysis(analysis) => {
                // Table entries are *candidates*: the `analyze` verb
                // re-validates hashes and spot-checks stored proofs
                // before any verdict replays, so restoring here cannot
                // launder a forged table into answers.
                tables += 1;
                warm += 1;
                ctx.tables
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(analysis.name, analysis.table);
            }
            SectionOutcome::Corrupt { name, reason } => {
                corrupt += 1;
                eprintln!("apt-serve: snapshot section [{name}] corrupt: {reason}");
            }
        }
    }
    let outcome = match (warm, corrupt) {
        (0, _) => RestoreOutcome::Cold,
        (_, 0) => RestoreOutcome::Warm,
        _ => RestoreOutcome::Partial,
    };
    ctx.metrics.update_snapshot_status(|s| {
        s.last_restore = outcome;
        s.restored_bytes = restored_bytes;
        s.restored_sessions = warm - tables;
        s.corrupt_sections = corrupt;
        s.restored_goals = goals;
        s.restored_subsets = subsets;
        s.restored_tables = tables;
    });
}

/// Recompiles one section's axiom set into a fresh session and imports
/// its cache image (spot-checking proofs). Session ids do not survive a
/// restart — reconnecting clients re-`open_session` and the registry's
/// structural dedupe lands them on the restored warm engine.
fn restore_section(ctx: &Ctx, section: &SessionSection) -> Result<apt_core::ImportStats, String> {
    let opened = ctx
        .registry
        .open(&section.axioms_text)
        .map_err(|e| format!("axioms do not parse: {}", e.message))?;
    let engine = ctx.registry.get(&opened.session).map_err(|e| e.message)?;
    engine
        .import_cache(&section.export, PROOF_VERIFY_SAMPLE)
        .map_err(|e| {
            // A section whose proofs fail verification is corrupt; drop
            // the session it opened (unless an earlier section already
            // owned it) rather than serve from a suspect image.
            if !opened.deduped {
                ctx.registry.close(&opened.session);
            }
            format!("proof verification failed: {e}")
        })
}

// ---------------------------------------------------------------------------
// Per-connection plumbing.
// ---------------------------------------------------------------------------

fn serve_conn(ctx: &Arc<Ctx>, stream: Box<dyn Conn>) {
    Metrics::bump(&ctx.metrics.connections_total);
    Metrics::bump(&ctx.metrics.connections_active);
    let conn_id = ctx.next_conn.fetch_add(1, Ordering::Relaxed);
    // Register a second handle so shutdown can force-close us.
    if let Ok(extra) = stream.split() {
        ctx.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(conn_id, extra);
    }
    let cancel = CancelToken::new();
    let rx = match spawn_reader(stream.as_ref(), &cancel, ctx.config.idle_timeout) {
        Ok(rx) => rx,
        Err(_) => {
            finish_conn(ctx, conn_id);
            return;
        }
    };
    let mut out = stream;
    let mut shutdown_after = false;
    while let Ok(event) = rx.recv() {
        let line = match event {
            ReaderEvent::Line(line) => line,
            ReaderEvent::TimedOut => {
                Metrics::bump(&ctx.metrics.read_timeouts);
                Metrics::bump(&ctx.metrics.errors_total);
                let e = ProtoError {
                    code: ErrorCode::Timeout,
                    message: "read deadline exceeded; closing connection".to_owned(),
                    verb: None,
                };
                send_frame(&mut out, &error_frame(None, &e));
                break;
            }
            ReaderEvent::TooLong => {
                Metrics::bump(&ctx.metrics.errors_total);
                let e = ProtoError::bad(format!(
                    "request line exceeds {MAX_LINE} bytes; closing connection"
                ));
                send_frame(&mut out, &error_frame(None, &e));
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        Metrics::bump(&ctx.metrics.requests_total);
        let (frame, wants_shutdown) = handle_line(ctx, trimmed, &cancel);
        if frame.get("ok") == Some(&Json::Bool(false)) {
            Metrics::bump(&ctx.metrics.errors_total);
        }
        let mut text = frame.render();
        text.push('\n');
        if out
            .write_all(text.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            // Peer is gone; the reader will cancel the token shortly if
            // it has not already.
            break;
        }
        if wants_shutdown {
            shutdown_after = true;
            break;
        }
    }
    finish_conn(ctx, conn_id);
    if shutdown_after {
        ctx.trigger_shutdown();
    }
}

fn finish_conn(ctx: &Ctx, conn_id: u64) {
    ctx.conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);
    ctx.metrics
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

/// What the reader thread hands the connection handler.
enum ReaderEvent {
    /// One complete request line (newline included).
    Line(String),
    /// The read deadline passed — idle socket, or a partial frame that
    /// never completed (slow-loris).
    TimedOut,
    /// A single line grew past [`MAX_LINE`] without a newline.
    TooLong,
}

/// Writes one response frame, ignoring failures (the peer may be gone).
fn send_frame(out: &mut Box<dyn Conn>, frame: &Json) {
    let mut text = frame.render();
    text.push('\n');
    let _ = out.write_all(text.as_bytes()).and_then(|()| out.flush());
}

/// Spawns the reader thread: socket lines go into a bounded channel;
/// EOF or a read error cancels the connection token (disconnect-aborts
/// any in-flight proof). With a deadline, both flavors of stuck peer
/// surface as [`ReaderEvent::TimedOut`]: a silent socket trips the
/// blocking-read timeout, and a byte-dribbling one trips the
/// line-completion deadline (a partial frame must finish within one
/// deadline of its first byte, so the worst case is two deadlines).
fn spawn_reader(
    stream: &dyn Conn,
    cancel: &CancelToken,
    idle_timeout: Option<Duration>,
) -> io::Result<Receiver<ReaderEvent>> {
    let reader = stream.split()?;
    if idle_timeout.is_some() {
        reader.set_read_timeout(idle_timeout)?;
    }
    let cancel = cancel.clone();
    let (tx, rx): (SyncSender<ReaderEvent>, Receiver<ReaderEvent>) = sync_channel(PIPELINE_DEPTH);
    thread::spawn(move || {
        read_lines(reader, idle_timeout, &tx);
        cancel.cancel();
    });
    Ok(rx)
}

/// The reader loop behind [`spawn_reader`]. Returns on EOF, error,
/// deadline, or the handler going away.
fn read_lines(
    mut reader: Box<dyn Conn>,
    idle_timeout: Option<Duration>,
    tx: &SyncSender<ReaderEvent>,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut line_deadline: Option<Instant> = None;
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let text = String::from_utf8_lossy(&line).into_owned();
                    if tx.send(ReaderEvent::Line(text)).is_err() {
                        return;
                    }
                }
                if buf.is_empty() {
                    line_deadline = None;
                } else {
                    if buf.len() > MAX_LINE {
                        let _ = tx.send(ReaderEvent::TooLong);
                        return;
                    }
                    match line_deadline {
                        None => {
                            line_deadline =
                                idle_timeout.and_then(|t| Instant::now().checked_add(t));
                        }
                        Some(deadline) if Instant::now() >= deadline => {
                            let _ = tx.send(ReaderEvent::TimedOut);
                            return;
                        }
                        Some(_) => {}
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                let _ = tx.send(ReaderEvent::TimedOut);
                return;
            }
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// Request dispatch.
// ---------------------------------------------------------------------------

/// Handles one request line; returns the response frame and whether the
/// connection asked the whole server to shut down.
fn handle_line(ctx: &Arc<Ctx>, line: &str, cancel: &CancelToken) -> (Json, bool) {
    let (id, request) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(e) => return (error_frame(None, &e), false),
    };
    let id = id.as_ref();
    // Probes answer even while draining: liveness must outlive admission.
    if ctx.shutdown.load(Ordering::SeqCst)
        && !matches!(
            request,
            Request::Shutdown | Request::Health | Request::Ready
        )
    {
        let e = ProtoError {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".to_owned(),
            verb: None,
        };
        return (error_frame(id, &e), false);
    }
    match dispatch(ctx, id, request, cancel) {
        Ok((frame, shutdown)) => (frame, shutdown),
        Err(e) => {
            if e.code == ErrorCode::Overloaded {
                Metrics::bump(&ctx.metrics.overload_refusals);
            }
            (error_frame(id, &e), false)
        }
    }
}

fn dispatch(
    ctx: &Arc<Ctx>,
    id: Option<&Json>,
    request: Request,
    cancel: &CancelToken,
) -> Result<(Json, bool), ProtoError> {
    match request {
        Request::Hello => {
            let verbs: Vec<Json> = SUPPORTED_VERBS
                .iter()
                .map(|&v| Json::Str(v.to_owned()))
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("proto_version", PROTO_VERSION.into()),
                        ("verbs", Json::Arr(verbs)),
                    ],
                ),
                false,
            ))
        }
        Request::OpenSession { axioms } => {
            let opened = ctx.registry.open(&axioms)?;
            let evicted = match opened.evicted {
                Some(s) => Json::Str(s),
                None => Json::Null,
            };
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("session", opened.session.as_str().into()),
                        ("deduped", opened.deduped.into()),
                        ("axioms", opened.axioms.into()),
                        ("evicted", evicted),
                    ],
                ),
                false,
            ))
        }
        Request::CloseSession { session } => {
            let closed = ctx.registry.close(&session);
            Ok((ok_frame(id, vec![("closed", closed.into())]), false))
        }
        Request::Prove { session, query } => {
            let engine = ctx.registry.get(&session)?;
            let budget = resolved_budget(ctx, &query, cancel);
            let dep = wire_to_query(&query).with_budget(budget);
            let want_proof = query.want_proof;
            let outcome = run_pooled(ctx, cancel, move || engine.run(&dep))?;
            Metrics::bump(&ctx.metrics.queries_total);
            Ok((
                ok_frame(id, vec![("result", outcome_json(&outcome, want_proof))]),
                false,
            ))
        }
        Request::Batch {
            session,
            queries,
            jobs,
        } => {
            let engine = ctx.registry.get(&session)?;
            let jobs = jobs
                .unwrap_or(ctx.config.workers)
                .clamp(1, ctx.config.workers.max(1));
            let deps: Vec<DepQuery> = queries
                .iter()
                .map(|q| wire_to_query(q).with_budget(resolved_budget(ctx, q, cancel)))
                .collect();
            let want: Vec<bool> = queries.iter().map(|q| q.want_proof).collect();
            let outcomes: Vec<Outcome> =
                run_pooled(ctx, cancel, move || engine.run_batch(&deps, jobs))?;
            Metrics::add(&ctx.metrics.queries_total, outcomes.len() as u64);
            let mut merged = ProverStats::default();
            let results: Vec<Json> = outcomes
                .iter()
                .zip(want.iter())
                .map(|(o, &w)| {
                    merged.merge(&o.stats);
                    outcome_json(o, w)
                })
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("results", Json::Arr(results)),
                        ("stats", stats_json(&merged)),
                    ],
                ),
                false,
            ))
        }
        Request::Report {
            program,
            proc,
            budget,
        } => {
            let frame = run_report(ctx, &program, proc.as_deref(), &budget, cancel)?;
            Ok((ok_frame(id, frame), false))
        }
        Request::Analyze {
            program,
            name,
            jobs,
            changed_only,
            budget,
        } => {
            let frame = run_analyze(ctx, &program, &name, jobs, changed_only, &budget, cancel)?;
            Ok((ok_frame(id, frame), false))
        }
        Request::Invalidate { name, proc } => {
            let mut tables = ctx.tables.lock().unwrap_or_else(PoisonError::into_inner);
            let (dropped_procs, dropped_verdicts) = match proc.as_deref() {
                Some(proc_name) => match tables.get_mut(&name) {
                    Some(table) => {
                        let had = table.entry(proc_name).is_some();
                        let verdicts = table.invalidate_proc(proc_name);
                        (usize::from(had), verdicts)
                    }
                    None => (0, 0),
                },
                None => match tables.remove(&name) {
                    Some(table) => (table.procs.len(), table.total_verdicts()),
                    None => (0, 0),
                },
            };
            drop(tables);
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("table", name.as_str().into()),
                        ("dropped_procs", dropped_procs.into()),
                        ("dropped_verdicts", dropped_verdicts.into()),
                    ],
                ),
                false,
            ))
        }
        Request::Stats => {
            let sessions: Vec<Json> = ctx
                .registry
                .snapshot()
                .into_iter()
                .map(|info| {
                    let cache =
                        ctx.registry
                            .peek_cache_stats(&info.session)
                            .map_or(Json::Null, |c| {
                                obj(vec![
                                    ("proved_goals", c.proved_goals.into()),
                                    ("failed_goals", c.failed_goals.into()),
                                    ("subset_results", c.subset_results.into()),
                                    ("dfas", c.dfas.into()),
                                    ("min_dfas", c.min_dfas.into()),
                                ])
                            });
                    obj(vec![
                        ("session", info.session.as_str().into()),
                        ("axioms", info.axioms.into()),
                        ("opens", info.opens.into()),
                        ("uses", info.uses.into()),
                        ("cache", cache),
                    ])
                })
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("proto_version", PROTO_VERSION.into()),
                        ("server", ctx.metrics.to_json()),
                        ("queue_depth", ctx.pool.depth().into()),
                        ("workers", ctx.config.workers.into()),
                        ("sessions", Json::Arr(sessions)),
                    ],
                ),
                false,
            ))
        }
        Request::Health => Ok((ok_frame(id, vec![("healthy", true.into())]), false)),
        Request::Ready => {
            let draining = ctx.shutdown.load(Ordering::SeqCst);
            let status = ctx.metrics.snapshot_status();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("ready", (!draining).into()),
                        ("draining", draining.into()),
                        ("proto_version", PROTO_VERSION.into()),
                        ("restore", status.last_restore.as_str().into()),
                        ("sessions", ctx.registry.len().into()),
                    ],
                ),
                false,
            ))
        }
        Request::Shutdown => Ok((ok_frame(id, vec![("stopping", true.into())]), true)),
    }
}

fn wire_to_query(q: &WireQuery) -> DepQuery {
    let dep = if q.equal {
        DepQuery::equal(&q.a, &q.b)
    } else {
        DepQuery::disjoint(&q.a, &q.b)
    };
    dep.origin(if q.distinct {
        Origin::Distinct
    } else {
        Origin::Same
    })
}

fn resolved_budget(ctx: &Ctx, q: &WireQuery, cancel: &CancelToken) -> Budget {
    q.budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone())
}

/// Runs `work` on the worker pool, waiting for its result. Refuses with
/// `overloaded` when the queue is full; converts a panicking job into
/// an `internal` error instead of hanging the connection.
fn run_pooled<T: Send + 'static>(
    ctx: &Arc<Ctx>,
    cancel: &CancelToken,
    work: impl FnOnce() -> T + Send + 'static,
) -> Result<T, ProtoError> {
    let (tx, rx) = sync_channel::<thread::Result<T>>(1);
    ctx.pool.submit(Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(work));
        let _ = tx.send(result);
    }))?;
    match rx.recv() {
        Ok(Ok(value)) => {
            if cancel.is_cancelled() {
                Metrics::bump(&ctx.metrics.disconnect_cancels);
            }
            Ok(value)
        }
        Ok(Err(_panic)) => Err(ProtoError {
            code: ErrorCode::Internal,
            message: "request crashed; fault isolated to this request".to_owned(),
            verb: None,
        }),
        Err(_) => Err(ProtoError {
            code: ErrorCode::Internal,
            message: "worker dropped the request".to_owned(),
            verb: None,
        }),
    }
}

/// The `report` verb: whole-program analysis (the `apt report`
/// workload) inline over `apt_ir` + `apt_paths`.
fn run_report(
    ctx: &Arc<Ctx>,
    program_text: &str,
    proc: Option<&str>,
    budget: &crate::proto::WireBudget,
    cancel: &CancelToken,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let program = apt_ir::parse_program(program_text)
        .map_err(|e| ProtoError::bad(format!("program: {e}")))?;
    let names: Vec<String> = match proc {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(ProtoError::bad("program has no procedures"));
    }
    let wire = budget.clone();
    let default_budget = ctx.config.default_budget.clone();
    let ceiling = ctx.config.ceiling.clone();
    let cancel_for_job = cancel.clone();
    let jobs = ctx.config.workers;
    let procs = run_pooled(ctx, cancel, move || {
        let budget = wire
            .resolve(&default_budget, &ceiling)
            .with_cancel(cancel_for_job);
        let mut config = ProverConfig::new();
        config.budget = budget;
        let mut procs: Vec<Json> = Vec::new();
        let mut total = 0usize;
        for name in &names {
            let mut analysis = match apt_paths::analyze_proc(&program, name) {
                Ok(a) => a,
                Err(e) => {
                    procs.push(obj(vec![
                        ("proc", name.as_str().into()),
                        ("error", e.to_string().as_str().into()),
                    ]));
                    continue;
                }
            };
            analysis.set_prover_config(config.clone());
            let queries = analysis.all_queries();
            total += queries.len();
            let report = analysis.run_batch(&queries, &BatchOptions::new().with_jobs(jobs));
            let rows: Vec<Json> = queries
                .iter()
                .zip(report.results.iter())
                .map(|(q, r)| report_row(q, r))
                .collect();
            procs.push(obj(vec![
                ("proc", name.as_str().into()),
                ("queries", Json::Arr(rows)),
            ]));
        }
        (procs, total)
    })?;
    let (procs, total) = procs;
    Metrics::add(&ctx.metrics.queries_total, total as u64);
    Ok(vec![
        ("procs", Json::Arr(procs)),
        ("total_queries", total.into()),
    ])
}

/// The `analyze` verb: whole-program incremental dependence analysis.
/// The persisted table named `name` (if any) serves as the baseline;
/// the refreshed table is stored back under the same name, so repeated
/// `analyze` calls after small edits re-prove only what changed.
fn run_analyze(
    ctx: &Arc<Ctx>,
    program_text: &str,
    name: &str,
    jobs: Option<usize>,
    changed_only: bool,
    budget: &crate::proto::WireBudget,
    cancel: &CancelToken,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let program = apt_ir::parse_program(program_text)
        .map_err(|e| ProtoError::bad(format!("program: {e}")))?;
    if program.procs.is_empty() {
        return Err(ProtoError::bad("program has no procedures"));
    }
    let jobs = jobs
        .unwrap_or(ctx.config.workers)
        .clamp(1, ctx.config.workers.max(1));
    let resolved = budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone());
    let baseline = ctx
        .tables
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .cloned();
    let report = run_pooled(ctx, cancel, move || {
        let mut config = ProverConfig::new();
        config.budget = resolved;
        let analysis = analyze_program(&program).with_prover_config(config);
        analysis.run(baseline.as_ref(), &BatchOptions::new().with_jobs(jobs))
    })?;
    Metrics::add(&ctx.metrics.queries_total, report.reproved() as u64);
    Metrics::add(&ctx.metrics.analyze_replayed, report.replayed() as u64);
    Metrics::add(&ctx.metrics.analyze_reproved, report.reproved() as u64);
    ctx.tables
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(name.to_owned(), report.table.clone());
    let procs: Vec<Json> = report
        .procs
        .iter()
        // `changed_only` trims the *display* to procedures that did
        // prover work; the totals below still cover every procedure.
        .filter(|p| !changed_only || p.reproved > 0)
        .map(|p| {
            let rows: Vec<Json> = p
                .rows
                .iter()
                .map(|row| {
                    let mut pairs = vec![
                        ("query", row.key.as_str().into()),
                        ("answer", row.outcome.answer().as_str().into()),
                        ("replayed", row.outcome.is_replayed().into()),
                    ];
                    if let RowOutcome::Error(e) = &row.outcome {
                        pairs.push(("error", e.to_string().as_str().into()));
                    }
                    obj(pairs)
                })
                .collect();
            obj(vec![
                ("proc", p.name.as_str().into()),
                ("reused", p.reused.into()),
                ("replayed", p.replayed.into()),
                ("reproved", p.reproved.into()),
                ("queries", Json::Arr(rows)),
            ])
        })
        .collect();
    Ok(vec![
        ("table", name.into()),
        ("procs", Json::Arr(procs)),
        ("total_queries", report.total_queries().into()),
        ("replayed", report.replayed().into()),
        ("reproved", report.reproved().into()),
        ("procs_reused", report.procs_reused().into()),
        ("any_maybe", report.any_maybe().into()),
    ])
}

fn report_row(
    query: &apt_paths::BatchQuery,
    result: &Result<apt_core::TestOutcome, apt_paths::QueryError>,
) -> Json {
    let what = match query {
        apt_paths::BatchQuery::LoopCarried { label, .. } => format!("carried {label}"),
        apt_paths::BatchQuery::Sequential { from, to } => format!("{from} vs {to}"),
    };
    match result {
        Ok(outcome) => {
            let maybe = match outcome.maybe {
                Some(r) => Json::Str(r.code().to_owned()),
                None => Json::Null,
            };
            obj(vec![
                ("query", what.as_str().into()),
                ("answer", outcome.answer.as_str().into()),
                ("reason", format!("{:?}", outcome.reason).as_str().into()),
                ("maybe", maybe),
            ])
        }
        Err(e) => obj(vec![
            ("query", what.as_str().into()),
            ("error", e.to_string().as_str().into()),
        ]),
    }
}
