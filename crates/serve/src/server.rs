//! The daemon: listeners, admission control, and per-connection plumbing.
//!
//! ## Threading model
//!
//! Every listener (TCP and/or Unix socket) gets an accept thread; every
//! accepted connection gets a **reader** thread and a **handler**
//! thread. The reader turns the socket into a bounded stream of lines
//! and — crucially — notices the peer vanishing: when its read returns
//! EOF or an error it cancels the connection-wide [`CancelToken`],
//! which aborts any proof currently running for that connection via the
//! prover's cooperative cancellation brake. Cancelled runs publish
//! nothing to the shared caches, so an abandoned query cannot poison a
//! session for later clients.
//!
//! Proving itself happens on a fixed pool of worker threads behind a
//! bounded queue. When the queue is at its high-water mark new work is
//! *refused* with an `overloaded` error frame instead of being queued —
//! under overload the daemon degrades to fast, explicit refusals,
//! never to unbounded memory growth or silent timeouts. Cheap
//! control verbs (`open_session`, `stats`, …) bypass the pool.
//!
//! ## Shutdown
//!
//! The `shutdown` verb answers `{"ok":true}`, then flips a flag the
//! accept loops poll and shuts down every registered connection socket.
//! Readers see EOF, cancel their tokens, handlers drain, the pool
//! joins, and [`Server::run`] returns.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use apt_core::{Budget, CancelToken, DepQuery, Origin, Outcome, ProverConfig, ProverStats};

use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::proto::{
    error_frame, ok_frame, outcome_json, parse_request, stats_json, ErrorCode, ProtoError, Request,
    WireQuery,
};
use crate::session::SessionRegistry;

/// How accept loops poll for shutdown between `WouldBlock`s.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Lines a reader may buffer ahead of the handler (pipelining depth).
const PIPELINE_DEPTH: usize = 8;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Prover worker threads (the pool that runs queries).
    pub workers: usize,
    /// Queue slots; at `high_water` queued jobs new work is refused.
    pub high_water: usize,
    /// Resident compiled sessions before LRU eviction.
    pub max_sessions: usize,
    /// Budget applied when a request carries no overrides.
    pub default_budget: Budget,
    /// Hard ceiling no per-request budget may exceed.
    pub ceiling: Budget,
}

impl ServeConfig {
    /// Defaults: workers = available parallelism, 64-deep queue,
    /// 32 sessions, the prover's stock budget as both default and
    /// ceiling.
    pub fn new() -> ServeConfig {
        let workers = thread::available_parallelism().map_or(4, usize::from);
        ServeConfig {
            workers,
            high_water: 64,
            max_sessions: 32,
            default_budget: Budget::new(),
            ceiling: Budget::new(),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::new()
    }
}

// ---------------------------------------------------------------------------
// Worker pool with bounded-queue admission control.
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: std::collections::VecDeque<Job>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    wake: Condvar,
    high_water: usize,
}

/// Fixed worker pool; `submit` refuses instead of queueing past the
/// high-water mark.
struct Pool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Pool {
    fn new(workers: usize, high_water: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            high_water: high_water.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let job = {
                        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(job) = state.queue.pop_front() {
                                break job;
                            }
                            if state.draining {
                                return;
                            }
                            state = shared
                                .wake
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    // A panicking job must not take the worker down.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Queue depth right now (for `stats`).
    fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Admits `job` or refuses with `overloaded`.
    fn submit(&self, job: Job) -> Result<(), ProtoError> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.draining {
            return Err(ProtoError {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".to_owned(),
            });
        }
        if state.queue.len() >= self.shared.high_water {
            return Err(ProtoError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "work queue at high-water mark ({}); retry later",
                    self.shared.high_water
                ),
            });
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Runs queued jobs to completion, then joins the workers.
    /// Idempotent: a second call finds no handles left to join.
    fn drain(&self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.draining = true;
        }
        self.shared.wake.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Stream abstraction over TCP and Unix sockets.
// ---------------------------------------------------------------------------

/// What a connection needs from its socket: byte I/O plus the ability
/// to clone a second handle (reader side) and to force-close.
trait Conn: io::Read + io::Write + Send {
    fn split(&self) -> io::Result<Box<dyn Conn>>;
    fn force_close(&self) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn force_close(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl Conn for UnixStream {
    fn split(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn force_close(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                // One-line request/response frames: Nagle + delayed ACK
                // would add ~40ms per round-trip.
                stream.set_nodelay(true)?;
                Ok(Box::new(stream))
            }
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Box::new(stream))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// Shared state every connection handler sees.
struct Ctx {
    registry: SessionRegistry,
    metrics: Metrics,
    pool: Pool,
    config: ServeConfig,
    shutdown: AtomicBool,
    /// Second handles to live connections, for forced close on shutdown.
    conns: Mutex<HashMap<u64, Box<dyn Conn>>>,
    next_conn: AtomicU64,
}

impl Ctx {
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
        for (_, conn) in conns.drain() {
            let _ = conn.force_close();
        }
    }
}

/// A handle for stopping a running server from another thread (tests,
/// signal handlers).
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// Initiates the same graceful shutdown as the `shutdown` verb.
    pub fn stop(&self) {
        self.ctx.trigger_shutdown();
    }
}

/// The resident dependence-query daemon. Build with [`Server::new`],
/// bind one or more listeners, then [`Server::run`].
pub struct Server {
    ctx: Arc<Ctx>,
    listeners: Vec<Listener>,
}

impl Server {
    /// A server with no listeners yet.
    pub fn new(config: ServeConfig) -> Server {
        let ctx = Arc::new(Ctx {
            registry: SessionRegistry::new(config.max_sessions),
            metrics: Metrics::new(),
            pool: Pool::new(config.workers, config.high_water),
            config,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        Server {
            ctx,
            listeners: Vec::new(),
        }
    }

    /// Binds a TCP listener; returns the actual address (use port 0 to
    /// let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.listeners.push(Listener::Tcp(listener));
        Ok(bound)
    }

    /// Binds a Unix-domain socket listener, replacing a stale socket
    /// file if one is present.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_unix(&mut self, path: &FsPath) -> io::Result<()> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        self.listeners
            .push(Listener::Unix(listener, path.to_owned()));
        Ok(())
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::stop`])
    /// arrives, then drains and returns.
    ///
    /// # Errors
    ///
    /// Returns an error when no listener was bound.
    pub fn run(self) -> io::Result<()> {
        if self.listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listener bound (need --addr and/or --socket)",
            ));
        }
        let conn_threads: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut accept_threads = Vec::new();
        let mut socket_files = Vec::new();
        for listener in self.listeners {
            if let Listener::Unix(_, path) = &listener {
                socket_files.push(path.clone());
            }
            let ctx = Arc::clone(&self.ctx);
            let conn_threads = Arc::clone(&conn_threads);
            accept_threads.push(thread::spawn(move || loop {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok(stream) => {
                        let ctx = Arc::clone(&ctx);
                        let handle = thread::spawn(move || serve_conn(&ctx, stream));
                        conn_threads
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            }));
        }
        for handle in accept_threads {
            let _ = handle.join();
        }
        // Accept loops only exit on shutdown; close any straggler
        // connections, then drain handlers and workers.
        self.ctx.trigger_shutdown();
        let handles =
            std::mem::take(&mut *conn_threads.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
        self.ctx.pool.drain();
        for path in socket_files {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-connection plumbing.
// ---------------------------------------------------------------------------

fn serve_conn(ctx: &Arc<Ctx>, stream: Box<dyn Conn>) {
    Metrics::bump(&ctx.metrics.connections_total);
    Metrics::bump(&ctx.metrics.connections_active);
    let conn_id = ctx.next_conn.fetch_add(1, Ordering::Relaxed);
    // Register a second handle so shutdown can force-close us.
    if let Ok(extra) = stream.split() {
        ctx.conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(conn_id, extra);
    }
    let cancel = CancelToken::new();
    let rx = match spawn_reader(stream.as_ref(), &cancel) {
        Ok(rx) => rx,
        Err(_) => {
            finish_conn(ctx, conn_id);
            return;
        }
    };
    let mut out = stream;
    let mut shutdown_after = false;
    while let Ok(line) = rx.recv() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        Metrics::bump(&ctx.metrics.requests_total);
        let (frame, wants_shutdown) = handle_line(ctx, trimmed, &cancel);
        if frame.get("ok") == Some(&Json::Bool(false)) {
            Metrics::bump(&ctx.metrics.errors_total);
        }
        let mut text = frame.render();
        text.push('\n');
        if out
            .write_all(text.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            // Peer is gone; the reader will cancel the token shortly if
            // it has not already.
            break;
        }
        if wants_shutdown {
            shutdown_after = true;
            break;
        }
    }
    finish_conn(ctx, conn_id);
    if shutdown_after {
        ctx.trigger_shutdown();
    }
}

fn finish_conn(ctx: &Ctx, conn_id: u64) {
    ctx.conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);
    ctx.metrics
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
}

/// Spawns the reader thread: socket lines go into a bounded channel;
/// EOF or a read error cancels the connection token (disconnect-aborts
/// any in-flight proof).
fn spawn_reader(stream: &dyn Conn, cancel: &CancelToken) -> io::Result<Receiver<String>> {
    let reader = stream.split()?;
    let cancel = cancel.clone();
    let (tx, rx): (SyncSender<String>, Receiver<String>) = sync_channel(PIPELINE_DEPTH);
    thread::spawn(move || {
        let buf = BufReader::new(ReadOnly(reader));
        for line in buf.lines() {
            match line {
                Ok(line) => {
                    if tx.send(line).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        cancel.cancel();
    });
    Ok(rx)
}

/// Newtype so the boxed conn can be used purely as a reader.
struct ReadOnly(Box<dyn Conn>);

impl io::Read for ReadOnly {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

// ---------------------------------------------------------------------------
// Request dispatch.
// ---------------------------------------------------------------------------

/// Handles one request line; returns the response frame and whether the
/// connection asked the whole server to shut down.
fn handle_line(ctx: &Arc<Ctx>, line: &str, cancel: &CancelToken) -> (Json, bool) {
    let (id, request) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(e) => return (error_frame(None, &e), false),
    };
    let id = id.as_ref();
    if ctx.shutdown.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
        let e = ProtoError {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".to_owned(),
        };
        return (error_frame(id, &e), false);
    }
    match dispatch(ctx, id, request, cancel) {
        Ok((frame, shutdown)) => (frame, shutdown),
        Err(e) => {
            if e.code == ErrorCode::Overloaded {
                Metrics::bump(&ctx.metrics.overload_refusals);
            }
            (error_frame(id, &e), false)
        }
    }
}

fn dispatch(
    ctx: &Arc<Ctx>,
    id: Option<&Json>,
    request: Request,
    cancel: &CancelToken,
) -> Result<(Json, bool), ProtoError> {
    match request {
        Request::OpenSession { axioms } => {
            let opened = ctx.registry.open(&axioms)?;
            let evicted = match opened.evicted {
                Some(s) => Json::Str(s),
                None => Json::Null,
            };
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("session", opened.session.as_str().into()),
                        ("deduped", opened.deduped.into()),
                        ("axioms", opened.axioms.into()),
                        ("evicted", evicted),
                    ],
                ),
                false,
            ))
        }
        Request::CloseSession { session } => {
            let closed = ctx.registry.close(&session);
            Ok((ok_frame(id, vec![("closed", closed.into())]), false))
        }
        Request::Prove { session, query } => {
            let engine = ctx.registry.get(&session)?;
            let budget = resolved_budget(ctx, &query, cancel);
            let dep = wire_to_query(&query).with_budget(budget);
            let want_proof = query.want_proof;
            let outcome = run_pooled(ctx, cancel, move || engine.run(&dep))?;
            Metrics::bump(&ctx.metrics.queries_total);
            Ok((
                ok_frame(id, vec![("result", outcome_json(&outcome, want_proof))]),
                false,
            ))
        }
        Request::Batch {
            session,
            queries,
            jobs,
        } => {
            let engine = ctx.registry.get(&session)?;
            let jobs = jobs
                .unwrap_or(ctx.config.workers)
                .clamp(1, ctx.config.workers.max(1));
            let deps: Vec<DepQuery> = queries
                .iter()
                .map(|q| wire_to_query(q).with_budget(resolved_budget(ctx, q, cancel)))
                .collect();
            let want: Vec<bool> = queries.iter().map(|q| q.want_proof).collect();
            let outcomes: Vec<Outcome> =
                run_pooled(ctx, cancel, move || engine.run_batch(&deps, jobs))?;
            Metrics::add(&ctx.metrics.queries_total, outcomes.len() as u64);
            let mut merged = ProverStats::default();
            let results: Vec<Json> = outcomes
                .iter()
                .zip(want.iter())
                .map(|(o, &w)| {
                    merged.merge(&o.stats);
                    outcome_json(o, w)
                })
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("results", Json::Arr(results)),
                        ("stats", stats_json(&merged)),
                    ],
                ),
                false,
            ))
        }
        Request::Report {
            program,
            proc,
            budget,
        } => {
            let frame = run_report(ctx, &program, proc.as_deref(), &budget, cancel)?;
            Ok((ok_frame(id, frame), false))
        }
        Request::Stats => {
            let sessions: Vec<Json> = ctx
                .registry
                .snapshot()
                .into_iter()
                .map(|info| {
                    let cache =
                        ctx.registry
                            .peek_cache_stats(&info.session)
                            .map_or(Json::Null, |c| {
                                obj(vec![
                                    ("proved_goals", c.proved_goals.into()),
                                    ("failed_goals", c.failed_goals.into()),
                                    ("subset_results", c.subset_results.into()),
                                    ("dfas", c.dfas.into()),
                                    ("min_dfas", c.min_dfas.into()),
                                ])
                            });
                    obj(vec![
                        ("session", info.session.as_str().into()),
                        ("axioms", info.axioms.into()),
                        ("opens", info.opens.into()),
                        ("uses", info.uses.into()),
                        ("cache", cache),
                    ])
                })
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("server", ctx.metrics.to_json()),
                        ("queue_depth", ctx.pool.depth().into()),
                        ("workers", ctx.config.workers.into()),
                        ("sessions", Json::Arr(sessions)),
                    ],
                ),
                false,
            ))
        }
        Request::Shutdown => Ok((ok_frame(id, vec![("stopping", true.into())]), true)),
    }
}

fn wire_to_query(q: &WireQuery) -> DepQuery {
    let dep = if q.equal {
        DepQuery::equal(&q.a, &q.b)
    } else {
        DepQuery::disjoint(&q.a, &q.b)
    };
    dep.origin(if q.distinct {
        Origin::Distinct
    } else {
        Origin::Same
    })
}

fn resolved_budget(ctx: &Ctx, q: &WireQuery, cancel: &CancelToken) -> Budget {
    q.budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone())
}

/// Runs `work` on the worker pool, waiting for its result. Refuses with
/// `overloaded` when the queue is full; converts a panicking job into
/// an `internal` error instead of hanging the connection.
fn run_pooled<T: Send + 'static>(
    ctx: &Arc<Ctx>,
    cancel: &CancelToken,
    work: impl FnOnce() -> T + Send + 'static,
) -> Result<T, ProtoError> {
    let (tx, rx) = sync_channel::<thread::Result<T>>(1);
    ctx.pool.submit(Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(work));
        let _ = tx.send(result);
    }))?;
    match rx.recv() {
        Ok(Ok(value)) => {
            if cancel.is_cancelled() {
                Metrics::bump(&ctx.metrics.disconnect_cancels);
            }
            Ok(value)
        }
        Ok(Err(_panic)) => Err(ProtoError {
            code: ErrorCode::Internal,
            message: "request crashed; fault isolated to this request".to_owned(),
        }),
        Err(_) => Err(ProtoError {
            code: ErrorCode::Internal,
            message: "worker dropped the request".to_owned(),
        }),
    }
}

/// The `report` verb: whole-program analysis (the `apt report`
/// workload) inline over `apt_ir` + `apt_paths`.
fn run_report(
    ctx: &Arc<Ctx>,
    program_text: &str,
    proc: Option<&str>,
    budget: &crate::proto::WireBudget,
    cancel: &CancelToken,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let program = apt_ir::parse_program(program_text)
        .map_err(|e| ProtoError::bad(format!("program: {e}")))?;
    let names: Vec<String> = match proc {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(ProtoError::bad("program has no procedures"));
    }
    let wire = budget.clone();
    let default_budget = ctx.config.default_budget.clone();
    let ceiling = ctx.config.ceiling.clone();
    let cancel_for_job = cancel.clone();
    let jobs = ctx.config.workers;
    let procs = run_pooled(ctx, cancel, move || {
        let budget = wire
            .resolve(&default_budget, &ceiling)
            .with_cancel(cancel_for_job);
        let mut config = ProverConfig::new();
        config.budget = budget;
        let mut procs: Vec<Json> = Vec::new();
        let mut total = 0usize;
        for name in &names {
            let mut analysis = match apt_paths::analyze_proc(&program, name) {
                Ok(a) => a,
                Err(e) => {
                    procs.push(obj(vec![
                        ("proc", name.as_str().into()),
                        ("error", e.to_string().as_str().into()),
                    ]));
                    continue;
                }
            };
            analysis.set_prover_config(config.clone());
            let queries = analysis.all_queries();
            total += queries.len();
            let results = analysis.test_batch(&queries, jobs);
            let rows: Vec<Json> = queries
                .iter()
                .zip(results.iter())
                .map(|(q, r)| report_row(q, r))
                .collect();
            procs.push(obj(vec![
                ("proc", name.as_str().into()),
                ("queries", Json::Arr(rows)),
            ]));
        }
        (procs, total)
    })?;
    let (procs, total) = procs;
    Metrics::add(&ctx.metrics.queries_total, total as u64);
    Ok(vec![
        ("procs", Json::Arr(procs)),
        ("total_queries", total.into()),
    ])
}

fn report_row(
    query: &apt_paths::BatchQuery,
    result: &Result<apt_core::TestOutcome, apt_paths::QueryError>,
) -> Json {
    let what = match query {
        apt_paths::BatchQuery::LoopCarried { label, .. } => format!("carried {label}"),
        apt_paths::BatchQuery::Sequential { from, to } => format!("{from} vs {to}"),
    };
    match result {
        Ok(outcome) => {
            let maybe = match outcome.maybe {
                Some(r) => Json::Str(r.code().to_owned()),
                None => Json::Null,
            };
            obj(vec![
                ("query", what.as_str().into()),
                ("answer", outcome.answer.as_str().into()),
                ("reason", format!("{:?}", outcome.reason).as_str().into()),
                ("maybe", maybe),
            ])
        }
        Err(e) => obj(vec![
            ("query", what.as_str().into()),
            ("error", e.to_string().as_str().into()),
        ]),
    }
}
