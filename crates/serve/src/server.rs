//! The daemon: configuration, the worker pool, dispatch, snapshots.
//!
//! ## Threading model
//!
//! One **reactor** thread (the caller of [`Server::run`]) owns every
//! socket: nonblocking listeners and connections are driven by epoll
//! readiness through the per-connection state machines in
//! [`crate::reactor`]. Connections therefore cost a map entry and two
//! buffers, not threads — ten thousand idle clients are ten thousand
//! registered fds and nothing else.
//!
//! Proving happens on a fixed pool of **worker** threads behind a
//! bounded queue. The reactor parses a frame and either answers inline
//! (cheap control verbs: `open_session`, `stats`, …) or submits a job;
//! the worker pushes the finished frame onto a completion queue and
//! rings the reactor's eventfd waker, which flushes it through the
//! connection's write buffer. When the queue is at its high-water mark
//! new work is *refused* with an `overloaded` error frame instead of
//! being queued — under overload the daemon degrades to fast, explicit
//! refusals, never to unbounded memory growth or silent timeouts.
//!
//! A disconnect cancels the connection-wide [`CancelToken`], which
//! aborts any proof currently running for that connection via the
//! prover's cooperative cancellation brake. Cancelled runs publish
//! nothing to the shared caches, so an abandoned query cannot poison a
//! session for later clients.
//!
//! ## Shutdown
//!
//! The `shutdown` verb answers `{"ok":true}`; once that reply is
//! flushed the reactor stops, closing every connection (cancelling
//! their tokens), the pool drains, and [`Server::run`] returns.
//! [`ServerHandle::stop`] does the same through the reactor's wakeup
//! fd — no polling loop, so stopping is immediate.
//!
//! ## Warm-state snapshots
//!
//! With a snapshot directory configured, [`Server::run`] first restores
//! whatever warm state a previous life left behind (per-section, under
//! checksums — see [`crate::snapshot`]), then serves; a dedicated
//! flusher thread blocks on a channel the reactor ticks at the
//! configured interval, and a final write happens on graceful
//! shutdown. Restore can only *add* warmth: any failure on this path
//! degrades to cold state for the affected sections and the daemon
//! serves regardless.
//!
//! ## Read deadlines
//!
//! The reactor's timer wheel enforces each connection's idle/read
//! deadline: a connection that sends nothing — or dribbles a partial
//! frame without ever finishing it (slow-loris) — past the deadline
//! receives a machine-readable `timeout` error frame and is closed, so
//! it cannot pin server state forever.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path as FsPath, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use apt_core::{
    Budget, CancelToken, DepQuery, EngineSelection, Origin, Outcome, Portfolio, PortfolioConfig,
    ProverConfig, ProverStats, TallySink,
};
use apt_paths::{analyze_program, BatchOptions, DepTable, RowOutcome};

use crate::fault::FaultPlan;
use crate::json::{obj, Json};
use crate::metrics::{Metrics, RestoreOutcome};
use crate::poll::{nofile_limit, Waker};
use crate::proto::{
    error_frame, ok_frame, outcome_json, parse_request, portfolio_json, stats_json, ErrorCode,
    ProtoError, Request, WireQuery, PROTO_VERSION, SUPPORTED_VERBS,
};
use crate::reactor::{Listener, Reactor};
use crate::session::SessionRegistry;
use crate::snapshot::{self, AnalyzeSection, SectionOutcome, SessionSection, Snapshot};

/// Complete request lines a connection may queue behind its in-flight
/// request (pipelining depth); past this the reactor stops reading
/// from the socket until the queue drains.
pub(crate) const PIPELINE_DEPTH: usize = 8;
/// Hard cap on one request line, enforced incrementally while the
/// partial frame accumulates; crossing it gets a `bad_request` frame
/// and the connection closed (DoS guard — normal frames are a few KB).
pub(crate) const MAX_LINE: usize = 8 * 1024 * 1024;
/// Imported proofs spot-checked per restored section before the section
/// is trusted (one failure rejects the whole section's import).
const PROOF_VERIFY_SAMPLE: usize = 32;
/// Connection-cap headroom below the fd limit: listeners, the epoll
/// and event fds, snapshot files, stdio.
const FD_SLACK: u64 = 512;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Prover worker threads (the pool that runs queries).
    pub workers: usize,
    /// Queue slots; at `high_water` queued jobs new work is refused.
    pub high_water: usize,
    /// Resident compiled sessions before LRU eviction.
    pub max_sessions: usize,
    /// Concurrent connections admitted; one past this is sent a
    /// best-effort `overloaded` frame and closed. Defaults to the
    /// process fd limit minus headroom, so the daemon refuses cleanly
    /// instead of hitting `EMFILE` mid-accept.
    pub max_connections: usize,
    /// Budget applied when a request carries no overrides.
    pub default_budget: Budget,
    /// Hard ceiling no per-request budget may exceed.
    pub ceiling: Budget,
    /// Directory for warm-state snapshots; `None` disables the tier.
    pub snapshot_dir: Option<PathBuf>,
    /// Background flusher period; `None` means snapshots are written
    /// only on graceful shutdown.
    pub snapshot_interval: Option<Duration>,
    /// Per-connection idle/read deadline; `None` disables it (a peer
    /// may then hold its connection slot indefinitely — test use only).
    pub idle_timeout: Option<Duration>,
    /// Injected faults for the snapshot path (dev/test only).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Default engine portfolio for proving verbs; `None` runs the
    /// axiomatic prover alone. A `prove`/`batch` frame's `"engines"`
    /// field overrides the selection per query either way.
    pub portfolio: Option<PortfolioConfig>,
}

impl ServeConfig {
    /// Defaults: workers = available parallelism, 64-deep queue,
    /// 32 sessions, connections capped just under the fd limit, the
    /// prover's stock budget as both default and ceiling, a 120 s read
    /// deadline, snapshots disabled.
    pub fn new() -> ServeConfig {
        let workers = thread::available_parallelism().map_or(4, usize::from);
        ServeConfig {
            workers,
            high_water: 64,
            max_sessions: 32,
            max_connections: ServeConfig::default_max_connections(),
            default_budget: Budget::new(),
            ceiling: Budget::new(),
            snapshot_dir: None,
            snapshot_interval: None,
            idle_timeout: Some(Duration::from_secs(120)),
            fault_plan: None,
            portfolio: None,
        }
    }

    /// The fd limit minus [`FD_SLACK`], floored at 64: as many
    /// connections as the kernel will let the process hold.
    pub fn default_max_connections() -> usize {
        let limit = nofile_limit().unwrap_or(1024);
        usize::try_from(limit.saturating_sub(FD_SLACK))
            .unwrap_or(usize::MAX)
            .max(64)
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::new()
    }
}

// ---------------------------------------------------------------------------
// Worker pool with bounded-queue admission control.
// ---------------------------------------------------------------------------

/// A unit of pooled work (already wrapped: pushes its own completion).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: std::collections::VecDeque<(Instant, Job)>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    wake: Condvar,
    high_water: usize,
    metrics: Arc<Metrics>,
}

/// Fixed worker pool; `submit` refuses instead of queueing past the
/// high-water mark. Queue wait (submission to pickup) feeds the
/// `queue_wait_us` histogram.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Pool {
    fn new(workers: usize, high_water: usize, metrics: Arc<Metrics>) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                draining: false,
            }),
            wake: Condvar::new(),
            high_water: high_water.max(1),
            metrics,
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || loop {
                    let (queued_at, job) = {
                        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(entry) = state.queue.pop_front() {
                                break entry;
                            }
                            if state.draining {
                                return;
                            }
                            state = shared
                                .wake
                                .wait(state)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    shared.metrics.latency_queue.record(queued_at.elapsed());
                    // A panicking job must not take the worker down.
                    let _ = catch_unwind(AssertUnwindSafe(job));
                })
            })
            .collect();
        Pool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Queue depth right now (for `stats`).
    pub(crate) fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Admits `job` or refuses with `overloaded`.
    pub(crate) fn submit(&self, job: Job) -> Result<(), ProtoError> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if state.draining {
            return Err(ProtoError {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".to_owned(),
                verb: None,
            });
        }
        if state.queue.len() >= self.shared.high_water {
            return Err(ProtoError {
                code: ErrorCode::Overloaded,
                message: format!(
                    "work queue at high-water mark ({}); retry later",
                    self.shared.high_water
                ),
                verb: None,
            });
        }
        state.queue.push_back((Instant::now(), job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Runs queued jobs to completion, then joins the workers.
    /// Idempotent: a second call finds no handles left to join.
    fn drain(&self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.draining = true;
        }
        self.shared.wake.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// Ticks for the snapshot flusher thread, sent by the reactor.
pub(crate) enum FlushMsg {
    /// Write a snapshot now (the interval elapsed).
    Flush,
    /// The server is stopping; exit after the current write.
    Stop,
}

/// Shared state the reactor, the workers, and the stop handle all see.
pub(crate) struct Ctx {
    pub(crate) registry: SessionRegistry,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) pool: Pool,
    pub(crate) config: ServeConfig,
    pub(crate) shutdown: AtomicBool,
    /// The reactor's wakeup fd, set when the reactor starts; lets
    /// [`ServerHandle::stop`] interrupt a blocked `epoll_wait`.
    waker: Mutex<Option<Waker>>,
    /// Persisted whole-program dependence tables by name (the `analyze`
    /// verb's incremental state; snapshotted beside the sessions).
    pub(crate) tables: Mutex<HashMap<String, DepTable>>,
    /// Server-wide per-engine race tallies (the `stats` verb's
    /// `portfolio` block); every portfolio any verb builds records here.
    pub(crate) tallies: TallySink,
}

impl Ctx {
    pub(crate) fn set_waker(&self, waker: Waker) {
        *self.waker.lock().unwrap_or_else(PoisonError::into_inner) = Some(waker);
    }

    pub(crate) fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &*self.waker.lock().unwrap_or_else(PoisonError::into_inner) {
            waker.wake();
        }
    }
}

/// A handle for stopping a running server from another thread (tests,
/// signal handlers).
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// Initiates the same graceful shutdown as the `shutdown` verb.
    /// Wakes the reactor immediately — no polling interval to ride out.
    pub fn stop(&self) {
        self.ctx.trigger_shutdown();
    }
}

/// The resident dependence-query daemon. Build with [`Server::new`],
/// bind one or more listeners, then [`Server::run`].
pub struct Server {
    ctx: Arc<Ctx>,
    listeners: Vec<Listener>,
}

impl Server {
    /// A server with no listeners yet.
    pub fn new(config: ServeConfig) -> Server {
        let metrics = Arc::new(Metrics::new());
        let ctx = Arc::new(Ctx {
            registry: SessionRegistry::new(config.max_sessions),
            metrics: Arc::clone(&metrics),
            pool: Pool::new(config.workers, config.high_water, metrics),
            config,
            shutdown: AtomicBool::new(false),
            waker: Mutex::new(None),
            tables: Mutex::new(HashMap::new()),
            tallies: TallySink::new(),
        });
        Server {
            ctx,
            listeners: Vec::new(),
        }
    }

    /// Binds a TCP listener; returns the actual address (use port 0 to
    /// let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.listeners.push(Listener::Tcp(listener));
        Ok(bound)
    }

    /// Binds a Unix-domain socket listener, replacing a stale socket
    /// file if one is present.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_unix(&mut self, path: &FsPath) -> io::Result<()> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        self.listeners
            .push(Listener::Unix(listener, path.to_owned()));
        Ok(())
    }

    /// A stop handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::stop`])
    /// arrives, then drains and returns. The calling thread *is* the
    /// reactor; worker count never varies with connection count.
    ///
    /// # Errors
    ///
    /// Returns an error when no listener was bound, or when the epoll
    /// instance cannot be created.
    pub fn run(self) -> io::Result<()> {
        if self.listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no listener bound (need --addr and/or --socket)",
            ));
        }
        // Warm up from a previous life before accepting the first
        // connection, so early clients land on restored caches.
        restore_from_snapshot(&self.ctx);
        // The flusher blocks on a channel the reactor ticks — no
        // sleep-polling, and `Stop` (or the reactor dropping its
        // sender) ends it immediately.
        let flush_interval = match (
            &self.ctx.config.snapshot_dir,
            self.ctx.config.snapshot_interval,
        ) {
            (Some(_), Some(interval)) if !interval.is_zero() => Some(interval),
            _ => None,
        };
        let (flush_tx, flusher) = match flush_interval {
            Some(_) => {
                let (tx, rx) = channel::<FlushMsg>();
                let ctx = Arc::clone(&self.ctx);
                let handle = thread::spawn(move || loop {
                    match rx.recv() {
                        Ok(FlushMsg::Flush) => {
                            if let Err(e) = write_snapshot(&ctx) {
                                eprintln!("apt-serve: periodic snapshot failed: {e}");
                            }
                        }
                        Ok(FlushMsg::Stop) | Err(_) => return,
                    }
                });
                (Some(tx), Some(handle))
            }
            None => (None, None),
        };
        let socket_files: Vec<PathBuf> = self
            .listeners
            .iter()
            .filter_map(|l| match l {
                Listener::Unix(_, path) => Some(path.clone()),
                Listener::Tcp(_) => None,
            })
            .collect();
        let mut reactor = Reactor::new(
            Arc::clone(&self.ctx),
            self.listeners,
            flush_tx.clone(),
            flush_interval,
        )?;
        reactor.run();
        drop(reactor);
        // In-flight and queued jobs run to completion (their cancelled
        // tokens make them finish fast), then the workers join.
        self.ctx.pool.drain();
        if let Some(tx) = &flush_tx {
            let _ = tx.send(FlushMsg::Stop);
        }
        if let Some(handle) = flusher {
            let _ = handle.join();
        }
        // Graceful shutdown persists the warm state one last time. A
        // failure here (disk full, injected fault) costs the next
        // life's warmth, nothing else.
        if self.ctx.config.snapshot_dir.is_some() {
            if let Err(e) = write_snapshot(&self.ctx) {
                eprintln!("apt-serve: final snapshot failed: {e}");
            }
        }
        for path in socket_files {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Snapshot restore / flush.
// ---------------------------------------------------------------------------

/// Exports every resident session and writes the snapshot atomically.
/// Shared by the flusher thread and the graceful-shutdown path.
fn write_snapshot(ctx: &Ctx) -> io::Result<u64> {
    let Some(dir) = &ctx.config.snapshot_dir else {
        return Ok(0);
    };
    let sections: Vec<SessionSection> = ctx
        .registry
        .dump_sessions()
        .into_iter()
        .map(|dump| SessionSection {
            name: dump.session,
            axioms_text: dump.source,
            export: dump.engine.export_cache(),
        })
        .collect();
    let analyses: Vec<AnalyzeSection> = {
        let tables = ctx.tables.lock().unwrap_or_else(PoisonError::into_inner);
        let mut analyses: Vec<AnalyzeSection> = tables
            .iter()
            .map(|(name, table)| AnalyzeSection {
                name: name.clone(),
                table: table.clone(),
            })
            .collect();
        // Deterministic section order keeps repeat snapshots comparable.
        analyses.sort_by(|a, b| a.name.cmp(&b.name));
        analyses
    };
    let snap = Snapshot {
        created_unix_ms: snapshot::unix_ms_now(),
        sections,
        analyses,
    };
    match snapshot::write_atomic(dir, &snap, ctx.config.fault_plan.as_deref()) {
        Ok((_, bytes)) => {
            ctx.metrics.update_snapshot_status(|s| {
                s.writes_total += 1;
                s.last_write = Some(Instant::now());
                s.last_write_bytes = bytes;
            });
            Ok(bytes)
        }
        Err(e) => {
            ctx.metrics.update_snapshot_status(|s| s.write_errors += 1);
            Err(e)
        }
    }
}

/// Startup restore. Every failure mode on this path — missing file,
/// unreadable file, bad header, corrupt sections, unparsable axioms,
/// proofs that do not check — degrades to cold state for the affected
/// scope and the server starts anyway.
fn restore_from_snapshot(ctx: &Ctx) {
    let Some(dir) = &ctx.config.snapshot_dir else {
        return;
    };
    ctx.metrics.update_snapshot_status(|s| s.enabled = true);
    let faults = ctx.config.fault_plan.as_deref();
    let bytes = match snapshot::read_snapshot_bytes(dir, faults) {
        Ok(Some(bytes)) => bytes,
        Ok(None) => return,
        Err(e) => {
            eprintln!("apt-serve: snapshot read failed ({e}); starting cold");
            return;
        }
    };
    let restored_bytes = bytes.len() as u64;
    let outcomes = match snapshot::decode(&bytes) {
        Ok((_, outcomes)) => outcomes,
        Err(e) => {
            eprintln!("apt-serve: snapshot unusable ({e}); starting cold");
            return;
        }
    };
    let (mut warm, mut corrupt, mut goals, mut subsets) = (0usize, 0usize, 0usize, 0usize);
    let mut tables = 0usize;
    for outcome in outcomes {
        match outcome {
            SectionOutcome::Restored(section) => match restore_section(ctx, &section) {
                Ok(stats) => {
                    warm += 1;
                    goals += stats.goals;
                    subsets += stats.subsets;
                }
                Err(reason) => {
                    corrupt += 1;
                    eprintln!(
                        "apt-serve: snapshot section [{}] rejected: {reason}",
                        section.name
                    );
                }
            },
            SectionOutcome::Analysis(analysis) => {
                // Table entries are *candidates*: the `analyze` verb
                // re-validates hashes and spot-checks stored proofs
                // before any verdict replays, so restoring here cannot
                // launder a forged table into answers.
                tables += 1;
                warm += 1;
                ctx.tables
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(analysis.name, analysis.table);
            }
            SectionOutcome::Corrupt { name, reason } => {
                corrupt += 1;
                eprintln!("apt-serve: snapshot section [{name}] corrupt: {reason}");
            }
        }
    }
    let outcome = match (warm, corrupt) {
        (0, _) => RestoreOutcome::Cold,
        (_, 0) => RestoreOutcome::Warm,
        _ => RestoreOutcome::Partial,
    };
    ctx.metrics.update_snapshot_status(|s| {
        s.last_restore = outcome;
        s.restored_bytes = restored_bytes;
        s.restored_sessions = warm - tables;
        s.corrupt_sections = corrupt;
        s.restored_goals = goals;
        s.restored_subsets = subsets;
        s.restored_tables = tables;
    });
}

/// Recompiles one section's axiom set into a fresh session and imports
/// its cache image (spot-checking proofs). Session ids do not survive a
/// restart — reconnecting clients re-`open_session` and the registry's
/// structural dedupe lands them on the restored warm engine.
fn restore_section(ctx: &Ctx, section: &SessionSection) -> Result<apt_core::ImportStats, String> {
    let opened = ctx
        .registry
        .open(&section.axioms_text)
        .map_err(|e| format!("axioms do not parse: {}", e.message))?;
    let engine = ctx.registry.get(&opened.session).map_err(|e| e.message)?;
    engine
        .import_cache(&section.export, PROOF_VERIFY_SAMPLE)
        .map_err(|e| {
            // A section whose proofs fail verification is corrupt; drop
            // the session it opened (unless an earlier section already
            // owned it) rather than serve from a suspect image.
            if !opened.deduped {
                ctx.registry.close(&opened.session);
            }
            format!("proof verification failed: {e}")
        })
}

// ---------------------------------------------------------------------------
// Request dispatch.
// ---------------------------------------------------------------------------

/// What one request line turns into: an immediate reply the reactor
/// writes itself, or a job for the worker pool whose finished frame
/// comes back through the completion queue.
pub(crate) enum LineOutcome {
    /// Answer now, on the reactor thread.
    Reply {
        /// The response frame.
        frame: Json,
        /// The connection asked the whole server to shut down; flush
        /// this reply, then stop.
        shutdown: bool,
    },
    /// Run on the pool; `work` renders the full response frame.
    Job {
        /// Request id, for the `internal` frame if the job panics or
        /// the refusal frame if admission declines it.
        id: Option<Json>,
        /// The deferred work, producing the response frame.
        work: Box<dyn FnOnce() -> Json + Send + 'static>,
    },
}

impl LineOutcome {
    fn reply(frame: Json) -> LineOutcome {
        LineOutcome::Reply {
            frame,
            shutdown: false,
        }
    }
}

/// Handles one request line: parse, admission, dispatch. Cheap control
/// verbs answer inline; proving verbs become pool jobs. Never blocks.
pub(crate) fn handle_line(ctx: &Arc<Ctx>, line: &str, cancel: &CancelToken) -> LineOutcome {
    let (id, request) = match parse_request(line) {
        Ok(parsed) => parsed,
        Err(e) => return LineOutcome::reply(error_frame(None, &e)),
    };
    // Probes answer even while draining: liveness must outlive admission.
    if ctx.shutdown.load(Ordering::SeqCst)
        && !matches!(
            request,
            Request::Shutdown | Request::Health | Request::Ready
        )
    {
        let e = ProtoError {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".to_owned(),
            verb: None,
        };
        return LineOutcome::reply(error_frame(id.as_ref(), &e));
    }
    match request {
        Request::Prove { session, query } => {
            let engine = match ctx.registry.get(&session) {
                Ok(engine) => engine,
                Err(e) => return LineOutcome::reply(error_frame(id.as_ref(), &e)),
            };
            let budget = resolved_budget(ctx, &query, cancel);
            let dep = wire_to_query(&query).with_budget(budget);
            let want_proof = query.want_proof;
            let portfolio = effective_portfolio(ctx, query.engines);
            let ctx = Arc::clone(ctx);
            let frame_id = id.clone();
            LineOutcome::Job {
                id,
                work: Box::new(move || {
                    let outcome = match portfolio {
                        Some(cfg) => Portfolio::new((*engine).clone(), cfg)
                            .with_tallies(&ctx.tallies)
                            .run(&dep),
                        None => engine.run(&dep),
                    };
                    Metrics::bump(&ctx.metrics.queries_total);
                    ok_frame(
                        frame_id.as_ref(),
                        vec![("result", outcome_json(&outcome, want_proof))],
                    )
                }),
            }
        }
        Request::Batch {
            session,
            queries,
            jobs,
            engines,
        } => {
            let engine = match ctx.registry.get(&session) {
                Ok(engine) => engine,
                Err(e) => return LineOutcome::reply(error_frame(id.as_ref(), &e)),
            };
            let jobs = jobs
                .unwrap_or(ctx.config.workers)
                .clamp(1, ctx.config.workers.max(1));
            let deps: Vec<DepQuery> = queries
                .iter()
                .map(|q| wire_to_query(q).with_budget(resolved_budget(ctx, q, cancel)))
                .collect();
            let want: Vec<bool> = queries.iter().map(|q| q.want_proof).collect();
            // A query-level `engines` overrides the batch-level one,
            // which overrides the server default.
            let batch_portfolio = effective_portfolio(ctx, engines);
            let query_portfolios: Vec<Option<PortfolioConfig>> = queries
                .iter()
                .map(|q| {
                    q.engines
                        .and_then(|sel| effective_portfolio(ctx, Some(sel)))
                })
                .collect();
            let ctx = Arc::clone(ctx);
            let frame_id = id.clone();
            LineOutcome::Job {
                id,
                work: Box::new(move || {
                    // The staged batch racer covers the common case; any
                    // per-query selection splits those queries out into
                    // individual races under their own rosters.
                    let outcomes: Vec<Outcome> = if query_portfolios.iter().all(Option::is_none) {
                        match batch_portfolio {
                            Some(cfg) => Portfolio::new((*engine).clone(), cfg)
                                .with_tallies(&ctx.tallies)
                                .run_batch(&deps, jobs),
                            None => engine.run_batch(&deps, jobs),
                        }
                    } else {
                        deps.iter()
                            .zip(query_portfolios.iter())
                            .map(
                                |(dep, qp)| match qp.clone().or_else(|| batch_portfolio.clone()) {
                                    Some(cfg) => Portfolio::new((*engine).clone(), cfg)
                                        .with_tallies(&ctx.tallies)
                                        .run(dep),
                                    None => engine.run(dep),
                                },
                            )
                            .collect()
                    };
                    Metrics::add(&ctx.metrics.queries_total, outcomes.len() as u64);
                    let mut merged = ProverStats::default();
                    let results: Vec<Json> = outcomes
                        .iter()
                        .zip(want.iter())
                        .map(|(o, &w)| {
                            merged.merge(&o.stats);
                            outcome_json(o, w)
                        })
                        .collect();
                    ok_frame(
                        frame_id.as_ref(),
                        vec![
                            ("results", Json::Arr(results)),
                            ("stats", stats_json(&merged)),
                        ],
                    )
                }),
            }
        }
        Request::Report {
            program,
            proc,
            budget,
            engines,
        } => {
            let ctx = Arc::clone(ctx);
            let cancel = cancel.clone();
            let frame_id = id.clone();
            LineOutcome::Job {
                id,
                work: Box::new(move || {
                    match run_report(&ctx, &program, proc.as_deref(), &budget, engines, &cancel) {
                        Ok(pairs) => ok_frame(frame_id.as_ref(), pairs),
                        Err(e) => error_frame(frame_id.as_ref(), &e),
                    }
                }),
            }
        }
        Request::Analyze {
            program,
            name,
            jobs,
            changed_only,
            budget,
            engines,
        } => {
            let ctx = Arc::clone(ctx);
            let cancel = cancel.clone();
            let frame_id = id.clone();
            LineOutcome::Job {
                id,
                work: Box::new(move || {
                    match run_analyze(
                        &ctx,
                        &program,
                        &name,
                        jobs,
                        changed_only,
                        &budget,
                        engines,
                        &cancel,
                    ) {
                        Ok(pairs) => ok_frame(frame_id.as_ref(), pairs),
                        Err(e) => error_frame(frame_id.as_ref(), &e),
                    }
                }),
            }
        }
        request => {
            let frame = match dispatch_inline(ctx, id.as_ref(), request) {
                Ok((frame, shutdown)) => return LineOutcome::Reply { frame, shutdown },
                Err(e) => error_frame(id.as_ref(), &e),
            };
            LineOutcome::reply(frame)
        }
    }
}

/// The cheap control verbs, answered on the reactor thread.
fn dispatch_inline(
    ctx: &Arc<Ctx>,
    id: Option<&Json>,
    request: Request,
) -> Result<(Json, bool), ProtoError> {
    match request {
        Request::Hello => {
            let verbs: Vec<Json> = SUPPORTED_VERBS
                .iter()
                .map(|&v| Json::Str(v.to_owned()))
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("proto_version", PROTO_VERSION.into()),
                        ("verbs", Json::Arr(verbs)),
                    ],
                ),
                false,
            ))
        }
        Request::OpenSession { axioms } => {
            let opened = ctx.registry.open(&axioms)?;
            let evicted = match opened.evicted {
                Some(s) => Json::Str(s),
                None => Json::Null,
            };
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("session", opened.session.as_str().into()),
                        ("deduped", opened.deduped.into()),
                        ("axioms", opened.axioms.into()),
                        ("evicted", evicted),
                    ],
                ),
                false,
            ))
        }
        Request::CloseSession { session } => {
            let closed = ctx.registry.close(&session);
            Ok((ok_frame(id, vec![("closed", closed.into())]), false))
        }
        Request::Invalidate { name, proc } => {
            let mut tables = ctx.tables.lock().unwrap_or_else(PoisonError::into_inner);
            let (dropped_procs, dropped_verdicts) = match proc.as_deref() {
                Some(proc_name) => match tables.get_mut(&name) {
                    Some(table) => {
                        let had = table.entry(proc_name).is_some();
                        let verdicts = table.invalidate_proc(proc_name);
                        (usize::from(had), verdicts)
                    }
                    None => (0, 0),
                },
                None => match tables.remove(&name) {
                    Some(table) => (table.procs.len(), table.total_verdicts()),
                    None => (0, 0),
                },
            };
            drop(tables);
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("table", name.as_str().into()),
                        ("dropped_procs", dropped_procs.into()),
                        ("dropped_verdicts", dropped_verdicts.into()),
                    ],
                ),
                false,
            ))
        }
        Request::Stats => {
            let sessions: Vec<Json> = ctx
                .registry
                .snapshot()
                .into_iter()
                .map(|info| {
                    let cache =
                        ctx.registry
                            .peek_cache_stats(&info.session)
                            .map_or(Json::Null, |c| {
                                obj(vec![
                                    ("proved_goals", c.proved_goals.into()),
                                    ("failed_goals", c.failed_goals.into()),
                                    ("subset_results", c.subset_results.into()),
                                    ("dfas", c.dfas.into()),
                                    ("min_dfas", c.min_dfas.into()),
                                ])
                            });
                    obj(vec![
                        ("session", info.session.as_str().into()),
                        ("axioms", info.axioms.into()),
                        ("opens", info.opens.into()),
                        ("uses", info.uses.into()),
                        ("cache", cache),
                    ])
                })
                .collect();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("proto_version", PROTO_VERSION.into()),
                        ("server", ctx.metrics.to_json()),
                        ("queue_depth", ctx.pool.depth().into()),
                        ("workers", ctx.config.workers.into()),
                        ("max_connections", ctx.config.max_connections.into()),
                        ("portfolio", portfolio_json(&ctx.tallies.stats())),
                        ("sessions", Json::Arr(sessions)),
                    ],
                ),
                false,
            ))
        }
        Request::Health => Ok((ok_frame(id, vec![("healthy", true.into())]), false)),
        Request::Ready => {
            let draining = ctx.shutdown.load(Ordering::SeqCst);
            let status = ctx.metrics.snapshot_status();
            Ok((
                ok_frame(
                    id,
                    vec![
                        ("ready", (!draining).into()),
                        ("draining", draining.into()),
                        ("proto_version", PROTO_VERSION.into()),
                        ("restore", status.last_restore.as_str().into()),
                        ("sessions", ctx.registry.len().into()),
                    ],
                ),
                false,
            ))
        }
        Request::Shutdown => Ok((ok_frame(id, vec![("stopping", true.into())]), true)),
        // Proving verbs are routed to the pool by `handle_line`.
        Request::Prove { .. }
        | Request::Batch { .. }
        | Request::Report { .. }
        | Request::Analyze { .. } => Err(ProtoError {
            code: ErrorCode::Internal,
            message: "proving verb reached inline dispatch".to_owned(),
            verb: None,
        }),
    }
}

fn wire_to_query(q: &WireQuery) -> DepQuery {
    let dep = if q.equal {
        DepQuery::equal(&q.a, &q.b)
    } else {
        DepQuery::disjoint(&q.a, &q.b)
    };
    dep.origin(if q.distinct {
        Origin::Distinct
    } else {
        Origin::Same
    })
}

fn resolved_budget(ctx: &Ctx, q: &WireQuery, cancel: &CancelToken) -> Budget {
    q.budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone())
}

/// The portfolio a request actually races under. A frame's `engines`
/// selection overrides the roster of the server's default portfolio
/// (keeping its other tuning); a selection with no server default runs
/// under stock portfolio tuning; neither means the session's axiomatic
/// engine runs alone, exactly as before portfolios existed.
fn effective_portfolio(ctx: &Ctx, engines: Option<EngineSelection>) -> Option<PortfolioConfig> {
    match (&ctx.config.portfolio, engines) {
        (Some(cfg), Some(sel)) => Some(PortfolioConfig {
            engines: sel,
            ..cfg.clone()
        }),
        (Some(cfg), None) => Some(cfg.clone()),
        (None, Some(sel)) => Some(PortfolioConfig {
            engines: sel,
            ..PortfolioConfig::default()
        }),
        (None, None) => None,
    }
}

/// The `report` verb: whole-program analysis (the `apt report`
/// workload) over `apt_ir` + `apt_paths`. Runs entirely on a worker.
fn run_report(
    ctx: &Arc<Ctx>,
    program_text: &str,
    proc: Option<&str>,
    budget: &crate::proto::WireBudget,
    engines: Option<EngineSelection>,
    cancel: &CancelToken,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let program = apt_ir::parse_program(program_text)
        .map_err(|e| ProtoError::bad(format!("program: {e}")))?;
    let names: Vec<String> = match proc {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(ProtoError::bad("program has no procedures"));
    }
    let budget = budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone());
    let mut config = ProverConfig::new();
    config.budget = budget;
    let portfolio = effective_portfolio(ctx, engines);
    let jobs = ctx.config.workers;
    let mut procs: Vec<Json> = Vec::new();
    let mut total = 0usize;
    for name in &names {
        let mut analysis = match apt_paths::analyze_proc(&program, name) {
            Ok(a) => a,
            Err(e) => {
                procs.push(obj(vec![
                    ("proc", name.as_str().into()),
                    ("error", e.to_string().as_str().into()),
                ]));
                continue;
            }
        };
        analysis.set_prover_config(config.clone());
        if let Some(cfg) = &portfolio {
            analysis.set_portfolio_config(cfg.clone());
            analysis.set_portfolio_tallies(ctx.tallies.clone());
        }
        let queries = analysis.all_queries();
        total += queries.len();
        let report = analysis.run_batch(&queries, &BatchOptions::new().with_jobs(jobs));
        let rows: Vec<Json> = queries
            .iter()
            .zip(report.results.iter())
            .map(|(q, r)| report_row(q, r))
            .collect();
        procs.push(obj(vec![
            ("proc", name.as_str().into()),
            ("queries", Json::Arr(rows)),
        ]));
    }
    Metrics::add(&ctx.metrics.queries_total, total as u64);
    Ok(vec![
        ("procs", Json::Arr(procs)),
        ("total_queries", total.into()),
    ])
}

/// The `analyze` verb: whole-program incremental dependence analysis.
/// The persisted table named `name` (if any) serves as the baseline;
/// the refreshed table is stored back under the same name, so repeated
/// `analyze` calls after small edits re-prove only what changed. Runs
/// entirely on a worker.
#[allow(clippy::too_many_arguments)]
fn run_analyze(
    ctx: &Arc<Ctx>,
    program_text: &str,
    name: &str,
    jobs: Option<usize>,
    changed_only: bool,
    budget: &crate::proto::WireBudget,
    engines: Option<EngineSelection>,
    cancel: &CancelToken,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let program = apt_ir::parse_program(program_text)
        .map_err(|e| ProtoError::bad(format!("program: {e}")))?;
    if program.procs.is_empty() {
        return Err(ProtoError::bad("program has no procedures"));
    }
    let jobs = jobs
        .unwrap_or(ctx.config.workers)
        .clamp(1, ctx.config.workers.max(1));
    let resolved = budget
        .resolve(&ctx.config.default_budget, &ctx.config.ceiling)
        .with_cancel(cancel.clone());
    let baseline = ctx
        .tables
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(name)
        .cloned();
    let mut config = ProverConfig::new();
    config.budget = resolved;
    let mut analysis = analyze_program(&program).with_prover_config(config);
    if let Some(cfg) = effective_portfolio(ctx, engines) {
        analysis.set_portfolio_config(cfg);
        analysis.set_portfolio_tallies(&ctx.tallies);
    }
    let report = analysis.run(baseline.as_ref(), &BatchOptions::new().with_jobs(jobs));
    Metrics::add(&ctx.metrics.queries_total, report.reproved() as u64);
    Metrics::add(&ctx.metrics.analyze_replayed, report.replayed() as u64);
    Metrics::add(&ctx.metrics.analyze_reproved, report.reproved() as u64);
    ctx.tables
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(name.to_owned(), report.table.clone());
    let procs: Vec<Json> = report
        .procs
        .iter()
        // `changed_only` trims the *display* to procedures that did
        // prover work; the totals below still cover every procedure.
        .filter(|p| !changed_only || p.reproved > 0)
        .map(|p| {
            let rows: Vec<Json> = p
                .rows
                .iter()
                .map(|row| {
                    let mut pairs = vec![
                        ("query", row.key.as_str().into()),
                        ("answer", row.outcome.answer().as_str().into()),
                        ("replayed", row.outcome.is_replayed().into()),
                    ];
                    if let RowOutcome::Error(e) = &row.outcome {
                        pairs.push(("error", e.to_string().as_str().into()));
                    }
                    obj(pairs)
                })
                .collect();
            obj(vec![
                ("proc", p.name.as_str().into()),
                ("reused", p.reused.into()),
                ("replayed", p.replayed.into()),
                ("reproved", p.reproved.into()),
                ("queries", Json::Arr(rows)),
            ])
        })
        .collect();
    Ok(vec![
        ("table", name.into()),
        ("procs", Json::Arr(procs)),
        ("total_queries", report.total_queries().into()),
        ("replayed", report.replayed().into()),
        ("reproved", report.reproved().into()),
        ("procs_reused", report.procs_reused().into()),
        ("any_maybe", report.any_maybe().into()),
    ])
}

fn report_row(
    query: &apt_paths::BatchQuery,
    result: &Result<apt_core::TestOutcome, apt_paths::QueryError>,
) -> Json {
    let what = match query {
        apt_paths::BatchQuery::LoopCarried { label, .. } => format!("carried {label}"),
        apt_paths::BatchQuery::Sequential { from, to } => format!("{from} vs {to}"),
    };
    match result {
        Ok(outcome) => {
            let maybe = match outcome.maybe {
                Some(r) => Json::Str(r.code().to_owned()),
                None => Json::Null,
            };
            obj(vec![
                ("query", what.as_str().into()),
                ("answer", outcome.answer.as_str().into()),
                ("reason", format!("{:?}", outcome.reason).as_str().into()),
                ("maybe", maybe),
            ])
        }
        Err(e) => obj(vec![
            ("query", what.as_str().into()),
            ("error", e.to_string().as_str().into()),
        ]),
    }
}
