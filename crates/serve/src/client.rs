//! A small synchronous client for the daemon's wire protocol.
//!
//! Used by `apt client`, the loopback test suite, and the
//! `serve_throughput` bench. One [`Client`] owns one connection and
//! does strict request/response turns; open several clients for
//! concurrency.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path as FsPath;

use crate::json::{obj, parse, Json};

/// A connected protocol client.
pub struct Client {
    writer: Box<dyn Write + Send>,
    reader: BufReader<Box<dyn io::Read + Send>>,
    next_id: u64,
}

/// A client-side failure: transport trouble, unparsable response, or a
/// server error frame.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's line did not parse as JSON.
    BadResponse(String),
    /// The server answered `ok:false`; carries `(code, message)`.
    Server(String, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
            ClientError::Server(code, m) => write!(f, "server error [{code}]: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Frames are tiny; without this, Nagle + delayed ACK costs
        // ~40ms per round-trip.
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            writer: Box::new(stream),
            reader: BufReader::new(Box::new(reader)),
            next_id: 0,
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &FsPath) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            writer: Box::new(stream),
            reader: BufReader::new(Box::new(reader)),
            next_id: 0,
        })
    }

    /// Sends one raw frame (already-rendered JSON text is accepted too
    /// via [`Client::roundtrip_raw`]) and reads one response frame.
    /// Protocol-level errors (`ok:false`) become [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn roundtrip(&mut self, mut frame: Json) -> Result<Json, ClientError> {
        if let Json::Obj(pairs) = &mut frame {
            if !pairs.iter().any(|(k, _)| k == "id") {
                self.next_id += 1;
                pairs.push(("id".to_owned(), Json::Num(self.next_id as f64)));
            }
        }
        self.roundtrip_raw(&frame.render())
    }

    /// Sends one pre-rendered request line and reads one response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn roundtrip_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let frame =
            parse(response.trim_end()).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        if frame.get("ok").and_then(Json::as_bool) == Some(false) {
            let code = frame
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned();
            let message = frame
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            return Err(ClientError::Server(code, message));
        }
        Ok(frame)
    }

    /// `open_session` for `axioms` text; returns the session id.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn open_session(&mut self, axioms: &str) -> Result<String, ClientError> {
        let frame = self.roundtrip(obj(vec![
            ("verb", "open_session".into()),
            ("axioms", axioms.into()),
        ]))?;
        frame
            .get("session")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::BadResponse("open_session reply lacks session".to_owned()))
    }

    /// A disjointness `prove` with default budget; returns the full
    /// `result` object.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn prove_disjoint(
        &mut self,
        session: &str,
        a: &str,
        b: &str,
        distinct_origin: bool,
    ) -> Result<Json, ClientError> {
        let origin = if distinct_origin { "distinct" } else { "same" };
        let frame = self.roundtrip(obj(vec![
            ("verb", "prove".into()),
            ("session", session.into()),
            ("a", a.into()),
            ("b", b.into()),
            ("origin", origin.into()),
        ]))?;
        frame
            .get("result")
            .cloned()
            .ok_or_else(|| ClientError::BadResponse("prove reply lacks result".to_owned()))
    }

    /// `shutdown` — asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(obj(vec![("verb", "shutdown".into())]))?;
        Ok(())
    }
}
