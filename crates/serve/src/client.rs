//! A small synchronous client for the daemon's wire protocol.
//!
//! Used by `apt client`, the loopback test suite, and the
//! `serve_throughput` bench. One [`Client`] owns one connection and
//! does strict request/response turns; open several clients for
//! concurrency.
//!
//! With a [`RetryPolicy`] attached, transport failures on *idempotent*
//! verbs (`hello`, `open_session`, `prove`, `batch`, `report`,
//! `analyze`, `invalidate`, `stats`, `health`, `ready`) reconnect and
//! retry with jittered exponential backoff — a daemon restart becomes a pause, not an error, and the
//! registry's structural dedupe lands re-opened sessions back on the
//! (possibly snapshot-restored) warm engine. Non-idempotent verbs
//! (`close_session`, `shutdown`) are never replayed. When every
//! attempt fails, the distinct [`ClientError::RetriesExhausted`] says
//! so — callers can tell "the server is gone" from a single hiccup.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path as FsPath, PathBuf};
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json::{obj, parse, Json};

/// Where a client connects; kept so reconnection can re-dial.
#[derive(Debug, Clone)]
enum Endpoint {
    Tcp(String),
    Unix(PathBuf),
}

/// Reconnect-and-retry tuning for idempotent verbs.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Reconnect attempts after the initial failure.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Defaults: 5 attempts, 25 ms base, 1 s cap — a daemon restart
    /// (sub-second) is ridden out, a dead one fails in ~2 s.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }

    /// The sleep before retry number `attempt` (0-based): exponential,
    /// capped, with multiplicative jitter in [0.5, 1.0) so a fleet of
    /// clients does not reconnect in lockstep.
    fn delay(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        // xorshift64: no external RNG crates, and quality hardly
        // matters — this only de-synchronizes reconnect storms.
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let unit = (*rng >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + 0.5 * unit)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new()
    }
}

/// Whether a verb can safely be replayed after a transport failure
/// (the failed attempt may or may not have been processed).
fn is_idempotent(verb: &str) -> bool {
    // `analyze` converges (same program + table → same verdicts and
    // final table) and `invalidate` is a no-op the second time, so both
    // replay safely after a transport failure.
    matches!(
        verb,
        "hello"
            | "open_session"
            | "prove"
            | "batch"
            | "report"
            | "analyze"
            | "invalidate"
            | "stats"
            | "health"
            | "ready"
    )
}

/// A connected protocol client.
pub struct Client {
    endpoint: Endpoint,
    writer: Box<dyn Write + Send>,
    reader: BufReader<Box<dyn io::Read + Send>>,
    next_id: u64,
    retry: Option<RetryPolicy>,
    rng: u64,
}

/// A client-side failure: transport trouble, unparsable response, or a
/// server error frame.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's line did not parse as JSON.
    BadResponse(String),
    /// The server answered `ok:false`; carries `(code, message)`.
    Server(String, String),
    /// Every reconnect attempt of the retry policy failed; carries the
    /// attempt count and the last transport error.
    RetriesExhausted {
        /// Reconnect attempts made (beyond the initial failure).
        attempts: u32,
        /// The transport error of the final attempt.
        last: io::Error,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
            ClientError::Server(code, m) => write!(f, "server error [{code}]: {m}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} reconnect attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

type Transport = (Box<dyn Write + Send>, BufReader<Box<dyn io::Read + Send>>);

fn dial(endpoint: &Endpoint) -> io::Result<Transport> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            // Frames are tiny; without this, Nagle + delayed ACK costs
            // ~40ms per round-trip.
            stream.set_nodelay(true)?;
            let reader = stream.try_clone()?;
            Ok((
                Box::new(stream),
                BufReader::new(Box::new(reader) as Box<dyn io::Read + Send>),
            ))
        }
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            let reader = stream.try_clone()?;
            Ok((
                Box::new(stream),
                BufReader::new(Box::new(reader) as Box<dyn io::Read + Send>),
            ))
        }
    }
}

fn jitter_seed() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::from(d.subsec_nanos()) ^ d.as_secs().rotate_left(32))
        .unwrap_or(0x9e37_79b9_7f4a_7c15)
        | 1
}

impl Client {
    fn connect(endpoint: Endpoint) -> Result<Client, ClientError> {
        let (writer, reader) = dial(&endpoint)?;
        Ok(Client {
            endpoint,
            writer,
            reader,
            next_id: 0,
            retry: None,
            rng: jitter_seed(),
        })
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::connect(Endpoint::Tcp(addr.to_owned()))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &FsPath) -> Result<Client, ClientError> {
        Client::connect(Endpoint::Unix(path.to_owned()))
    }

    /// Enables reconnect-with-backoff for idempotent verbs.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Client {
        self.retry = Some(policy);
        self
    }

    /// Drops the current socket and dials the endpoint again.
    fn reconnect(&mut self) -> io::Result<()> {
        let (writer, reader) = dial(&self.endpoint)?;
        self.writer = writer;
        self.reader = reader;
        Ok(())
    }

    /// Sends one frame and reads one response frame, auto-assigning an
    /// `id` when the caller gave none. Protocol-level errors
    /// (`ok:false`) become [`ClientError::Server`]. With a retry policy
    /// attached and an idempotent verb, transport failures reconnect
    /// and replay the frame.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn roundtrip(&mut self, mut frame: Json) -> Result<Json, ClientError> {
        if let Json::Obj(pairs) = &mut frame {
            if !pairs.iter().any(|(k, _)| k == "id") {
                self.next_id += 1;
                pairs.push(("id".to_owned(), Json::Num(self.next_id as f64)));
            }
        }
        let retryable = self.retry.is_some()
            && frame
                .get("verb")
                .and_then(Json::as_str)
                .is_some_and(is_idempotent);
        let line = frame.render();
        match self.roundtrip_raw(&line) {
            Err(ClientError::Io(e)) if retryable => self.retry_line(&line, e),
            other => other,
        }
    }

    fn retry_line(&mut self, line: &str, first: io::Error) -> Result<Json, ClientError> {
        let Some(policy) = self.retry.clone() else {
            return Err(ClientError::Io(first));
        };
        let mut last = first;
        for attempt in 0..policy.max_attempts {
            thread::sleep(policy.delay(attempt, &mut self.rng));
            if let Err(e) = self.reconnect() {
                last = e;
                continue;
            }
            match self.roundtrip_raw(line) {
                Err(ClientError::Io(e)) => last = e,
                other => return other,
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: policy.max_attempts,
            last,
        })
    }

    /// Sends one pre-rendered request line and reads one response. A
    /// single attempt on the current connection — never retried, even
    /// with a policy attached (callers of the raw API own their frames'
    /// idempotency).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn roundtrip_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let frame =
            parse(response.trim_end()).map_err(|e| ClientError::BadResponse(e.to_string()))?;
        if frame.get("ok").and_then(Json::as_bool) == Some(false) {
            let code = frame
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_owned();
            let message = frame
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            return Err(ClientError::Server(code, message));
        }
        Ok(frame)
    }

    /// `open_session` for `axioms` text; returns the session id.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn open_session(&mut self, axioms: &str) -> Result<String, ClientError> {
        let frame = self.roundtrip(obj(vec![
            ("verb", "open_session".into()),
            ("axioms", axioms.into()),
        ]))?;
        frame
            .get("session")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::BadResponse("open_session reply lacks session".to_owned()))
    }

    /// A disjointness `prove` with default budget; returns the full
    /// `result` object.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn prove_disjoint(
        &mut self,
        session: &str,
        a: &str,
        b: &str,
        distinct_origin: bool,
    ) -> Result<Json, ClientError> {
        let origin = if distinct_origin { "distinct" } else { "same" };
        let frame = self.roundtrip(obj(vec![
            ("verb", "prove".into()),
            ("session", session.into()),
            ("a", a.into()),
            ("b", b.into()),
            ("origin", origin.into()),
        ]))?;
        frame
            .get("result")
            .cloned()
            .ok_or_else(|| ClientError::BadResponse("prove reply lacks result".to_owned()))
    }

    /// `shutdown` — asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.roundtrip(obj(vec![("verb", "shutdown".into())]))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_classification() {
        for verb in [
            "hello",
            "open_session",
            "prove",
            "batch",
            "report",
            "analyze",
            "invalidate",
            "stats",
            "health",
            "ready",
        ] {
            assert!(is_idempotent(verb), "{verb}");
        }
        for verb in ["close_session", "shutdown", "frobnicate"] {
            assert!(!is_idempotent(verb), "{verb}");
        }
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        };
        let mut rng = jitter_seed();
        for attempt in 0..8 {
            let d = policy.delay(attempt, &mut rng);
            let uncapped = policy
                .base_delay
                .saturating_mul(1 << attempt)
                .min(policy.max_delay);
            assert!(d >= uncapped.mul_f64(0.5), "attempt {attempt}: {d:?}");
            assert!(d <= uncapped, "attempt {attempt}: {d:?} above cap");
        }
    }
}
