//! Crash-safe warm-state snapshots.
//!
//! The daemon's entire competitive advantage is warmth: compiled axiom
//! sets and the sharded definite proof/subset caches. All of it is
//! reconstructible — the caches memoize *theorems*, and the proofs are
//! machine-checkable — so the snapshot tier treats persistence as a
//! pure optimization with an asymmetric contract:
//!
//! > **Corruption can only cost warmth, never correctness or
//! > availability.**
//!
//! # File format (version 1)
//!
//! A snapshot is a single binary file, `apt-serve.snap`:
//!
//! ```text
//! magic      8  b"APTSNAP\x01"
//! version    u32-le
//! created    u64-le   unix milliseconds at write time
//! sections   u32-le   section count
//! section*:
//!   name     string   informational label (session id at write time)
//!   len      u64-le   payload byte length
//!   crc      u32-le   CRC-32 (IEEE) of the payload bytes
//!   payload  len bytes
//! ```
//!
//! Every section is independently length-prefixed and checksummed, so a
//! tear or bit-flip anywhere is confined to the sections it touches:
//! restore decodes each section under its CRC and falls back *per
//! section* to cold state on any mismatch. A bad header (magic,
//! version, truncation) costs the whole file — still only warmth.
//!
//! Each section payload is one session's warm state:
//!
//! ```text
//! axioms   string       the axiom-set source text
//! goals    u32-le, then per goal:
//!   origin u8            0 same, 1 distinct
//!   a, b   path
//!   proof  u8            0 failed; 1 proved, followed by a proof tree
//! subsets  u32-le, then per entry: regex a, regex b, holds u8
//! ```
//!
//! Strings are `u32-le` length + UTF-8 bytes. Paths, regexes, and
//! proofs are serialized *structurally* (field names as strings):
//! `RegexId`s and `Symbol`s are process-local arena indices and are
//! meaningless in another process, so the decoder re-interns on
//! restore. Compiled DFAs and axiom indexes are deliberately not
//! persisted — they are recomputed deterministically from the axiom
//! text, which is cheap relative to the proof search the caches avoid.
//!
//! # Atomicity
//!
//! [`write_atomic`] writes `apt-serve.snap.tmp`, fsyncs it, renames it
//! over `apt-serve.snap`, then fsyncs the directory. A crash at any
//! point leaves either the old snapshot or the new one — never a
//! half-visible file. (A stale `.tmp` left by a crash mid-write is
//! ignored and removed on the next restore.) The [`FaultPlan`] hooks
//! let tests drive every failure point on this path deterministically.

use crate::fault::FaultPlan;
use apt_core::{
    Answer, CacheExport, Goal, GoalEntry, Origin, PrefixCase, Proof, Rule, SubsetEntry, Witness,
};
use apt_paths::{DepTable, ProcVerdicts, StoredVerdict};
use apt_regex::{Component, Path, Regex};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// File name of the live snapshot inside the snapshot directory.
pub const SNAP_FILE: &str = "apt-serve.snap";
/// File name of the in-progress temporary file.
pub const TMP_FILE: &str = "apt-serve.snap.tmp";

const MAGIC: &[u8; 8] = b"APTSNAP\x01";
const VERSION: u32 = 2;
/// Chunk size for snapshot writes; small enough that `write_err=N`
/// fault plans can target a mid-file write on realistic snapshots.
const WRITE_CHUNK: usize = 64 * 1024;
/// Maximum nesting depth accepted for paths/regexes/proofs. Real
/// access paths nest a handful of levels; prover proofs are
/// fuel-bounded. Anything deeper is corruption, and rejecting it keeps
/// the recursive decoder off the guard page.
const MAX_DEPTH: usize = 512;
/// Hard cap on any single decoded section payload (bytes). The encoder
/// never approaches this; a length prefix beyond it is corruption.
const MAX_SECTION_LEN: u64 = 1 << 32;

/// A decode-side failure, also used for header-level load failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    message: String,
}

impl SnapshotError {
    fn new(message: impl Into<String>) -> SnapshotError {
        SnapshotError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// One session's warm state, as stored in a snapshot section.
#[derive(Debug, Clone)]
pub struct SessionSection {
    /// Informational label (the session id at write time; restore
    /// assigns fresh ids).
    pub name: String,
    /// The axiom-set source text the engine is recompiled from.
    pub axioms_text: String,
    /// The definite goal/subset cache image.
    pub export: CacheExport,
}

/// One named whole-program dependence table, as stored in a snapshot
/// section. Written with an `analyze:`-prefixed section name — session
/// ids are `s<n>`, so the namespaces cannot collide, and an older binary
/// that does not know the prefix simply fails the section's payload
/// decode and falls back per-section as it would for any corruption.
#[derive(Debug, Clone)]
pub struct AnalyzeSection {
    /// The table's name (the `analyze` verb's `name` field).
    pub name: String,
    /// The persisted per-procedure verdicts.
    pub table: DepTable,
}

/// A full snapshot image: what the flusher writes and restore reads.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Unix milliseconds at encode time.
    pub created_unix_ms: u64,
    /// One section per live session.
    pub sections: Vec<SessionSection>,
    /// One section per named whole-program dependence table.
    pub analyses: Vec<AnalyzeSection>,
}

/// The per-section result of decoding a snapshot file.
#[derive(Debug)]
pub enum SectionOutcome {
    /// The section's CRC matched and it decoded cleanly as a session.
    Restored(SessionSection),
    /// The section decoded cleanly as a whole-program dependence table.
    Analysis(AnalyzeSection),
    /// The section was damaged; restore proceeds without it.
    Corrupt {
        /// The section's label, when the name field itself survived.
        name: String,
        /// Why the section was rejected.
        reason: String,
    },
}

/// Section-name prefix marking an [`AnalyzeSection`].
const ANALYZE_PREFIX: &str = "analyze:";

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, std-only.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_path(out: &mut Vec<u8>, path: &Path) {
    let components = path.components();
    put_u32(out, components.len() as u32);
    for c in components {
        put_component(out, c);
    }
}

fn put_component(out: &mut Vec<u8>, c: &Component) {
    match c {
        Component::Field(s) => {
            out.push(0);
            put_str(out, s.as_str());
        }
        Component::Alt(a, b) => {
            out.push(1);
            put_path(out, a);
            put_path(out, b);
        }
        Component::Star(a) => {
            out.push(2);
            put_path(out, a);
        }
        Component::Plus(a) => {
            out.push(3);
            put_path(out, a);
        }
    }
}

fn put_regex(out: &mut Vec<u8>, r: &Regex) {
    match r {
        Regex::Empty => out.push(0),
        Regex::Epsilon => out.push(1),
        Regex::Field(s) => {
            out.push(2);
            put_str(out, s.as_str());
        }
        Regex::Concat(a, b) => {
            out.push(3);
            put_regex(out, a);
            put_regex(out, b);
        }
        Regex::Alt(a, b) => {
            out.push(4);
            put_regex(out, a);
            put_regex(out, b);
        }
        Regex::Star(a) => {
            out.push(5);
            put_regex(out, a);
        }
        Regex::Plus(a) => {
            out.push(6);
            put_regex(out, a);
        }
    }
}

fn put_goal(out: &mut Vec<u8>, goal: &Goal) {
    out.push(match goal.origin() {
        Origin::Same => 0,
        Origin::Distinct => 1,
    });
    put_path(out, goal.a());
    put_path(out, goal.b());
}

fn put_rule(out: &mut Vec<u8>, rule: &Rule) {
    match rule {
        Rule::Axiom { axiom, swapped } => {
            out.push(0);
            put_str(out, axiom);
            out.push(u8::from(*swapped));
        }
        Rule::TrivialDistinctEpsilon => out.push(1),
        Rule::HeadPeel { field } => {
            out.push(2);
            put_str(out, field);
        }
        Rule::HeadPeelInjective { field, axiom } => {
            out.push(3);
            put_str(out, field);
            put_str(out, axiom);
        }
        Rule::HeadPeelCases { field } => {
            out.push(4);
            put_str(out, field);
        }
        Rule::TailPeel { field, axiom } => {
            out.push(5);
            put_str(out, field);
            put_str(out, axiom);
        }
        Rule::ClosureTailPeel { field, axiom } => {
            out.push(6);
            put_str(out, field);
            put_str(out, axiom);
        }
        Rule::ClosureHeadPeel { field } => {
            out.push(7);
            put_str(out, field);
        }
        Rule::Decompose {
            suffix_a,
            suffix_b,
            prefix_case,
        } => {
            out.push(8);
            put_str(out, suffix_a);
            put_str(out, suffix_b);
            out.push(match prefix_case {
                PrefixCase::BothOrigins => 0,
                PrefixCase::PrefixesEqual => 1,
                PrefixCase::PrefixesDisjoint => 2,
            });
        }
        Rule::AltSplit => out.push(9),
        Rule::Rewrite { axiom } => {
            out.push(10);
            put_str(out, axiom);
        }
        Rule::StarCases => out.push(11),
        Rule::Induction { target } => {
            out.push(12);
            put_str(out, target);
        }
    }
}

fn put_proof(out: &mut Vec<u8>, proof: &Proof) {
    put_goal(out, &proof.goal);
    put_rule(out, &proof.rule);
    put_u32(out, proof.children.len() as u32);
    for c in &proof.children {
        put_proof(out, c);
    }
}

fn encode_section_payload(section: &SessionSection) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &section.axioms_text);
    put_u32(&mut out, section.export.goals.len() as u32);
    for entry in &section.export.goals {
        put_goal(&mut out, &entry.goal);
        match &entry.proof {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                put_proof(&mut out, p);
            }
        }
    }
    put_u32(&mut out, section.export.subsets.len() as u32);
    for entry in &section.export.subsets {
        put_regex(&mut out, &entry.a);
        put_regex(&mut out, &entry.b);
        out.push(u8::from(entry.holds));
    }
    out
}

fn encode_analyze_payload(table: &DepTable) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, table.procs.len() as u32);
    for entry in &table.procs {
        put_str(&mut out, &entry.proc_name);
        put_u64(&mut out, entry.body_hash);
        put_u64(&mut out, entry.axioms_hash);
        put_u32(&mut out, entry.verdicts.len() as u32);
        for v in &entry.verdicts {
            put_str(&mut out, &v.query);
            out.push(match v.answer {
                Answer::No => 0,
                // Maybe is never persisted; encoding one as a Yes would
                // be caught by the replay-side structural check, but the
                // writer simply never stores it.
                Answer::Yes | Answer::Maybe => 1,
            });
            put_u32(&mut out, v.proofs.len() as u32);
            for p in &v.proofs {
                put_proof(&mut out, p);
            }
            match &v.witness {
                None => out.push(0),
                Some(w) => {
                    out.push(1);
                    put_str(&mut out, &w.encode());
                }
            }
        }
    }
    out
}

/// Encodes a full snapshot image to its on-disk byte representation.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, snapshot.created_unix_ms);
    put_u32(
        &mut out,
        (snapshot.sections.len() + snapshot.analyses.len()) as u32,
    );
    for section in &snapshot.sections {
        let payload = encode_section_payload(section);
        put_str(&mut out, &section.name);
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
    for analysis in &snapshot.analyses {
        let payload = encode_analyze_payload(&analysis.table);
        put_str(&mut out, &format!("{ANALYZE_PREFIX}{}", analysis.name));
        put_u64(&mut out, payload.len() as u64);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::new(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::new("string is not valid UTF-8"))
    }

    /// Bounds a count prefix: each element costs at least `min_bytes`,
    /// so a count implying more bytes than remain is corruption. Keeps
    /// a flipped length prefix from provoking a huge allocation.
    fn count(&mut self, min_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.remaining() {
            return Err(SnapshotError::new(format!(
                "implausible count {n} at offset {}",
                self.pos
            )));
        }
        Ok(n)
    }

    fn path(&mut self, depth: usize) -> Result<Path, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(SnapshotError::new("path nesting too deep"));
        }
        let n = self.count(1)?;
        let mut components = Vec::with_capacity(n);
        for _ in 0..n {
            components.push(self.component(depth + 1)?);
        }
        Ok(Path::new(components))
    }

    fn component(&mut self, depth: usize) -> Result<Component, SnapshotError> {
        match self.u8()? {
            0 => Ok(Component::Field(self.string()?.as_str().into())),
            1 => Ok(Component::Alt(self.path(depth)?, self.path(depth)?)),
            2 => Ok(Component::Star(self.path(depth)?)),
            3 => Ok(Component::Plus(self.path(depth)?)),
            t => Err(SnapshotError::new(format!("bad component tag {t}"))),
        }
    }

    fn regex(&mut self, depth: usize) -> Result<Regex, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(SnapshotError::new("regex nesting too deep"));
        }
        // Raw constructors, not the simplifying smart constructors: the
        // encoder wrote an already-simplified tree, and round-tripping
        // must preserve it byte-for-byte so the subset-cache keys
        // re-intern to the same structural regexes.
        match self.u8()? {
            0 => Ok(Regex::Empty),
            1 => Ok(Regex::Epsilon),
            2 => Ok(Regex::Field(self.string()?.as_str().into())),
            3 => Ok(Regex::Concat(
                Arc::new(self.regex(depth + 1)?),
                Arc::new(self.regex(depth + 1)?),
            )),
            4 => Ok(Regex::Alt(
                Arc::new(self.regex(depth + 1)?),
                Arc::new(self.regex(depth + 1)?),
            )),
            5 => Ok(Regex::Star(Arc::new(self.regex(depth + 1)?))),
            6 => Ok(Regex::Plus(Arc::new(self.regex(depth + 1)?))),
            t => Err(SnapshotError::new(format!("bad regex tag {t}"))),
        }
    }

    fn goal(&mut self) -> Result<Goal, SnapshotError> {
        let origin = match self.u8()? {
            0 => Origin::Same,
            1 => Origin::Distinct,
            t => return Err(SnapshotError::new(format!("bad origin tag {t}"))),
        };
        let a = self.path(0)?;
        let b = self.path(0)?;
        Ok(Goal::new(origin, a, b))
    }

    fn rule(&mut self) -> Result<Rule, SnapshotError> {
        Ok(match self.u8()? {
            0 => {
                let axiom = self.string()?;
                let swapped = self.u8()? != 0;
                Rule::Axiom { axiom, swapped }
            }
            1 => Rule::TrivialDistinctEpsilon,
            2 => Rule::HeadPeel {
                field: self.string()?,
            },
            3 => Rule::HeadPeelInjective {
                field: self.string()?,
                axiom: self.string()?,
            },
            4 => Rule::HeadPeelCases {
                field: self.string()?,
            },
            5 => Rule::TailPeel {
                field: self.string()?,
                axiom: self.string()?,
            },
            6 => Rule::ClosureTailPeel {
                field: self.string()?,
                axiom: self.string()?,
            },
            7 => Rule::ClosureHeadPeel {
                field: self.string()?,
            },
            8 => {
                let suffix_a = self.string()?;
                let suffix_b = self.string()?;
                let prefix_case = match self.u8()? {
                    0 => PrefixCase::BothOrigins,
                    1 => PrefixCase::PrefixesEqual,
                    2 => PrefixCase::PrefixesDisjoint,
                    t => return Err(SnapshotError::new(format!("bad prefix-case tag {t}"))),
                };
                Rule::Decompose {
                    suffix_a,
                    suffix_b,
                    prefix_case,
                }
            }
            9 => Rule::AltSplit,
            10 => Rule::Rewrite {
                axiom: self.string()?,
            },
            11 => Rule::StarCases,
            12 => Rule::Induction {
                target: self.string()?,
            },
            t => return Err(SnapshotError::new(format!("bad rule tag {t}"))),
        })
    }

    fn proof(&mut self, depth: usize) -> Result<Proof, SnapshotError> {
        if depth > MAX_DEPTH {
            return Err(SnapshotError::new("proof nesting too deep"));
        }
        let goal = self.goal()?;
        let rule = self.rule()?;
        let n = self.count(1)?;
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            children.push(self.proof(depth + 1)?);
        }
        Ok(Proof {
            goal,
            rule,
            children,
        })
    }
}

fn decode_section_payload(payload: &[u8]) -> Result<(String, CacheExport), SnapshotError> {
    let mut cur = Cursor::new(payload);
    let axioms_text = cur.string()?;
    let goal_count = cur.count(3)?;
    let mut goals = Vec::with_capacity(goal_count);
    for _ in 0..goal_count {
        let goal = cur.goal()?;
        let proof = match cur.u8()? {
            0 => None,
            1 => Some(cur.proof(0)?),
            t => return Err(SnapshotError::new(format!("bad proof-presence tag {t}"))),
        };
        goals.push(GoalEntry { goal, proof });
    }
    let subset_count = cur.count(3)?;
    let mut subsets = Vec::with_capacity(subset_count);
    for _ in 0..subset_count {
        let a = cur.regex(0)?;
        let b = cur.regex(0)?;
        let holds = cur.u8()? != 0;
        subsets.push(SubsetEntry { a, b, holds });
    }
    if cur.remaining() != 0 {
        return Err(SnapshotError::new(format!(
            "{} trailing bytes after section payload",
            cur.remaining()
        )));
    }
    Ok((axioms_text, CacheExport { goals, subsets }))
}

fn decode_analyze_payload(payload: &[u8]) -> Result<DepTable, SnapshotError> {
    let mut cur = Cursor::new(payload);
    let proc_count = cur.count(8)?;
    let mut procs = Vec::with_capacity(proc_count);
    for _ in 0..proc_count {
        let proc_name = cur.string()?;
        let body_hash = cur.u64()?;
        let axioms_hash = cur.u64()?;
        let verdict_count = cur.count(5)?;
        let mut verdicts = Vec::with_capacity(verdict_count);
        for _ in 0..verdict_count {
            let query = cur.string()?;
            let answer = match cur.u8()? {
                0 => Answer::No,
                1 => Answer::Yes,
                t => return Err(SnapshotError::new(format!("bad answer tag {t}"))),
            };
            let proof_count = cur.count(3)?;
            let mut proofs = Vec::with_capacity(proof_count);
            for _ in 0..proof_count {
                proofs.push(cur.proof(0)?);
            }
            let witness = match cur.u8()? {
                0 => None,
                1 => {
                    let text = cur.string()?;
                    Some(Witness::decode(&text).ok_or_else(|| {
                        SnapshotError::new(format!("unparsable witness {text:?}"))
                    })?)
                }
                t => return Err(SnapshotError::new(format!("bad witness tag {t}"))),
            };
            verdicts.push(StoredVerdict {
                query,
                answer,
                proofs,
                witness,
            });
        }
        procs.push(ProcVerdicts {
            proc_name,
            body_hash,
            axioms_hash,
            verdicts,
        });
    }
    if cur.remaining() != 0 {
        return Err(SnapshotError::new(format!(
            "{} trailing bytes after analyze payload",
            cur.remaining()
        )));
    }
    Ok(DepTable { procs })
}

/// Decodes a snapshot file image, yielding one outcome per section.
///
/// Header damage (bad magic, unknown version, truncated header) fails
/// the whole file; everything past the header degrades per section.
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the header-level problem.
pub fn decode(bytes: &[u8]) -> Result<(u64, Vec<SectionOutcome>), SnapshotError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::new("bad magic: not an apt-serve snapshot"));
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(SnapshotError::new(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let created_unix_ms = cur.u64()?;
    let section_count = cur.count(0)?;
    let mut outcomes = Vec::new();
    for index in 0..section_count {
        let corrupt = |name: String, reason: String| SectionOutcome::Corrupt { name, reason };
        // The section frame itself (name/len/crc) can be truncated by a
        // tear; that damages this and all later sections, since frame
        // boundaries are gone.
        let (name, len, crc) = match (|| {
            let name = cur.string()?;
            let len = cur.u64()?;
            if len > MAX_SECTION_LEN {
                return Err(SnapshotError::new(format!(
                    "implausible section length {len}"
                )));
            }
            let crc = cur.u32()?;
            Ok((name, len, crc))
        })() {
            Ok(frame) => frame,
            Err(e) => {
                outcomes.push(corrupt(
                    format!("#{index}"),
                    format!("section frame unreadable: {e}"),
                ));
                break;
            }
        };
        let payload = match cur.take(len as usize) {
            Ok(p) => p,
            Err(e) => {
                outcomes.push(corrupt(name, format!("payload truncated: {e}")));
                break;
            }
        };
        let actual = crc32(payload);
        if actual != crc {
            outcomes.push(corrupt(
                name,
                format!("crc mismatch: stored {crc:#010x}, computed {actual:#010x}"),
            ));
            continue;
        }
        if let Some(table_name) = name.strip_prefix(ANALYZE_PREFIX) {
            match decode_analyze_payload(payload) {
                Ok(table) => outcomes.push(SectionOutcome::Analysis(AnalyzeSection {
                    name: table_name.to_owned(),
                    table,
                })),
                Err(e) => outcomes.push(corrupt(name, format!("payload undecodable: {e}"))),
            }
            continue;
        }
        match decode_section_payload(payload) {
            Ok((axioms_text, export)) => outcomes.push(SectionOutcome::Restored(SessionSection {
                name,
                axioms_text,
                export,
            })),
            Err(e) => outcomes.push(corrupt(name, format!("payload undecodable: {e}"))),
        }
    }
    Ok((created_unix_ms, outcomes))
}

// ---------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------

/// Current wall-clock time as unix milliseconds (0 if the clock is
/// before the epoch, which only matters cosmetically for snapshot age).
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Writes `snapshot` into `dir` atomically: temp file → fsync → rename
/// → directory fsync. Returns the published path and the byte count.
///
/// With a [`FaultPlan`], each step first consults the plan, and an
/// armed `torn=F` fault writes only fraction `F` of the bytes, skips
/// fsync, and renames anyway — materializing the exact on-disk state a
/// power loss after rename can leave.
///
/// # Errors
///
/// Any I/O failure (real or injected). On error the previously
/// published snapshot, if any, is untouched.
pub fn write_atomic(
    dir: &FsPath,
    snapshot: &Snapshot,
    faults: Option<&FaultPlan>,
) -> io::Result<(PathBuf, u64)> {
    fs::create_dir_all(dir)?;
    let bytes = encode(snapshot);
    let torn = faults.and_then(FaultPlan::take_torn_fraction);
    let write_len = match torn {
        Some(f) => ((bytes.len() as f64) * f) as usize,
        None => bytes.len(),
    };
    let tmp_path = dir.join(TMP_FILE);
    let final_path = dir.join(SNAP_FILE);
    {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        for chunk in bytes[..write_len].chunks(WRITE_CHUNK.max(1)) {
            if let Some(plan) = faults {
                plan.check_write()?;
            }
            tmp.write_all(chunk)?;
        }
        if torn.is_none() {
            if let Some(plan) = faults {
                plan.check_fsync()?;
            }
            tmp.sync_all()?;
        }
    }
    if let Some(plan) = faults {
        plan.check_rename()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable. Failure here is not worth
    // surfacing: the data file is already synced and published.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok((final_path, bytes.len() as u64))
}

/// Reads the snapshot file from `dir`, removing any stale temp file a
/// crash mid-write left behind. Returns `None` when no snapshot exists.
///
/// # Errors
///
/// Any read failure (real or injected) other than the file being
/// absent.
pub fn read_snapshot_bytes(
    dir: &FsPath,
    faults: Option<&FaultPlan>,
) -> io::Result<Option<Vec<u8>>> {
    let tmp_path = dir.join(TMP_FILE);
    if tmp_path.exists() {
        // A leftover temp file is a crash artifact: never published, so
        // never trusted.
        let _ = fs::remove_file(&tmp_path);
    }
    let path = dir.join(SNAP_FILE);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if let Some(plan) = faults {
        plan.check_read()?;
    }
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(Some(bytes))
}

/// Renders a human-readable summary of a snapshot file image, for
/// `apt snapshot inspect`. Corrupt sections are listed, not fatal.
///
/// # Errors
///
/// Returns a [`SnapshotError`] when the header itself is unreadable.
pub fn inspect(bytes: &[u8]) -> Result<String, SnapshotError> {
    use std::fmt::Write as _;
    let (created_unix_ms, outcomes) = decode(bytes)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot: version {VERSION}, {} bytes, created {created_unix_ms} (unix ms), {} section(s)",
        bytes.len(),
        outcomes.len()
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            SectionOutcome::Restored(s) => {
                let proved = s.export.goals.iter().filter(|g| g.proof.is_some()).count();
                let _ = writeln!(
                    out,
                    "  section {i} [{}]: ok — {} axiom bytes, {} goals ({} proved), {} subsets",
                    s.name,
                    s.axioms_text.len(),
                    s.export.goals.len(),
                    proved,
                    s.export.subsets.len()
                );
            }
            SectionOutcome::Analysis(a) => {
                let _ = writeln!(
                    out,
                    "  section {i} [analyze:{}]: ok — {} procedure(s), {} verdict(s)",
                    a.name,
                    a.table.procs.len(),
                    a.table.total_verdicts()
                );
            }
            SectionOutcome::Corrupt { name, reason } => {
                let _ = writeln!(out, "  section {i} [{name}]: CORRUPT — {reason}");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_core::Origin;

    fn sample_section() -> SessionSection {
        let goal = Goal::new(
            Origin::Same,
            Path::parse("L.L.N").unwrap(),
            Path::parse("L.R.N").unwrap(),
        );
        let proof = Proof {
            goal: goal.clone(),
            rule: Rule::HeadPeel { field: "L".into() },
            children: vec![Proof::leaf(
                goal.clone(),
                Rule::Axiom {
                    axiom: "A1".into(),
                    swapped: true,
                },
            )],
        };
        let star_chain = Regex::concat(
            Regex::field("L"),
            Regex::star(Regex::alt(Regex::field("R"), Regex::field("N"))),
        );
        SessionSection {
            name: "s1".into(),
            axioms_text: "axiom A1: forall p, p.L* <> p.R ;".into(),
            export: CacheExport {
                goals: vec![
                    GoalEntry {
                        goal: goal.clone(),
                        proof: Some(proof),
                    },
                    GoalEntry { goal, proof: None },
                ],
                subsets: vec![SubsetEntry {
                    a: star_chain.clone(),
                    b: Regex::plus(star_chain),
                    holds: true,
                }],
            },
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            created_unix_ms: 1_700_000_000_000,
            sections: vec![sample_section()],
            analyses: Vec::new(),
        }
    }

    fn sample_analyze_section() -> AnalyzeSection {
        let goal = Goal::new(
            Origin::Same,
            Path::parse("link").unwrap(),
            Path::parse("link.link+").unwrap(),
        );
        let proof = Proof::leaf(
            goal,
            Rule::Axiom {
                axiom: "A2".into(),
                swapped: false,
            },
        );
        AnalyzeSection {
            name: "default".into(),
            table: DepTable {
                procs: vec![ProcVerdicts {
                    proc_name: "update".into(),
                    body_hash: 0xdead_beef_cafe_f00d,
                    axioms_hash: 42,
                    verdicts: vec![
                        StoredVerdict {
                            query: "carried U".into(),
                            answer: Answer::No,
                            proofs: vec![proof],
                            witness: None,
                        },
                        StoredVerdict {
                            query: "S vs T".into(),
                            answer: Answer::Yes,
                            proofs: Vec::new(),
                            witness: Some(Witness {
                                nodes: 3,
                                edges: vec![(0, "link".into(), 1), (1, "link".into(), 2)],
                                p_origin: 0,
                                q_origin: 0,
                                meet: 2,
                            }),
                        },
                    ],
                }],
            },
        }
    }

    fn assert_roundtrips(snap: &Snapshot) {
        let bytes = encode(snap);
        let (created, outcomes) = decode(&bytes).unwrap();
        assert_eq!(created, snap.created_unix_ms);
        assert_eq!(outcomes.len(), snap.sections.len() + snap.analyses.len());
        // Session sections come first in file order; zip stops there.
        for (outcome, original) in outcomes.iter().zip(&snap.sections) {
            match outcome {
                SectionOutcome::Restored(s) => {
                    assert_eq!(s.name, original.name);
                    assert_eq!(s.axioms_text, original.axioms_text);
                    assert_eq!(s.export.goals.len(), original.export.goals.len());
                    for (a, b) in s.export.goals.iter().zip(&original.export.goals) {
                        assert_eq!(a.goal, b.goal);
                        match (&a.proof, &b.proof) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                assert_eq!(x.goal, y.goal);
                                assert_eq!(x.node_count(), y.node_count());
                            }
                            _ => panic!("proof presence did not round-trip"),
                        }
                    }
                    assert_eq!(s.export.subsets.len(), original.export.subsets.len());
                    for (a, b) in s.export.subsets.iter().zip(&original.export.subsets) {
                        assert_eq!(a.a, b.a);
                        assert_eq!(a.b, b.b);
                        assert_eq!(a.holds, b.holds);
                    }
                }
                SectionOutcome::Analysis(a) => {
                    panic!("session section [{}] decoded as analyze section", a.name)
                }
                SectionOutcome::Corrupt { reason, .. } => {
                    panic!("clean snapshot decoded as corrupt: {reason}")
                }
            }
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrip_preserves_everything() {
        assert_roundtrips(&sample_snapshot());
        assert_roundtrips(&Snapshot::default());
    }

    #[test]
    fn analyze_sections_roundtrip_beside_sessions() {
        let snap = Snapshot {
            created_unix_ms: 7,
            sections: vec![sample_section()],
            analyses: vec![sample_analyze_section()],
        };
        let bytes = encode(&snap);
        let (_, outcomes) = decode(&bytes).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(matches!(outcomes[0], SectionOutcome::Restored(_)));
        let SectionOutcome::Analysis(restored) = &outcomes[1] else {
            panic!("analyze section did not decode: {:?}", outcomes[1]);
        };
        let original = sample_analyze_section();
        assert_eq!(restored.name, original.name);
        assert_eq!(restored.table.procs.len(), 1);
        let (got, want) = (&restored.table.procs[0], &original.table.procs[0]);
        assert_eq!(got.proc_name, want.proc_name);
        assert_eq!(got.body_hash, want.body_hash);
        assert_eq!(got.axioms_hash, want.axioms_hash);
        assert_eq!(got.verdicts.len(), want.verdicts.len());
        for (g, w) in got.verdicts.iter().zip(&want.verdicts) {
            assert_eq!(g.query, w.query);
            assert_eq!(g.answer, w.answer);
            assert_eq!(g.proofs.len(), w.proofs.len());
            for (gp, wp) in g.proofs.iter().zip(&w.proofs) {
                assert_eq!(gp.goal, wp.goal);
                assert_eq!(gp.node_count(), wp.node_count());
            }
            assert_eq!(g.witness, w.witness, "{}", g.query);
        }
        // Inspect names the table and its sizes.
        let report = inspect(&bytes).unwrap();
        assert!(report.contains("analyze:default"), "{report}");
        assert!(report.contains("2 verdict(s)"), "{report}");
    }

    #[test]
    fn corrupt_analyze_section_degrades_not_fails() {
        let snap = Snapshot {
            created_unix_ms: 7,
            sections: Vec::new(),
            analyses: vec![sample_analyze_section()],
        };
        let mut bytes = encode(&snap);
        let n = bytes.len();
        bytes[n - 2] ^= 0x10;
        let (_, outcomes) = decode(&bytes).unwrap();
        assert!(matches!(outcomes[0], SectionOutcome::Corrupt { .. }));
    }

    #[test]
    fn bit_flip_in_payload_corrupts_only_that_section() {
        let snap = Snapshot {
            created_unix_ms: 1,
            sections: vec![sample_section(), sample_section()],
            analyses: Vec::new(),
        };
        let mut bytes = encode(&snap);
        // Flip a byte near the end — inside the second section's payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        let (_, outcomes) = decode(&bytes).unwrap();
        assert!(matches!(outcomes[0], SectionOutcome::Restored(_)));
        assert!(matches!(outcomes[1], SectionOutcome::Corrupt { .. }));
    }

    #[test]
    fn truncation_degrades_not_fails() {
        let bytes = encode(&sample_snapshot());
        let (_, outcomes) = decode(&bytes[..bytes.len() / 2]).unwrap();
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SectionOutcome::Corrupt { .. })));
    }

    #[test]
    fn bad_magic_and_version_fail_the_header() {
        let mut bytes = encode(&sample_snapshot());
        bytes[0] = b'X';
        assert!(decode(&bytes).is_err());

        let mut bytes = encode(&sample_snapshot());
        bytes[8] = 0xff; // version field
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn write_atomic_publishes_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("apt-snap-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (path, bytes) = write_atomic(&dir, &sample_snapshot(), None).unwrap();
        assert!(bytes > 0);
        assert!(path.ends_with(SNAP_FILE));
        assert!(!dir.join(TMP_FILE).exists());
        let read = read_snapshot_bytes(&dir, None).unwrap().unwrap();
        assert_eq!(read.len() as u64, bytes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_detected_on_read() {
        let dir = std::env::temp_dir().join(format!("apt-snap-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let plan = FaultPlan::parse("torn=0.5").unwrap();
        write_atomic(&dir, &sample_snapshot(), Some(&plan)).unwrap();
        let read = read_snapshot_bytes(&dir, None).unwrap().unwrap();
        // The torn file decodes (header survives) but every section is
        // rejected — warmth lost, correctness intact.
        let (_, outcomes) = decode(&read).unwrap();
        assert!(!outcomes.is_empty());
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SectionOutcome::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_renders_ok_and_corrupt() {
        let bytes = encode(&sample_snapshot());
        let report = inspect(&bytes).unwrap();
        assert!(report.contains("ok"));
        let mut broken = bytes.clone();
        let n = broken.len();
        broken[n - 1] ^= 1;
        let report = inspect(&broken).unwrap();
        assert!(report.contains("CORRUPT"));
    }
}
