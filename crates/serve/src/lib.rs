//! `apt-serve` — a resident dependence-query service.
//!
//! The paper's dependence test is designed to be *queried*: a
//! parallelizing compiler asks "may `p.l.n` and `p.r.n` alias?" many
//! thousands of times against one axiom set. Spawning a fresh process
//! (and recompiling the axiom set, its alphabet bitmasks, dispatch
//! index, and DFA cache) per query throws away exactly the state that
//! makes repeated queries cheap. This crate keeps that state resident:
//! a daemon that compiles each axiom set once into a shared
//! [`apt_core::DepEngine`] *session* and answers queries over a
//! JSON-lines protocol on TCP and/or Unix sockets.
//!
//! The pieces, one module each:
//!
//! * [`json`] — a dependency-free JSON value, parser, and writer (the
//!   container has no serde; the protocol needs only plain JSON).
//! * [`proto`] — the wire protocol: verbs, budget fields, structured
//!   error codes, outcome rendering.
//! * [`session`] — the session registry: structural dedupe of axiom
//!   sets and LRU eviction of idle engines.
//! * [`poll`] — a std-only epoll shim (raw syscall bindings, the one
//!   `unsafe` module) plus an eventfd [`poll::Waker`].
//! * [`reactor`] — the event loop: nonblocking listeners and sockets as
//!   per-connection state machines (incremental line framing, buffered
//!   writes with backpressure, a timer wheel for idle/slow-loris
//!   deadlines) handing parsed requests to the worker pool.
//! * [`server`] — configuration, the bounded worker pool with
//!   `overloaded` refusals, request dispatch, snapshot restore/flush,
//!   and disconnect-triggered proof cancellation.
//! * [`metrics`] — lifetime counters and log2 latency histograms
//!   behind the `stats` verb.
//! * [`snapshot`] — crash-safe warm-state persistence: a versioned,
//!   checksummed, per-section-recoverable binary snapshot of every
//!   session's axiom set and definite proof/subset caches.
//! * [`fault`] — deterministic fault injection for the snapshot path
//!   (`--fault-plan`), so recovery is tested, not hoped for.
//! * [`client`] — a small synchronous client used by `apt client`, the
//!   tests, and the throughput bench; reconnects idempotent verbs with
//!   jittered exponential backoff.
//!
//! Everything is std-only: no async runtime, no serde, no network
//! crates — nonblocking sockets behind an epoll readiness loop, plus a
//! fixed pool of proving threads, in keeping with the repository's
//! no-new-dependencies rule. `unsafe` is denied crate-wide and allowed
//! only inside [`poll`], whose raw syscall bindings are the entire
//! kernel surface.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod client;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod poll;
pub mod proto;
pub mod reactor;
pub mod server;
pub mod session;
pub mod snapshot;

pub use client::{Client, ClientError, RetryPolicy};
pub use fault::FaultPlan;
pub use metrics::{Histogram, RestoreOutcome, SnapshotStatus};
pub use proto::{ErrorCode, ProtoError, WireBudget, WireQuery, PROTO_VERSION, SUPPORTED_VERBS};
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{Opened, SessionDump, SessionInfo, SessionRegistry};
pub use snapshot::{AnalyzeSection, SectionOutcome, SessionSection, Snapshot, SnapshotError};
