//! Deterministic fault injection for the snapshot I/O path.
//!
//! A persistence tier you have never watched fail is a persistence tier
//! you cannot trust. [`FaultPlan`] lets the recovery tests (and a
//! `--fault-plan` dev flag on `apt serve`) inject the failures that
//! matter on the snapshot path — a write that errors mid-stream, a torn
//! write that leaves a half-written file behind a successful-looking
//! rename, a failing fsync or rename, a read error during restore —
//! without patching the filesystem or racing a `kill -9`.
//!
//! Faults are *one-shot*: each armed fault fires once and disarms, so a
//! plan like `write_err=2` fails exactly the second chunk write of the
//! next snapshot and every later snapshot succeeds. This mirrors how
//! the daemon must behave in production: a transient I/O error costs
//! one snapshot, never the serving loop.
//!
//! The plan is parsed from a comma-separated spec:
//!
//! | token          | effect                                              |
//! |----------------|-----------------------------------------------------|
//! | `write_err=N`  | the Nth chunk write (1-based) fails with an error   |
//! | `torn=F`       | the next snapshot writes only fraction `F` of its   |
//! |                | bytes, skips fsync, and *still renames into place*  |
//! |                | (a crash-after-rename-before-flush tear)            |
//! | `fsync_err`    | the next fsync fails                                |
//! | `rename_err`   | the next rename fails                               |
//! | `read_err=N`   | the Nth restore read (1-based) fails                |

use std::io;
use std::sync::{Mutex, PoisonError};

/// A parsed, armed fault plan. Cheap to share behind an `Arc`; all
/// methods take `&self`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

#[derive(Debug, Default)]
struct PlanState {
    write_err_at: Option<u64>,
    torn_fraction: Option<f64>,
    fsync_err: bool,
    rename_err: bool,
    read_err_at: Option<u64>,
    writes_seen: u64,
    reads_seen: u64,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl FaultPlan {
    /// Parses a `--fault-plan` spec. An empty spec is a plan with no
    /// armed faults.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut state = PlanState::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, value) = match token.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (token, None),
            };
            let count = |v: Option<&str>| -> Result<u64, String> {
                v.and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("{key} needs a positive integer, got {token:?}"))
            };
            match key {
                "write_err" => state.write_err_at = Some(count(value)?),
                "read_err" => state.read_err_at = Some(count(value)?),
                "torn" => {
                    let f = value
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|f| (0.0..1.0).contains(f))
                        .ok_or_else(|| format!("torn needs a fraction in [0,1), got {token:?}"))?;
                    state.torn_fraction = Some(f);
                }
                "fsync_err" => state.fsync_err = true,
                "rename_err" => state.rename_err = true,
                other => return Err(format!("unknown fault {other:?}")),
            }
        }
        Ok(FaultPlan {
            state: Mutex::new(state),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Called before each chunk write of a snapshot.
    ///
    /// # Errors
    ///
    /// Returns the injected error when this write is the armed one.
    pub fn check_write(&self) -> io::Result<()> {
        let mut s = self.lock();
        s.writes_seen += 1;
        if s.write_err_at == Some(s.writes_seen) {
            s.write_err_at = None;
            return Err(injected("snapshot chunk write failed"));
        }
        Ok(())
    }

    /// Consumes the armed torn-write fraction, if any. The writer is
    /// expected to write only that fraction of its bytes, skip fsync,
    /// and rename anyway — producing the on-disk state of a tear.
    pub fn take_torn_fraction(&self) -> Option<f64> {
        self.lock().torn_fraction.take()
    }

    /// Called before fsync.
    ///
    /// # Errors
    ///
    /// Returns the injected error when an fsync fault is armed.
    pub fn check_fsync(&self) -> io::Result<()> {
        let mut s = self.lock();
        if s.fsync_err {
            s.fsync_err = false;
            return Err(injected("snapshot fsync failed"));
        }
        Ok(())
    }

    /// Called before the publishing rename.
    ///
    /// # Errors
    ///
    /// Returns the injected error when a rename fault is armed.
    pub fn check_rename(&self) -> io::Result<()> {
        let mut s = self.lock();
        if s.rename_err {
            s.rename_err = false;
            return Err(injected("snapshot rename failed"));
        }
        Ok(())
    }

    /// Called before each restore-side read.
    ///
    /// # Errors
    ///
    /// Returns the injected error when this read is the armed one.
    pub fn check_read(&self) -> io::Result<()> {
        let mut s = self.lock();
        s.reads_seen += 1;
        if s.read_err_at == Some(s.reads_seen) {
            s.read_err_at = None;
            return Err(injected("snapshot read failed"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_fires_once() {
        let plan = FaultPlan::parse("write_err=2, fsync_err").unwrap();
        assert!(plan.check_write().is_ok());
        assert!(plan.check_write().is_err(), "second write fails");
        assert!(
            plan.check_write().is_ok(),
            "one-shot: disarmed after firing"
        );
        assert!(plan.check_fsync().is_err());
        assert!(plan.check_fsync().is_ok());
        assert!(plan.check_rename().is_ok(), "unarmed faults never fire");
    }

    #[test]
    fn torn_fraction_is_consumed() {
        let plan = FaultPlan::parse("torn=0.5").unwrap();
        assert_eq!(plan.take_torn_fraction(), Some(0.5));
        assert_eq!(plan.take_torn_fraction(), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("torn=1.5").is_err());
        assert!(FaultPlan::parse("write_err=0").is_err());
        assert!(FaultPlan::parse("write_err").is_err());
        assert!(FaultPlan::parse("frobnicate").is_err());
        assert!(FaultPlan::parse("").is_ok());
        assert!(FaultPlan::parse(" rename_err , read_err=1 ").is_ok());
    }
}
