//! Server-wide counters behind the `stats` verb.
//!
//! Everything here is a relaxed atomic: the metrics path must never
//! contend with the proving path. The `stats` snapshot is advisory by
//! design — counters are read individually, so a snapshot taken while
//! requests are in flight can be momentarily inconsistent between
//! fields, which is fine for monitoring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::{obj, Json};

/// Monotonic counters for the daemon's lifetime.
pub struct Metrics {
    started: Instant,
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Request frames parsed (including ones later refused).
    pub requests_total: AtomicU64,
    /// Individual dependence queries run (prove + batch items + report).
    pub queries_total: AtomicU64,
    /// Error frames sent, any code.
    pub errors_total: AtomicU64,
    /// Requests refused by admission control specifically.
    pub overload_refusals: AtomicU64,
    /// Requests whose connection vanished mid-proof (cancelled).
    pub disconnect_cancels: AtomicU64,
}

impl Metrics {
    /// Fresh counters, clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            queries_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            overload_refusals: AtomicU64::new(0),
            disconnect_cancels: AtomicU64::new(0),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// The server-level block of the `stats` response.
    pub fn to_json(&self) -> Json {
        let read = |c: &AtomicU64| -> Json { c.load(Ordering::Relaxed).into() };
        obj(vec![
            (
                "uptime_ms",
                u64::try_from(self.started.elapsed().as_millis())
                    .unwrap_or(u64::MAX)
                    .into(),
            ),
            ("connections_total", read(&self.connections_total)),
            ("connections_active", read(&self.connections_active)),
            ("requests_total", read(&self.requests_total)),
            ("queries_total", read(&self.queries_total)),
            ("errors_total", read(&self.errors_total)),
            ("overload_refusals", read(&self.overload_refusals)),
            ("disconnect_cancels", read(&self.disconnect_cancels)),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_show_up_in_the_snapshot() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_total);
        Metrics::add(&m.queries_total, 5);
        let json = m.to_json();
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queries_total").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("errors_total").and_then(Json::as_u64), Some(0));
        assert!(json.get("uptime_ms").is_some());
    }
}
