//! Server-wide counters behind the `stats` verb.
//!
//! Everything here is a relaxed atomic: the metrics path must never
//! contend with the proving path. The `stats` snapshot is advisory by
//! design — counters are read individually, so a snapshot taken while
//! requests are in flight can be momentarily inconsistent between
//! fields, which is fine for monitoring.
//!
//! The one exception is [`SnapshotStatus`]: restore outcome and flusher
//! progress are a handful of related fields an operator reads together
//! ("did this node come up warm, and how stale is its snapshot?"), so
//! they live behind a mutex updated only on restore and on each flush —
//! nowhere near the proving path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::json::{obj, Json};

/// How the daemon came up, per its last restore attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// No snapshot configured, none found, or nothing usable in it.
    Cold,
    /// Every snapshot section restored.
    Warm,
    /// Some sections restored, some were corrupt or unusable.
    Partial,
}

impl RestoreOutcome {
    /// The wire spelling, as reported by `stats` and `ready`.
    pub fn as_str(self) -> &'static str {
        match self {
            RestoreOutcome::Cold => "cold",
            RestoreOutcome::Warm => "warm",
            RestoreOutcome::Partial => "partial",
        }
    }
}

/// Snapshot-tier status: restore outcome at startup plus flusher
/// progress since. Shared so the `stats`/`ready` verbs can tell an
/// operator whether the node actually came up warm.
#[derive(Debug, Clone)]
pub struct SnapshotStatus {
    /// Whether a snapshot directory is configured at all.
    pub enabled: bool,
    /// Outcome of the startup restore.
    pub last_restore: RestoreOutcome,
    /// Bytes of the snapshot file the restore read.
    pub restored_bytes: u64,
    /// Sessions restored warm.
    pub restored_sessions: usize,
    /// Sections rejected (checksum/decode/import failure).
    pub corrupt_sections: usize,
    /// Goal-cache entries republished by the restore.
    pub restored_goals: usize,
    /// Subset-cache entries republished by the restore.
    pub restored_subsets: usize,
    /// Analyze tables restored (re-validated on first use, not here).
    pub restored_tables: usize,
    /// When the last successful snapshot write finished.
    pub last_write: Option<Instant>,
    /// Bytes of the last successful snapshot write.
    pub last_write_bytes: u64,
    /// Successful snapshot writes this process lifetime.
    pub writes_total: u64,
    /// Failed snapshot writes (real or injected I/O errors).
    pub write_errors: u64,
}

impl Default for SnapshotStatus {
    fn default() -> SnapshotStatus {
        SnapshotStatus {
            enabled: false,
            last_restore: RestoreOutcome::Cold,
            restored_bytes: 0,
            restored_sessions: 0,
            corrupt_sections: 0,
            restored_goals: 0,
            restored_subsets: 0,
            restored_tables: 0,
            last_write: None,
            last_write_bytes: 0,
            writes_total: 0,
            write_errors: 0,
        }
    }
}

impl SnapshotStatus {
    /// The `snapshot` block of the `stats` response.
    pub fn to_json(&self) -> Json {
        let age_ms = self
            .last_write
            .map(|t| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX));
        obj(vec![
            ("enabled", self.enabled.into()),
            ("last_restore", self.last_restore.as_str().into()),
            ("restored_bytes", self.restored_bytes.into()),
            ("restored_sessions", (self.restored_sessions as u64).into()),
            ("corrupt_sections", (self.corrupt_sections as u64).into()),
            ("restored_goals", (self.restored_goals as u64).into()),
            ("restored_subsets", (self.restored_subsets as u64).into()),
            ("restored_tables", (self.restored_tables as u64).into()),
            (
                "snapshot_age_ms",
                age_ms.map(Json::from).unwrap_or(Json::Null),
            ),
            ("last_write_bytes", self.last_write_bytes.into()),
            ("writes_total", self.writes_total.into()),
            ("write_errors", self.write_errors.into()),
        ])
    }
}

/// Monotonic counters for the daemon's lifetime.
pub struct Metrics {
    started: Instant,
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Request frames parsed (including ones later refused).
    pub requests_total: AtomicU64,
    /// Individual dependence queries run (prove + batch items + report).
    pub queries_total: AtomicU64,
    /// Error frames sent, any code.
    pub errors_total: AtomicU64,
    /// Requests refused by admission control specifically.
    pub overload_refusals: AtomicU64,
    /// Requests whose connection vanished mid-proof (cancelled).
    pub disconnect_cancels: AtomicU64,
    /// Connections closed for exceeding the read deadline (idle or
    /// slow-loris).
    pub read_timeouts: AtomicU64,
    /// `analyze` queries answered straight from a persisted table.
    pub analyze_replayed: AtomicU64,
    /// `analyze` queries sent through the prover.
    pub analyze_reproved: AtomicU64,
    snapshot: Mutex<SnapshotStatus>,
}

impl Metrics {
    /// Fresh counters, clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            queries_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            overload_refusals: AtomicU64::new(0),
            disconnect_cancels: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            analyze_replayed: AtomicU64::new(0),
            analyze_reproved: AtomicU64::new(0),
            snapshot: Mutex::new(SnapshotStatus::default()),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Mutates the snapshot-tier status under its lock.
    pub fn update_snapshot_status(&self, f: impl FnOnce(&mut SnapshotStatus)) {
        let mut status = self.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut status);
    }

    /// A copy of the snapshot-tier status.
    pub fn snapshot_status(&self) -> SnapshotStatus {
        self.snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The `memory` block of the `stats` response: regex-arena occupancy
    /// (the allocation pool bounded by session-scoped compaction) plus
    /// the process peak RSS the CI soak gates on.
    pub fn memory_json() -> Json {
        let m = apt_core::MemorySample::take();
        obj(vec![
            ("arena_bytes", (m.arena.live_bytes as u64).into()),
            ("arena_nodes", (m.arena.live_nodes as u64).into()),
            ("arena_pinned_nodes", (m.arena.pinned_nodes as u64).into()),
            ("arena_scopes", (m.arena.active_scopes as u64).into()),
            ("arena_freed_total", m.arena.freed_total.into()),
            (
                "peak_rss_kb",
                m.peak_rss_kb.map(Json::from).unwrap_or(Json::Null),
            ),
        ])
    }

    /// The server-level block of the `stats` response.
    pub fn to_json(&self) -> Json {
        let read = |c: &AtomicU64| -> Json { c.load(Ordering::Relaxed).into() };
        obj(vec![
            (
                "uptime_ms",
                u64::try_from(self.started.elapsed().as_millis())
                    .unwrap_or(u64::MAX)
                    .into(),
            ),
            ("connections_total", read(&self.connections_total)),
            ("connections_active", read(&self.connections_active)),
            ("requests_total", read(&self.requests_total)),
            ("queries_total", read(&self.queries_total)),
            ("errors_total", read(&self.errors_total)),
            ("overload_refusals", read(&self.overload_refusals)),
            ("disconnect_cancels", read(&self.disconnect_cancels)),
            ("read_timeouts", read(&self.read_timeouts)),
            ("analyze_replayed", read(&self.analyze_replayed)),
            ("analyze_reproved", read(&self.analyze_reproved)),
            ("memory", Metrics::memory_json()),
            ("snapshot", self.snapshot_status().to_json()),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_show_up_in_the_snapshot() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_total);
        Metrics::add(&m.queries_total, 5);
        let json = m.to_json();
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queries_total").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("errors_total").and_then(Json::as_u64), Some(0));
        assert!(json.get("uptime_ms").is_some());
    }

    #[test]
    fn memory_block_reports_arena_and_rss() {
        let json = Metrics::new().to_json();
        let mem = json.get("memory").cloned().unwrap();
        // The arena always holds at least the pinned ∅/ε constants.
        assert!(mem.get("arena_nodes").and_then(Json::as_u64).unwrap() >= 2);
        assert!(mem.get("arena_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(mem.get("arena_freed_total").is_some());
        if cfg!(target_os = "linux") {
            assert!(mem.get("peak_rss_kb").and_then(Json::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn snapshot_status_reports_restore_and_writes() {
        let m = Metrics::new();
        m.update_snapshot_status(|s| {
            s.enabled = true;
            s.last_restore = RestoreOutcome::Partial;
            s.restored_sessions = 2;
            s.corrupt_sections = 1;
            s.restored_bytes = 4096;
            s.writes_total = 3;
            s.last_write = Some(Instant::now());
            s.last_write_bytes = 2048;
        });
        let json = m.to_json();
        let snap = json.get("snapshot").cloned().unwrap();
        assert_eq!(
            snap.get("last_restore").and_then(Json::as_str),
            Some("partial")
        );
        assert_eq!(
            snap.get("restored_sessions").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(snap.get("corrupt_sections").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("writes_total").and_then(Json::as_u64), Some(3));
        assert!(snap.get("snapshot_age_ms").and_then(Json::as_u64).is_some());

        // Fresh metrics: cold, no write yet, null age.
        let fresh = Metrics::new().to_json();
        let snap = fresh.get("snapshot").cloned().unwrap();
        assert_eq!(
            snap.get("last_restore").and_then(Json::as_str),
            Some("cold")
        );
        assert!(snap
            .get("snapshot_age_ms")
            .map(Json::is_null)
            .unwrap_or(false));
    }
}
