//! Server-wide counters behind the `stats` verb.
//!
//! Everything here is a relaxed atomic: the metrics path must never
//! contend with the proving path. The `stats` snapshot is advisory by
//! design — counters are read individually, so a snapshot taken while
//! requests are in flight can be momentarily inconsistent between
//! fields, which is fine for monitoring.
//!
//! The one exception is [`SnapshotStatus`]: restore outcome and flusher
//! progress are a handful of related fields an operator reads together
//! ("did this node come up warm, and how stale is its snapshot?"), so
//! they live behind a mutex updated only on restore and on each flush —
//! nowhere near the proving path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::json::{obj, Json};

// ---------------------------------------------------------------------------
// Log2 latency histograms.
// ---------------------------------------------------------------------------

/// Power-of-two buckets, enough for `u64` microseconds.
const HIST_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram of microsecond durations.
///
/// Bucket `i` counts samples in `(2^(i-1), 2^i]` microseconds (bucket 0
/// holds zeros and ones), so recording is a `leading_zeros` plus one
/// relaxed `fetch_add` — cheap enough for the reactor's per-request hot
/// path. Quantiles are read as the *upper bound* of the bucket holding
/// the target rank: a conservative estimate with at most 2x
/// overstatement, which is the right bias for latency SLO reporting.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            // floor(log2(us-1)) + 1 == index of the bucket whose upper
            // bound 2^i is the first >= us.
            (64 - (us - 1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Histogram::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one sample given as a [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (0 < q <= 1) in microseconds, as the upper
    /// bound of the bucket containing that rank; `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        // ceil(q * total), clamped to [1, total].
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i >= 63 { u64::MAX } else { 1u64 << i });
            }
        }
        Some(u64::MAX)
    }

    /// Mean in microseconds; `None` when empty.
    pub fn mean_us(&self) -> Option<u64> {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count.load(Ordering::Relaxed))
    }

    /// The `stats`-verb rendering: count, mean, p50/p90/p99.
    pub fn to_json(&self) -> Json {
        let q = |q: f64| -> Json { self.quantile_us(q).map(Json::from).unwrap_or(Json::Null) };
        obj(vec![
            ("count", self.count().into()),
            (
                "mean_us",
                self.mean_us().map(Json::from).unwrap_or(Json::Null),
            ),
            ("p50_us", q(0.50)),
            ("p90_us", q(0.90)),
            ("p99_us", q(0.99)),
        ])
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// How the daemon came up, per its last restore attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// No snapshot configured, none found, or nothing usable in it.
    Cold,
    /// Every snapshot section restored.
    Warm,
    /// Some sections restored, some were corrupt or unusable.
    Partial,
}

impl RestoreOutcome {
    /// The wire spelling, as reported by `stats` and `ready`.
    pub fn as_str(self) -> &'static str {
        match self {
            RestoreOutcome::Cold => "cold",
            RestoreOutcome::Warm => "warm",
            RestoreOutcome::Partial => "partial",
        }
    }
}

/// Snapshot-tier status: restore outcome at startup plus flusher
/// progress since. Shared so the `stats`/`ready` verbs can tell an
/// operator whether the node actually came up warm.
#[derive(Debug, Clone)]
pub struct SnapshotStatus {
    /// Whether a snapshot directory is configured at all.
    pub enabled: bool,
    /// Outcome of the startup restore.
    pub last_restore: RestoreOutcome,
    /// Bytes of the snapshot file the restore read.
    pub restored_bytes: u64,
    /// Sessions restored warm.
    pub restored_sessions: usize,
    /// Sections rejected (checksum/decode/import failure).
    pub corrupt_sections: usize,
    /// Goal-cache entries republished by the restore.
    pub restored_goals: usize,
    /// Subset-cache entries republished by the restore.
    pub restored_subsets: usize,
    /// Analyze tables restored (re-validated on first use, not here).
    pub restored_tables: usize,
    /// When the last successful snapshot write finished.
    pub last_write: Option<Instant>,
    /// Bytes of the last successful snapshot write.
    pub last_write_bytes: u64,
    /// Successful snapshot writes this process lifetime.
    pub writes_total: u64,
    /// Failed snapshot writes (real or injected I/O errors).
    pub write_errors: u64,
}

impl Default for SnapshotStatus {
    fn default() -> SnapshotStatus {
        SnapshotStatus {
            enabled: false,
            last_restore: RestoreOutcome::Cold,
            restored_bytes: 0,
            restored_sessions: 0,
            corrupt_sections: 0,
            restored_goals: 0,
            restored_subsets: 0,
            restored_tables: 0,
            last_write: None,
            last_write_bytes: 0,
            writes_total: 0,
            write_errors: 0,
        }
    }
}

impl SnapshotStatus {
    /// The `snapshot` block of the `stats` response.
    pub fn to_json(&self) -> Json {
        let age_ms = self
            .last_write
            .map(|t| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX));
        obj(vec![
            ("enabled", self.enabled.into()),
            ("last_restore", self.last_restore.as_str().into()),
            ("restored_bytes", self.restored_bytes.into()),
            ("restored_sessions", (self.restored_sessions as u64).into()),
            ("corrupt_sections", (self.corrupt_sections as u64).into()),
            ("restored_goals", (self.restored_goals as u64).into()),
            ("restored_subsets", (self.restored_subsets as u64).into()),
            ("restored_tables", (self.restored_tables as u64).into()),
            (
                "snapshot_age_ms",
                age_ms.map(Json::from).unwrap_or(Json::Null),
            ),
            ("last_write_bytes", self.last_write_bytes.into()),
            ("writes_total", self.writes_total.into()),
            ("write_errors", self.write_errors.into()),
        ])
    }
}

/// Monotonic counters for the daemon's lifetime.
pub struct Metrics {
    started: Instant,
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Request frames parsed (including ones later refused).
    pub requests_total: AtomicU64,
    /// Individual dependence queries run (prove + batch items + report).
    pub queries_total: AtomicU64,
    /// Error frames sent, any code.
    pub errors_total: AtomicU64,
    /// Requests refused by admission control specifically.
    pub overload_refusals: AtomicU64,
    /// Requests whose connection vanished mid-proof (cancelled).
    pub disconnect_cancels: AtomicU64,
    /// Connections closed for exceeding the read deadline (idle or
    /// slow-loris).
    pub read_timeouts: AtomicU64,
    /// `analyze` queries answered straight from a persisted table.
    pub analyze_replayed: AtomicU64,
    /// `analyze` queries sent through the prover.
    pub analyze_reproved: AtomicU64,
    /// Connections refused at the `--max-connections` cap.
    pub connection_refusals: AtomicU64,
    /// Request service time: first byte of the frame parsed to response
    /// enqueued on the connection's write buffer.
    pub latency_request: Histogram,
    /// Queue wait: pooled-job submission to a worker picking it up.
    pub latency_queue: Histogram,
    snapshot: Mutex<SnapshotStatus>,
}

impl Metrics {
    /// Fresh counters, clock started now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            queries_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            overload_refusals: AtomicU64::new(0),
            disconnect_cancels: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            analyze_replayed: AtomicU64::new(0),
            analyze_reproved: AtomicU64::new(0),
            connection_refusals: AtomicU64::new(0),
            latency_request: Histogram::new(),
            latency_queue: Histogram::new(),
            snapshot: Mutex::new(SnapshotStatus::default()),
        }
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Mutates the snapshot-tier status under its lock.
    pub fn update_snapshot_status(&self, f: impl FnOnce(&mut SnapshotStatus)) {
        let mut status = self.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut status);
    }

    /// A copy of the snapshot-tier status.
    pub fn snapshot_status(&self) -> SnapshotStatus {
        self.snapshot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The `memory` block of the `stats` response: regex-arena occupancy
    /// (the allocation pool bounded by session-scoped compaction) plus
    /// the process peak RSS the CI soak gates on.
    pub fn memory_json() -> Json {
        let m = apt_core::MemorySample::take();
        obj(vec![
            ("arena_bytes", (m.arena.live_bytes as u64).into()),
            ("arena_nodes", (m.arena.live_nodes as u64).into()),
            ("arena_pinned_nodes", (m.arena.pinned_nodes as u64).into()),
            ("arena_scopes", (m.arena.active_scopes as u64).into()),
            ("arena_freed_total", m.arena.freed_total.into()),
            (
                "peak_rss_kb",
                m.peak_rss_kb.map(Json::from).unwrap_or(Json::Null),
            ),
        ])
    }

    /// The server-level block of the `stats` response.
    pub fn to_json(&self) -> Json {
        let read = |c: &AtomicU64| -> Json { c.load(Ordering::Relaxed).into() };
        obj(vec![
            (
                "uptime_ms",
                u64::try_from(self.started.elapsed().as_millis())
                    .unwrap_or(u64::MAX)
                    .into(),
            ),
            ("connections_total", read(&self.connections_total)),
            ("connections_active", read(&self.connections_active)),
            ("requests_total", read(&self.requests_total)),
            ("queries_total", read(&self.queries_total)),
            ("errors_total", read(&self.errors_total)),
            ("overload_refusals", read(&self.overload_refusals)),
            ("disconnect_cancels", read(&self.disconnect_cancels)),
            ("read_timeouts", read(&self.read_timeouts)),
            ("analyze_replayed", read(&self.analyze_replayed)),
            ("analyze_reproved", read(&self.analyze_reproved)),
            ("connection_refusals", read(&self.connection_refusals)),
            (
                "latency",
                obj(vec![
                    ("request_us", self.latency_request.to_json()),
                    ("queue_wait_us", self.latency_queue.to_json()),
                ]),
            ),
            ("memory", Metrics::memory_json()),
            ("snapshot", self.snapshot_status().to_json()),
        ])
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert!(h.quantile_us(0.5).is_none());
        assert!(h.mean_us().is_none());
        // Bucket boundaries: 0,1 -> bucket 0; 2 -> 1; 3,4 -> 2; 1025 -> 11.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);

        // 90 fast samples, 10 slow ones: p50 stays in the fast bucket,
        // p99 lands in the slow one; quantiles report upper bounds.
        for _ in 0..90 {
            h.record_us(100); // bucket 7, upper bound 128
        }
        for _ in 0..10 {
            h.record_us(5000); // bucket 13, upper bound 8192
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), Some(128));
        assert_eq!(h.quantile_us(0.90), Some(128));
        assert_eq!(h.quantile_us(0.99), Some(8192));
        assert_eq!(h.quantile_us(1.0), Some(8192));
        assert_eq!(h.mean_us(), Some((90 * 100 + 10 * 5000) / 100));

        let json = h.to_json();
        assert_eq!(json.get("count").and_then(Json::as_u64), Some(100));
        assert_eq!(json.get("p50_us").and_then(Json::as_u64), Some(128));
        assert_eq!(json.get("p99_us").and_then(Json::as_u64), Some(8192));
    }

    #[test]
    fn latency_block_reaches_stats_json() {
        let m = Metrics::new();
        m.latency_request.record_us(40);
        m.latency_queue.record(std::time::Duration::from_micros(3));
        let json = m.to_json();
        let lat = json.get("latency").cloned().unwrap();
        let req = lat.get("request_us").cloned().unwrap();
        assert_eq!(req.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(req.get("p50_us").and_then(Json::as_u64), Some(64));
        let qw = lat.get("queue_wait_us").cloned().unwrap();
        assert_eq!(qw.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn counters_show_up_in_the_snapshot() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_total);
        Metrics::add(&m.queries_total, 5);
        let json = m.to_json();
        assert_eq!(json.get("requests_total").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("queries_total").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("errors_total").and_then(Json::as_u64), Some(0));
        assert!(json.get("uptime_ms").is_some());
    }

    #[test]
    fn memory_block_reports_arena_and_rss() {
        let json = Metrics::new().to_json();
        let mem = json.get("memory").cloned().unwrap();
        // The arena always holds at least the pinned ∅/ε constants.
        assert!(mem.get("arena_nodes").and_then(Json::as_u64).unwrap() >= 2);
        assert!(mem.get("arena_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(mem.get("arena_freed_total").is_some());
        if cfg!(target_os = "linux") {
            assert!(mem.get("peak_rss_kb").and_then(Json::as_u64).unwrap() > 0);
        }
    }

    #[test]
    fn snapshot_status_reports_restore_and_writes() {
        let m = Metrics::new();
        m.update_snapshot_status(|s| {
            s.enabled = true;
            s.last_restore = RestoreOutcome::Partial;
            s.restored_sessions = 2;
            s.corrupt_sections = 1;
            s.restored_bytes = 4096;
            s.writes_total = 3;
            s.last_write = Some(Instant::now());
            s.last_write_bytes = 2048;
        });
        let json = m.to_json();
        let snap = json.get("snapshot").cloned().unwrap();
        assert_eq!(
            snap.get("last_restore").and_then(Json::as_str),
            Some("partial")
        );
        assert_eq!(
            snap.get("restored_sessions").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(snap.get("corrupt_sections").and_then(Json::as_u64), Some(1));
        assert_eq!(snap.get("writes_total").and_then(Json::as_u64), Some(3));
        assert!(snap.get("snapshot_age_ms").and_then(Json::as_u64).is_some());

        // Fresh metrics: cold, no write yet, null age.
        let fresh = Metrics::new().to_json();
        let snap = fresh.get("snapshot").cloned().unwrap();
        assert_eq!(
            snap.get("last_restore").and_then(Json::as_str),
            Some("cold")
        );
        assert!(snap
            .get("snapshot_age_ms")
            .map(Json::is_null)
            .unwrap_or(false));
    }
}
