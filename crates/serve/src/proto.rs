//! The JSON-lines wire protocol: request frames in, response frames out.
//!
//! One request per line, one response per line, in order. Every request
//! is an object with a `"verb"` field; every response is an object with
//! `"ok"` (and the request's `"id"` echoed back when one was given).
//! Failures are *structured*: `{"ok":false,"error":"<code>",
//! "message":"…"}` — a malformed frame gets an error response on the
//! same connection, never a dropped connection or a server panic.
//!
//! Verbs: `hello`, `open_session`, `close_session`, `prove`, `batch`,
//! `report`, `analyze`, `invalidate`, `stats`, `health`, `ready`,
//! `shutdown`. See `DESIGN.md` §"The serving layer" for the full frame
//! reference.
//!
//! The protocol is versioned: [`PROTO_VERSION`] names the highest frame
//! dialect this build speaks, `hello`/`stats`/`ready` report it, and a
//! verb this build does not know earns a machine-readable
//! [`ErrorCode::Unsupported`] frame (carrying the rejected verb and the
//! server's version) instead of a generic `bad_request` — so an old
//! client can detect a feature gap and degrade, and a new client
//! talking to an old server gets a parseable refusal rather than a
//! guessing game.

use apt_core::{
    Answer, Budget, EngineSelection, EngineTally, MaybeReason, Outcome, PortfolioStats, ProverStats,
};
use apt_regex::Path;
use std::time::Duration;

use crate::json::{obj, parse, Json};

/// The wire-protocol version this build speaks.
///
/// * **1** — the original dialect: `open_session`, `close_session`,
///   `prove`, `batch`, `report`, `stats`, `health`, `ready`,
///   `shutdown`.
/// * **2** — adds `hello` (version/verb discovery), `analyze`
///   (whole-program incremental dependence tables), and `invalidate`
///   (dropping persisted analyze state); unknown verbs now answer
///   `unsupported` instead of `bad_request`.
/// * **3** — portfolio solving: `prove`/`batch` queries accept an
///   `"engines"` selection (`"all"`, `"axiomatic"`, or a comma list of
///   `axiomatic`/`dyck`/`refuter`), outcome frames carry `"engine"`
///   (which backend settled the query) and `"witness"` (an encoded
///   concrete dependence heap for refuter `Yes` answers), and `stats`
///   reports per-engine win/loss/cancel tallies under `"portfolio"`.
///
/// Frames from a v1/v2 client are a strict subset of v3, so old
/// clients interoperate unchanged.
pub const PROTO_VERSION: u64 = 3;

/// Every verb this build understands, in documentation order. The
/// `hello` response carries this list so clients can feature-detect
/// without trial-and-error.
pub const SUPPORTED_VERBS: &[&str] = &[
    "hello",
    "open_session",
    "close_session",
    "prove",
    "batch",
    "report",
    "analyze",
    "invalidate",
    "stats",
    "health",
    "ready",
    "shutdown",
];

/// Error codes a response frame can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON (or not an object).
    ParseError,
    /// The frame was JSON but missing/mistyping required fields.
    BadRequest,
    /// The verb is well-formed but not one this server speaks — the
    /// frame carries the rejected verb and the server's
    /// [`PROTO_VERSION`] so version-skewed clients can negotiate down.
    Unsupported,
    /// The named session does not exist (never opened, or evicted).
    NoSuchSession,
    /// Admission control refused the request: the work queue is past its
    /// high-water mark. Back off and retry — the 429 of this protocol.
    Overloaded,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// The connection sat idle past the read deadline, or dribbled a
    /// partial frame past it (slow-loris). The server sends this frame,
    /// then closes the connection.
    Timeout,
    /// The request crashed the worker; the fault was isolated.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::NoSuchSession => "no_such_session",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A structured protocol failure (maps to an error response frame).
#[derive(Debug, Clone)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::Unsupported`]: the verb the client sent,
    /// echoed back machine-readably (`"verb"` in the error frame,
    /// beside `"proto_version"`).
    pub verb: Option<String>,
}

impl ProtoError {
    /// A bad-request error with a message.
    pub fn bad(message: impl Into<String>) -> ProtoError {
        ProtoError {
            code: ErrorCode::BadRequest,
            message: message.into(),
            verb: None,
        }
    }

    /// An unsupported-verb error naming the rejected verb.
    pub fn unsupported(verb: impl Into<String>) -> ProtoError {
        let verb = verb.into();
        ProtoError {
            code: ErrorCode::Unsupported,
            message: format!("verb {verb:?} is not supported at proto_version {PROTO_VERSION}"),
            verb: Some(verb),
        }
    }
}

/// Per-request budget overrides carried on the wire. Every field is
/// optional; the server clamps whatever arrives against its ceiling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireBudget {
    /// Goal-attempt fuel.
    pub fuel: Option<u64>,
    /// Wall-clock allowance, milliseconds.
    pub deadline_ms: Option<u64>,
    /// DFA states any one subset construction may build.
    pub max_dfa_states: Option<usize>,
}

impl WireBudget {
    fn from_frame(frame: &Json) -> Result<WireBudget, ProtoError> {
        let field = |name: &str| -> Result<Option<u64>, ProtoError> {
            match frame.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                    ProtoError::bad(format!("{name} must be a non-negative integer"))
                }),
            }
        };
        Ok(WireBudget {
            fuel: field("fuel")?,
            deadline_ms: field("deadline_ms")?,
            max_dfa_states: field("max_dfa_states")?
                .map(|v| {
                    usize::try_from(v)
                        .map_err(|_| ProtoError::bad("max_dfa_states does not fit in usize"))
                })
                .transpose()?,
        })
    }

    /// Whether no override was given at all.
    pub fn is_empty(&self) -> bool {
        *self == WireBudget::default()
    }

    /// Applies the overrides on top of `base` (the server default),
    /// then clamps the result against `ceiling` so no client can exceed
    /// the operator's limits.
    pub fn resolve(&self, base: &Budget, ceiling: &Budget) -> Budget {
        let mut requested = base.clone();
        if let Some(fuel) = self.fuel {
            requested.fuel = fuel;
        }
        if let Some(ms) = self.deadline_ms {
            requested.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(states) = self.max_dfa_states {
            requested.max_dfa_states = Some(states);
        }
        requested.clamped_to(ceiling)
    }
}

/// One dependence query as it appears on the wire (inside `prove` or a
/// `batch` array).
#[derive(Debug, Clone)]
pub struct WireQuery {
    /// `"disjoint"` (default) or `"equal"`.
    pub equal: bool,
    /// First access path.
    pub a: Path,
    /// Second access path.
    pub b: Path,
    /// `"same"` (default) or `"distinct"` origin.
    pub distinct: bool,
    /// Whether the response should carry the rendered proof text
    /// (`"proof": true` on the wire) instead of just `true`/`null`.
    pub want_proof: bool,
    /// Per-query budget overrides.
    pub budget: WireBudget,
    /// Per-query engine selection (`"engines"` on the wire): race the
    /// named backends instead of the server's default roster.
    pub engines: Option<EngineSelection>,
}

impl WireQuery {
    fn from_frame(frame: &Json) -> Result<WireQuery, ProtoError> {
        let path_field = |name: &str| -> Result<Path, ProtoError> {
            let text = frame
                .get(name)
                .and_then(Json::as_str)
                .ok_or_else(|| ProtoError::bad(format!("missing path field {name:?}")))?;
            Path::parse(text).map_err(|e| ProtoError::bad(format!("bad path {name:?}: {e}")))
        };
        let equal = match frame.get("kind").and_then(Json::as_str) {
            None | Some("disjoint") => false,
            Some("equal") => true,
            Some(other) => {
                return Err(ProtoError::bad(format!(
                    "kind must be \"disjoint\" or \"equal\", got {other:?}"
                )))
            }
        };
        let distinct = match frame.get("origin").and_then(Json::as_str) {
            None | Some("same") => false,
            Some("distinct") => true,
            Some(other) => {
                return Err(ProtoError::bad(format!(
                    "origin must be \"same\" or \"distinct\", got {other:?}"
                )))
            }
        };
        let want_proof = match frame.get("proof") {
            None | Some(Json::Null) => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ProtoError::bad("proof must be a boolean"))?,
        };
        Ok(WireQuery {
            equal,
            a: path_field("a")?,
            b: path_field("b")?,
            distinct,
            want_proof,
            budget: WireBudget::from_frame(frame)?,
            engines: engines_field(frame)?,
        })
    }
}

/// Reads the optional `"engines"` selection off a frame (`"all"`,
/// `"axiomatic"`, or a comma list of engine names).
fn engines_field(frame: &Json) -> Result<Option<EngineSelection>, ProtoError> {
    match frame.get("engines") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let spec = v
                .as_str()
                .ok_or_else(|| ProtoError::bad("engines must be a string"))?;
            EngineSelection::parse(spec)
                .map(Some)
                .map_err(|e| ProtoError::bad(format!("engines: {e}")))
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Version/verb discovery: the reply carries `proto_version` and
    /// the `verbs` list so clients can feature-detect up front.
    Hello,
    /// Register an axiom set; the reply names the (possibly deduplicated)
    /// session.
    OpenSession {
        /// Axiom text — ADDS or one-axiom-per-line, auto-detected.
        axioms: String,
    },
    /// Drop a session eagerly (idle sessions are also LRU-evicted).
    CloseSession {
        /// The session to drop.
        session: String,
    },
    /// One dependence query against an open session.
    Prove {
        /// The session whose engine (and warm caches) to use.
        session: String,
        /// The query itself.
        query: WireQuery,
    },
    /// A batch of queries against one session, deduplicated and fanned
    /// out by the engine.
    Batch {
        /// The session whose engine to use.
        session: String,
        /// The queries, in caller order.
        queries: Vec<WireQuery>,
        /// Worker threads for the batch (clamped by the server).
        jobs: Option<usize>,
        /// Engine selection for the whole batch (overrides the server
        /// default roster).
        engines: Option<EngineSelection>,
    },
    /// A whole-program parallelization report (the `apt report`
    /// workload) — the program text carries its own axioms.
    Report {
        /// Program text in the `apt-ir` mini language.
        program: String,
        /// Restrict to one procedure.
        proc: Option<String>,
        /// Budget overrides for the report's queries.
        budget: WireBudget,
        /// Engine selection for the report's queries.
        engines: Option<EngineSelection>,
    },
    /// Whole-program incremental dependence analysis: derive the full
    /// dependence table for every procedure of `program`, replaying
    /// persisted verdicts for procedures whose content hashes are
    /// unchanged since the last `analyze` under the same table `name`.
    Analyze {
        /// Program text in the `apt-ir` mini language.
        program: String,
        /// Which persistent table to read/update (defaults to
        /// `"default"`); tables survive restarts via snapshots.
        name: String,
        /// Worker threads for the fresh queries (clamped by the server).
        jobs: Option<usize>,
        /// When true, the response lists only procedures that had work
        /// re-proved (display filter; totals still cover everything).
        changed_only: bool,
        /// Budget overrides for the analysis' queries.
        budget: WireBudget,
        /// Engine selection for the analysis' fresh queries.
        engines: Option<EngineSelection>,
    },
    /// Drop persisted analyze state: one procedure's entry, or a whole
    /// table.
    Invalidate {
        /// Which table to touch (defaults to `"default"`).
        name: String,
        /// Drop just this procedure's verdicts; `None` drops the whole
        /// table.
        proc: Option<String>,
    },
    /// A live metrics snapshot.
    Stats,
    /// Liveness probe: answers on any serving process, even one
    /// draining for shutdown.
    Health,
    /// Readiness probe: additionally reports whether the node accepts
    /// new work and whether it came up warm from a snapshot.
    Ready,
    /// Graceful shutdown: respond, then drain and exit.
    Shutdown,
}

/// Parses one request line into `(echoed id, request)`.
///
/// # Errors
///
/// Returns a [`ProtoError`] whose code distinguishes JSON-level from
/// frame-level failures; the caller turns it into an error frame.
pub fn parse_request(line: &str) -> Result<(Option<Json>, Request), ProtoError> {
    let frame = parse(line).map_err(|e| ProtoError {
        code: ErrorCode::ParseError,
        message: e.to_string(),
        verb: None,
    })?;
    if !matches!(frame, Json::Obj(_)) {
        return Err(ProtoError {
            code: ErrorCode::ParseError,
            message: "request frame must be a JSON object".to_owned(),
            verb: None,
        });
    }
    let id = frame.get("id").cloned();
    let str_field = |name: &str| -> Result<String, ProtoError> {
        frame
            .get(name)
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProtoError::bad(format!("missing string field {name:?}")))
    };
    let verb = str_field("verb")?;
    let request = match verb.as_str() {
        "open_session" => Request::OpenSession {
            axioms: str_field("axioms")?,
        },
        "close_session" => Request::CloseSession {
            session: str_field("session")?,
        },
        "prove" => Request::Prove {
            session: str_field("session")?,
            query: WireQuery::from_frame(&frame)?,
        },
        "batch" => {
            let items = frame
                .get("queries")
                .and_then(Json::as_array)
                .ok_or_else(|| ProtoError::bad("batch needs a \"queries\" array"))?;
            let queries = items
                .iter()
                .map(WireQuery::from_frame)
                .collect::<Result<Vec<_>, _>>()?;
            let jobs = match frame.get("jobs") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| ProtoError::bad("jobs must be a positive integer"))?,
                ),
            };
            Request::Batch {
                session: str_field("session")?,
                queries,
                jobs,
                engines: engines_field(&frame)?,
            }
        }
        "report" => Request::Report {
            program: str_field("program")?,
            proc: frame.get("proc").and_then(Json::as_str).map(str::to_owned),
            budget: WireBudget::from_frame(&frame)?,
            engines: engines_field(&frame)?,
        },
        "hello" => Request::Hello,
        "analyze" => {
            let jobs = match frame.get("jobs") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|n| usize::try_from(n).ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| ProtoError::bad("jobs must be a positive integer"))?,
                ),
            };
            let changed_only = match frame.get("changed_only") {
                None | Some(Json::Null) => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| ProtoError::bad("changed_only must be a boolean"))?,
            };
            Request::Analyze {
                program: str_field("program")?,
                name: table_name(&frame)?,
                jobs,
                changed_only,
                budget: WireBudget::from_frame(&frame)?,
                engines: engines_field(&frame)?,
            }
        }
        "invalidate" => Request::Invalidate {
            name: table_name(&frame)?,
            proc: frame.get("proc").and_then(Json::as_str).map(str::to_owned),
        },
        "stats" => Request::Stats,
        "health" => Request::Health,
        "ready" => Request::Ready,
        "shutdown" => Request::Shutdown,
        other => return Err(ProtoError::unsupported(other)),
    };
    Ok((id, request))
}

/// Reads the optional `"name"` field naming an analyze table,
/// defaulting to `"default"`.
fn table_name(frame: &Json) -> Result<String, ProtoError> {
    match frame.get("name") {
        None | Some(Json::Null) => Ok("default".to_owned()),
        Some(v) => v
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| ProtoError::bad("name must be a string")),
    }
}

fn frame_base(id: Option<&Json>, ok: bool) -> Vec<(&'static str, Json)> {
    let mut pairs = vec![("ok", Json::Bool(ok))];
    if let Some(id) = id {
        pairs.push(("id", id.clone()));
    }
    pairs
}

/// An error response frame. `unsupported` frames additionally carry
/// the rejected `verb` and the server's `proto_version` so clients can
/// negotiate without parsing prose.
pub fn error_frame(id: Option<&Json>, error: &ProtoError) -> Json {
    let mut pairs = frame_base(id, false);
    pairs.push(("error", error.code.as_str().into()));
    pairs.push(("message", error.message.as_str().into()));
    if let Some(verb) = &error.verb {
        pairs.push(("verb", verb.as_str().into()));
        pairs.push(("proto_version", PROTO_VERSION.into()));
    }
    obj(pairs)
}

/// A success frame with extra fields.
pub fn ok_frame(id: Option<&Json>, extra: Vec<(&'static str, Json)>) -> Json {
    let mut pairs = frame_base(id, true);
    pairs.extend(extra);
    obj(pairs)
}

/// Renders prover work counters for a response or the `stats` verb.
pub fn stats_json(stats: &ProverStats) -> Json {
    obj(vec![
        ("goals_attempted", stats.goals_attempted.into()),
        ("cache_hits", stats.cache_hits.into()),
        ("shared_hits", stats.shared_hits.into()),
        ("subset_checks", stats.subset_checks.into()),
        ("dispatch_hits", stats.dispatch_hits.into()),
        ("dispatch_misses", stats.dispatch_misses.into()),
        ("neg_memo_hits", stats.neg_memo_hits.into()),
        (
            "cutoffs",
            obj(vec![
                ("fuel", stats.cutoffs.fuel.into()),
                ("depth", stats.cutoffs.depth.into()),
                ("rewrites", stats.cutoffs.rewrites.into()),
                ("deadline", stats.cutoffs.deadline.into()),
                ("regex_budget", stats.cutoffs.regex_budget.into()),
                ("cancelled", stats.cutoffs.cancelled.into()),
            ]),
        ),
    ])
}

/// Renders one query outcome as the response-body fields shared by
/// `prove` (top level) and `batch` (per-result array entries).
pub fn outcome_json(outcome: &Outcome, include_proof: bool) -> Json {
    let reason = match outcome.verdict.reason {
        Some(r) => Json::Str(r.code().to_owned()),
        None => Json::Null,
    };
    let proof = match (&outcome.proof, include_proof) {
        (Some(p), true) => Json::Str(p.to_string()),
        (Some(_), false) => Json::Bool(true),
        (None, _) => Json::Null,
    };
    let witness = match &outcome.witness {
        Some(w) => Json::Str(w.encode()),
        None => Json::Null,
    };
    obj(vec![
        ("answer", outcome.verdict.answer.as_str().into()),
        ("reason", reason),
        ("degraded", outcome.verdict.is_degraded().into()),
        ("proof", proof),
        ("engine", outcome.engine.code().into()),
        ("witness", witness),
        ("stats", stats_json(&outcome.stats)),
    ])
}

/// Renders cumulative per-engine race tallies for the `stats` verb.
pub fn portfolio_json(stats: &PortfolioStats) -> Json {
    let tally = |t: EngineTally| {
        obj(vec![
            ("wins", t.wins.into()),
            ("losses", t.losses.into()),
            ("cancelled", t.cancelled.into()),
        ])
    };
    obj(vec![
        ("axiomatic", tally(stats.axiomatic)),
        ("dyck", tally(stats.dyck)),
        ("refuter", tally(stats.refuter)),
        ("witnesses", stats.witnesses.into()),
    ])
}

/// Reads `(answer, reason)` back out of an outcome/result frame —
/// the client-side inverse of [`outcome_json`].
pub fn parse_verdict(frame: &Json) -> Option<(Answer, Option<MaybeReason>)> {
    let answer = Answer::from_str_opt(frame.get("answer")?.as_str()?)?;
    let reason = match frame.get("reason") {
        None | Some(Json::Null) => None,
        Some(r) => Some(MaybeReason::from_code(r.as_str()?)?),
    };
    Some((answer, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_prove_frames() {
        let (id, req) = parse_request(
            r#"{"id": 7, "verb":"prove", "session":"s0", "a":"L.L.N", "b":"L.R.N",
               "origin":"distinct", "fuel": 50, "deadline_ms": 100}"#,
        )
        .unwrap();
        assert_eq!(id, Some(Json::Num(7.0)));
        let Request::Prove { session, query } = req else {
            panic!("wrong verb");
        };
        assert_eq!(session, "s0");
        assert!(!query.equal);
        assert!(query.distinct);
        assert_eq!(query.budget.fuel, Some(50));
        assert_eq!(query.budget.deadline_ms, Some(100));
    }

    #[test]
    fn parses_engine_selections() {
        let (_, req) = parse_request(
            r#"{"verb":"prove","session":"s0","a":"L","b":"R","engines":"dyck,refuter"}"#,
        )
        .unwrap();
        let Request::Prove { query, .. } = req else {
            panic!("wrong verb");
        };
        let sel = query.engines.expect("engines parsed");
        assert!(!sel.axiomatic && sel.dyck && sel.refuter);

        // Omitted means "server default", not "none".
        let (_, req) = parse_request(r#"{"verb":"prove","session":"s0","a":"L","b":"R"}"#).unwrap();
        let Request::Prove { query, .. } = req else {
            panic!("wrong verb");
        };
        assert!(query.engines.is_none());

        let e =
            parse_request(r#"{"verb":"prove","session":"s0","a":"L","b":"R","engines":"warlock"}"#)
                .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn rejects_malformed_frames_with_codes() {
        let e = parse_request("not json").unwrap_err();
        assert_eq!(e.code, ErrorCode::ParseError);
        let e = parse_request("[1,2]").unwrap_err();
        assert_eq!(e.code, ErrorCode::ParseError);
        let e = parse_request(r#"{"verb":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::Unsupported);
        assert_eq!(e.verb.as_deref(), Some("frobnicate"));
        let e = parse_request(r#"{"verb":"prove","session":"s0","a":"L..L","b":"R"}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = parse_request(r#"{"verb":"prove","session":"s0","a":"L","b":"R","fuel":-1}"#)
            .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }

    #[test]
    fn parses_versioned_verbs() {
        let (_, req) = parse_request(r#"{"verb":"hello"}"#).unwrap();
        assert!(matches!(req, Request::Hello));

        let (_, req) = parse_request(
            r#"{"verb":"analyze","program":"proc p() {}","jobs":4,"changed_only":true}"#,
        )
        .unwrap();
        let Request::Analyze {
            name,
            jobs,
            changed_only,
            ..
        } = req
        else {
            panic!("wrong verb");
        };
        assert_eq!(name, "default", "table name defaults");
        assert_eq!(jobs, Some(4));
        assert!(changed_only);

        let (_, req) =
            parse_request(r#"{"verb":"invalidate","name":"t1","proc":"update"}"#).unwrap();
        let Request::Invalidate { name, proc } = req else {
            panic!("wrong verb");
        };
        assert_eq!(name, "t1");
        assert_eq!(proc.as_deref(), Some("update"));
    }

    #[test]
    fn unsupported_frames_carry_verb_and_version() {
        let e = parse_request(r#"{"verb":"frobnicate"}"#).unwrap_err();
        let text = error_frame(None, &e).render();
        assert!(text.contains(r#""error":"unsupported""#), "{text}");
        assert!(text.contains(r#""verb":"frobnicate""#), "{text}");
        assert!(text.contains(r#""proto_version":3"#), "{text}");
    }

    #[test]
    fn budget_resolution_clamps_to_ceiling() {
        let ceiling = Budget::new()
            .with_fuel(1000)
            .with_deadline(Duration::from_millis(500));
        let wire = WireBudget {
            fuel: Some(5000),
            deadline_ms: Some(100),
            max_dfa_states: Some(64),
        };
        let resolved = wire.resolve(&ceiling, &ceiling);
        assert_eq!(resolved.fuel, 1000, "fuel clamped");
        assert_eq!(resolved.deadline, Some(Duration::from_millis(100)));
        assert_eq!(resolved.max_dfa_states, Some(64));
        // No overrides: the ceiling itself.
        let resolved = WireBudget::default().resolve(&ceiling, &ceiling);
        assert_eq!(resolved.fuel, 1000);
        assert_eq!(resolved.deadline, Some(Duration::from_millis(500)));
    }

    #[test]
    fn error_frames_are_structured() {
        let frame = error_frame(
            Some(&Json::Str("q1".into())),
            &ProtoError::bad("missing field"),
        );
        let text = frame.render();
        assert!(text.contains(r#""ok":false"#), "{text}");
        assert!(text.contains(r#""error":"bad_request""#), "{text}");
        assert!(text.contains(r#""id":"q1""#), "{text}");
    }
}
