//! Thin entry point for the `apt` CLI; all logic lives in the library so
//! it is unit-testable.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match apt_cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            std::process::exit(out.exit_code());
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
