//! Thin entry point for the `apt` CLI; all logic lives in the library so
//! it is unit-testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match apt_cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
