//! The `apt` command-line tool: run the APT dependence test from the
//! shell.
//!
//! ```text
//! apt prove  <axioms-file> <path1> <path2> [--distinct | --unknown]
//! apt apm    <program-file> --proc <name>
//! apt query  <program-file> --proc <name> --from <S> --to <T>
//! apt query  <program-file> --proc <name> --carried <U> [--loop <L>]
//! apt report <program-file> [--proc <name>]
//! apt batch  <program-file> [--proc <name>] [--jobs <n>]
//! apt analyze <program-file> [--baseline <file>] [--changed-only]
//! ```
//!
//! Every proving subcommand accepts resource-governance flags
//! (`--fuel <n>`, `--deadline-ms <n>`, `--max-dfa-states <n>`); running
//! out of any budget degrades the answer to an explicit Maybe — it never
//! crashes and never flips a verdict. Exit codes: `0` when every answer
//! was definite, `1` when some answer was Maybe (degraded or genuinely
//! unknown), `2` on usage or parse errors.
//!
//! Axiom files are either ADDS descriptions (`structure … { tree L, R; }`)
//! or one axiom per line (`A1: forall p, p.L <> p.R`); the format is
//! auto-detected. Program files use the `apt-ir` mini language.
//!
//! The library half exists so the subcommands are unit-testable; `main`
//! is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use apt_axioms::{adds, AxiomSet};
use apt_core::{
    check_proof, Answer, Budget, DepEngine, DepQuery, EngineKind, EngineSelection, MaybeReason,
    Origin, Portfolio, PortfolioConfig, PortfolioStats, Prover, ProverConfig, ProverStats,
    TallySink,
};
use apt_paths::{
    analyze_proc, analyze_program, Analysis, BatchOptions, BatchQuery, DepTable, ProgramAnalysis,
    QueryError, RowOutcome,
};
use apt_regex::Path;
use apt_serve::json::{obj, Json};
use apt_serve::{
    AnalyzeSection, Client, SectionOutcome, ServeConfig, Server, SessionSection, Snapshot,
};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A CLI failure: message for stderr, nonzero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The result of a successfully-dispatched subcommand: the text to print
/// plus whether any answer fell back to Maybe (which drives the exit
/// code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text for stdout.
    pub text: String,
    /// Whether any query answered Maybe — degraded or genuinely unknown.
    pub any_maybe: bool,
}

impl CmdOutput {
    fn clean(text: String) -> CmdOutput {
        CmdOutput {
            text,
            any_maybe: false,
        }
    }

    /// Process exit code: `0` when every answer was definite, `1` when
    /// some answer was Maybe. (Usage/parse errors exit `2` via
    /// [`CliError`].)
    pub fn exit_code(&self) -> i32 {
        i32::from(self.any_maybe)
    }
}

impl std::ops::Deref for CmdOutput {
    type Target = String;
    fn deref(&self) -> &String {
        &self.text
    }
}

impl std::fmt::Display for CmdOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[doc(hidden)]
pub mod test_support {
    //! Internal fault-injection hooks for the robustness tests. Not part
    //! of the public interface.
    use std::cell::RefCell;

    thread_local! {
        static PANIC_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// Makes the per-loop report query for `label` panic (on this thread
    /// only). Pass `None` to clear.
    pub fn inject_report_panic(label: Option<&str>) {
        PANIC_LABEL.with(|c| *c.borrow_mut() = label.map(str::to_owned));
    }

    pub(crate) fn should_panic_for(label: &str) -> bool {
        PANIC_LABEL.with(|c| c.borrow().as_deref() == Some(label))
    }
}

/// Portfolio racing options shared by the proving subcommands: the
/// configuration (`None` leaves the axiomatic prover running alone, the
/// pre-portfolio behavior) plus the tally sink every race reports into,
/// so one command's queries aggregate into one set of totals.
#[derive(Debug, Clone, Default)]
pub struct PortfolioOpts {
    config: Option<PortfolioConfig>,
    tallies: TallySink,
}

impl PortfolioOpts {
    /// Parses `--engines <all|comma-list>` and `--refuter-max-heap <n>`.
    /// `--refuter-max-heap` without `--engines` implies `--engines all`.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] on a malformed flag value.
    pub fn from_flags(args: &[String]) -> Result<PortfolioOpts, CliError> {
        let value = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
        };
        let engines = match value("--engines") {
            Some(spec) => {
                Some(EngineSelection::parse(spec).map_err(|e| fail(format!("--engines: {e}")))?)
            }
            None => None,
        };
        let max_heap = match value("--refuter-max-heap") {
            Some(v) => Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                fail(format!(
                    "--refuter-max-heap needs a positive integer, got {v:?}"
                ))
            })?),
            None => None,
        };
        let config = match (engines, max_heap) {
            (None, None) => None,
            (sel, heap) => {
                let mut cfg = PortfolioConfig::default();
                if let Some(sel) = sel {
                    cfg.engines = sel;
                }
                if let Some(heap) = heap {
                    cfg.refuter_max_heap = heap;
                }
                Some(cfg)
            }
        };
        Ok(PortfolioOpts {
            config,
            tallies: TallySink::new(),
        })
    }

    /// Portfolio racing disabled (the default).
    pub fn off() -> PortfolioOpts {
        PortfolioOpts::default()
    }

    /// The parsed configuration, when racing was requested.
    pub fn config(&self) -> Option<&PortfolioConfig> {
        self.config.as_ref()
    }

    fn apply(&self, analysis: &mut Analysis) {
        if let Some(cfg) = &self.config {
            analysis.set_portfolio_config(cfg.clone());
            analysis.set_portfolio_tallies(self.tallies.clone());
        }
    }

    fn apply_program(&self, analysis: &mut ProgramAnalysis) {
        if let Some(cfg) = &self.config {
            analysis.set_portfolio_config(cfg.clone());
            analysis.set_portfolio_tallies(&self.tallies);
        }
    }

    fn stats(&self) -> Option<PortfolioStats> {
        self.config.as_ref().map(|_| self.tallies.stats())
    }
}

/// Renders the per-engine race tallies (the `apt report` / `apt batch`
/// portfolio footer).
fn render_portfolio_stats(out: &mut String, stats: &PortfolioStats) {
    let _ = writeln!(out, "-- portfolio: engine races --");
    for kind in EngineKind::ALL {
        let t = stats.tally(kind);
        let _ = writeln!(
            out,
            "{:<10} {} won, {} lost, {} cancelled",
            kind.code(),
            t.wins,
            t.losses,
            t.cancelled
        );
    }
    let _ = writeln!(out, "(dependence witnesses found: {})", stats.witnesses);
}

/// Parses an axiom file: ADDS syntax if any line starts with an ADDS
/// keyword, otherwise one axiom per line.
///
/// # Errors
///
/// Returns a [`CliError`] describing the parse failure.
pub fn load_axioms(text: &str) -> Result<AxiomSet, CliError> {
    adds::parse_axioms_auto(text).map_err(|e| fail(e.to_string()))
}

/// `apt prove`: tests two access paths under an axiom set.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_prove(
    axioms_text: &str,
    path_a: &str,
    path_b: &str,
    origin: Origin,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let axioms = load_axioms(axioms_text)?;
    let a = Path::parse(path_a).map_err(|e| fail(e.to_string()))?;
    let b = Path::parse(path_b).map_err(|e| fail(e.to_string()))?;
    let mut out = String::new();
    let mut any_maybe = false;
    let _ = writeln!(out, "axioms:\n{axioms}");
    if let Some(cfg) = &portfolio.config {
        return prove_portfolio(
            &axioms,
            &a,
            &b,
            origin,
            config,
            cfg,
            &portfolio.tallies,
            out,
        );
    }
    let mut prover = Prover::with_config(&axioms, config.clone());
    let result = DepQuery::disjoint(&a, &b)
        .origin(origin)
        .run_with(&mut prover);
    let (proof, why) = (result.proof, result.maybe_reason);
    match proof {
        Some(proof) => {
            check_proof(&axioms, &proof).map_err(|e| fail(format!("internal: {e}")))?;
            let quant = match origin {
                Origin::Same => "forall x",
                Origin::Distinct => "forall x <> y",
            };
            let _ = writeln!(out, "{quant}: x.{a} <> y-or-x.{b} — No dependence (PROVEN)");
            let _ = writeln!(out, "\n{proof}");
            let stats = prover.stats();
            let _ = writeln!(
                out,
                "({} goals, {} subset checks, proof of {} nodes, checked)",
                stats.goals_attempted,
                stats.subset_checks,
                proof.node_count()
            );
            let _ = writeln!(
                out,
                "(dispatch: {} admitted, {} pruned; {} negative-memo hits)",
                stats.dispatch_hits, stats.dispatch_misses, stats.neg_memo_hits
            );
        }
        None => {
            any_maybe = true;
            let why = why.unwrap_or(MaybeReason::GenuinelyUnknown);
            let _ = writeln!(out, "{a} <> {b}: Maybe ({why})");
            if why.is_degraded() {
                let _ = writeln!(
                    out,
                    "(resource limit reached — retry with a larger \
                     --fuel / --deadline-ms / --max-dfa-states)"
                );
            }
        }
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// The `apt prove --engines …` path: race the selected backends and
/// render whichever verdict settled first, with its provenance. A Yes
/// carries the refuter's concrete witness heap, re-validated here the
/// same way a No's proof object is re-checked.
#[allow(clippy::too_many_arguments)]
fn prove_portfolio(
    axioms: &AxiomSet,
    a: &Path,
    b: &Path,
    origin: Origin,
    config: &ProverConfig,
    cfg: &PortfolioConfig,
    tallies: &TallySink,
    mut out: String,
) -> Result<CmdOutput, CliError> {
    let engine = DepEngine::with_config(axioms.clone(), config.clone());
    let racer = Portfolio::new(engine, cfg.clone()).with_tallies(tallies);
    let dep = DepQuery::disjoint(a, b).origin(origin);
    let outcome = racer.run(&dep);
    let _ = writeln!(out, "engines: {}", cfg.engines);
    let mut any_maybe = false;
    match outcome.verdict.answer {
        Answer::No => {
            let quant = match origin {
                Origin::Same => "forall x",
                Origin::Distinct => "forall x <> y",
            };
            match &outcome.proof {
                Some(proof) => {
                    check_proof(axioms, proof).map_err(|e| fail(format!("internal: {e}")))?;
                    let _ = writeln!(
                        out,
                        "{quant}: x.{a} <> y-or-x.{b} — No dependence (PROVEN, engine: {})",
                        outcome.engine
                    );
                    let _ = writeln!(out, "\n{proof}");
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{quant}: x.{a} <> y-or-x.{b} — No dependence (engine: {})",
                        outcome.engine
                    );
                }
            }
        }
        Answer::Yes => {
            let _ = writeln!(
                out,
                "{a} <> {b}: Yes — dependence exists (engine: {})",
                outcome.engine
            );
            if let Some(witness) = &outcome.witness {
                witness
                    .validate(axioms, origin, a, b)
                    .map_err(|e| fail(format!("internal: witness rejected: {e}")))?;
                let _ = writeln!(out, "witness: {witness} (re-validated)");
            }
        }
        Answer::Maybe => {
            any_maybe = true;
            let why = outcome
                .maybe_reason
                .unwrap_or(MaybeReason::GenuinelyUnknown);
            let _ = writeln!(out, "{a} <> {b}: Maybe ({why})");
            if why.is_degraded() {
                let _ = writeln!(
                    out,
                    "(resource limit reached — retry with a larger \
                     --fuel / --deadline-ms / --max-dfa-states)"
                );
            }
        }
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

fn analyze(
    program_text: &str,
    proc_name: Option<&str>,
    config: &ProverConfig,
) -> Result<(String, Analysis), CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    let name = match proc_name {
        Some(n) => n.to_owned(),
        None => program
            .procs
            .first()
            .map(|p| p.name.clone())
            .ok_or_else(|| fail("program has no procedures"))?,
    };
    let analysis =
        analyze_proc(&program, &name).map_err(|e| fail(format!("cannot analyze {name:?}: {e}")))?;
    Ok((name, analysis.with_prover_config(config.clone())))
}

/// `apt apm`: prints the access-path matrix at every labeled access.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_apm(program_text: &str, proc_name: Option<&str>) -> Result<CmdOutput, CliError> {
    let (name, analysis) = analyze(program_text, proc_name, &ProverConfig::default())?;
    let mut out = String::new();
    let _ = writeln!(out, "procedure {name}: access-path matrices\n");
    for snap in analysis.snapshots() {
        let kind = if snap.access.is_write {
            "write"
        } else {
            "read"
        };
        let _ = writeln!(
            out,
            "-- {}: {} of {}->{} --",
            snap.label, kind, snap.access.ptr, snap.access.field
        );
        let _ = writeln!(out, "{}", snap.apm);
    }
    if analysis.labels().is_empty() {
        let _ = writeln!(out, "(no labeled memory accesses)");
    }
    Ok(CmdOutput::clean(out))
}

/// Renders an outcome; returns whether it was a Maybe.
fn render_outcome(out: &mut String, outcome: &apt_core::TestOutcome) -> bool {
    let _ = writeln!(out, "answer: {}", outcome.verdict());
    if let Some(engine) = outcome.engine {
        if engine != EngineKind::Axiomatic {
            let _ = writeln!(out, "(settled by the {engine} engine)");
        }
    }
    if let Some(witness) = &outcome.witness {
        let _ = writeln!(out, "witness: {witness}");
    }
    for proof in &outcome.proofs {
        let _ = writeln!(out, "\n{proof}");
    }
    outcome.answer == Answer::Maybe
}

/// `apt query --from S --to T`: a sequential dependence query.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input or unknown labels.
pub fn cmd_query_sequential(
    program_text: &str,
    proc_name: Option<&str>,
    from: &str,
    to: &str,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let (name, mut analysis) = analyze(program_text, proc_name, config)?;
    portfolio.apply(&mut analysis);
    let mut out = String::new();
    let mut any_maybe = true;
    let _ = writeln!(out, "procedure {name}: is {to} dependent on {from}?");
    match analysis.test_sequential(from, to) {
        Ok(outcome) => any_maybe = render_outcome(&mut out, &outcome),
        Err(e) => {
            let _ = writeln!(out, "answer: Maybe ({e})");
        }
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// `apt query --carried U`: a loop-carried self-dependence query.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input or unknown labels.
pub fn cmd_query_carried(
    program_text: &str,
    proc_name: Option<&str>,
    label: &str,
    loop_label: Option<&str>,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let (name, mut analysis) = analyze(program_text, proc_name, config)?;
    portfolio.apply(&mut analysis);
    let mut out = String::new();
    let mut any_maybe = true;
    match analysis.loop_carried_pair(label, loop_label) {
        Ok((ri, rj)) => {
            let _ = writeln!(
                out,
                "procedure {name}: loop-carried {label} (iteration i: {ri}, iteration j: {rj})"
            );
        }
        Err(e) => {
            let _ = writeln!(out, "procedure {name}: loop-carried {label}: Maybe ({e})");
            return Ok(CmdOutput {
                text: out,
                any_maybe,
            });
        }
    }
    match analysis.test_loop_carried(label, loop_label) {
        Ok(outcome) => any_maybe = render_outcome(&mut out, &outcome),
        Err(e) => {
            let _ = writeln!(out, "answer: Maybe ({e})");
        }
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// One line of the parallelization report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportLine {
    /// The labeled statement.
    pub label: String,
    /// Loop nesting depth at the statement.
    pub loop_depth: usize,
    /// The loop-carried answer, if the statement sits in a loop.
    pub carried: Option<Answer>,
    /// For a Maybe: why (degradation pedigree, or genuinely unknown).
    pub maybe: Option<MaybeReason>,
    /// Whether the query panicked (isolated; counted as a Maybe).
    pub panicked: bool,
    /// Wall-clock budget spent on this label's query, in microseconds.
    pub micros: u128,
    /// Prover work counters for this label's query.
    pub stats: ProverStats,
}

/// One loop-carried query under its own sub-budget, panic-isolated: a
/// crash in the prover (or an injected test fault) degrades this one
/// line to Maybe instead of taking down the whole report.
fn carried_line(analysis: &Analysis, label: &str, sub: &ProverConfig) -> ReportLine {
    let depth = analysis.snapshot(label).map_or(0, |s| s.loops.len());
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if test_support::should_panic_for(label) {
            panic!("injected report fault for {label}");
        }
        let mut scoped = analysis.clone();
        scoped.set_prover_config(sub.clone());
        scoped.test_loop_carried(label, None)
    }));
    let micros = started.elapsed().as_micros();
    let (carried, maybe, panicked, stats) = match result {
        Ok(Ok(outcome)) => (Some(outcome.answer), outcome.maybe, false, outcome.stats),
        Ok(Err(
            QueryError::NoCommonAnchor | QueryError::NotInLoop(_) | QueryError::NoSuchLabel(_),
        )) => (
            Some(Answer::Maybe),
            Some(MaybeReason::GenuinelyUnknown),
            false,
            ProverStats::default(),
        ),
        Err(_) => (Some(Answer::Maybe), None, true, ProverStats::default()),
    };
    ReportLine {
        label: label.to_owned(),
        loop_depth: depth,
        carried,
        maybe,
        panicked,
        micros,
        stats,
    }
}

/// Splits the report's overall deadline evenly across its loop queries,
/// so one adversarial loop cannot starve the others.
fn sub_config(config: &ProverConfig, queries: usize) -> ProverConfig {
    let mut sub = config.clone();
    if let (Some(total), true) = (sub.budget.deadline, queries > 1) {
        sub.budget.deadline = Some(total / u32::try_from(queries).unwrap_or(u32::MAX));
    }
    sub
}

/// Computes the loop-parallelization report for one procedure: every
/// labeled access inside a loop gets a loop-carried dependence test
/// under its own sub-budget and panic isolation.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn report_lines(
    program_text: &str,
    proc_name: Option<&str>,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<Vec<ReportLine>, CliError> {
    let (_name, mut analysis) = analyze(program_text, proc_name, config)?;
    portfolio.apply(&mut analysis);
    let in_loop = analysis.snapshots().filter(|s| !s.loops.is_empty()).count();
    let sub = sub_config(config, in_loop);
    let mut lines = Vec::new();
    for snap in analysis.snapshots() {
        if snap.loops.is_empty() {
            lines.push(ReportLine {
                label: snap.label.clone(),
                loop_depth: 0,
                carried: None,
                maybe: None,
                panicked: false,
                micros: 0,
                stats: ProverStats::default(),
            });
        } else {
            lines.push(carried_line(&analysis, &snap.label, &sub));
        }
    }
    Ok(lines)
}

/// Renders the report for one procedure; returns whether any answer was
/// Maybe.
fn report_proc(
    program_text: &str,
    name: &str,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
    out: &mut String,
) -> Result<bool, CliError> {
    let (_name, mut analysis) = analyze(program_text, Some(name), config)?;
    portfolio.apply(&mut analysis);
    let lines = report_lines(program_text, Some(name), config, portfolio)?;
    let mut any_maybe = false;
    let _ = writeln!(out, "== parallelization report: procedure {name} ==");
    let _ = writeln!(
        out,
        "{:<14} {:<26} {:<6} innermost loop-carried dependence",
        "label", "access", "depth"
    );
    for line in &lines {
        let access = match analysis.snapshot(&line.label) {
            Some(snap) => format!(
                "{}{}->{}",
                if snap.access.is_write {
                    "write "
                } else {
                    "read  "
                },
                snap.access.ptr,
                snap.access.field
            ),
            None => "?".to_owned(),
        };
        let verdict = match line.carried {
            None => "- (not in a loop)".to_owned(),
            Some(Answer::No) => format!("No  -> PARALLELIZABLE [{} us]", line.micros),
            Some(Answer::Yes) => format!("Yes -> keep sequential [{} us]", line.micros),
            Some(Answer::Maybe) => {
                any_maybe = true;
                let why = if line.panicked {
                    "internal error: query panicked".to_owned()
                } else {
                    line.maybe
                        .unwrap_or(MaybeReason::GenuinelyUnknown)
                        .to_string()
                };
                format!("Maybe ({why}) -> keep sequential [{} us]", line.micros)
            }
        };
        let _ = writeln!(
            out,
            "{:<14} {:<26} {:<6} {}",
            line.label, access, line.loop_depth, verdict
        );
    }
    if lines.is_empty() {
        let _ = writeln!(out, "(no labeled memory accesses)");
        return Ok(false);
    }
    let mut work = ProverStats::default();
    for line in &lines {
        work.merge(&line.stats);
    }
    let degraded = lines
        .iter()
        .filter(|l| l.panicked || l.maybe.is_some_and(|m| m.is_degraded()))
        .count();
    if degraded > 0 {
        let spent: u128 = lines.iter().map(|l| l.micros).sum();
        let _ = writeln!(
            out,
            "({degraded} degraded answer(s); {spent} us spent across {} loop queries)",
            lines.iter().filter(|l| l.carried.is_some()).count()
        );
    }

    // Pairwise conflicts between labeled accesses (at least one a write).
    let labels: Vec<String> = lines.iter().map(|l| l.label.clone()).collect();
    let mut pair_lines = Vec::new();
    for (i, a) in labels.iter().enumerate() {
        for b in labels.iter().skip(i + 1) {
            let (Some(sa), Some(sb)) = (analysis.snapshot(a), analysis.snapshot(b)) else {
                continue;
            };
            if !(sa.access.is_write || sb.access.is_write) {
                continue;
            }
            let verdict = match analysis.test_sequential(a, b) {
                Ok(o) => {
                    any_maybe = o.answer == Answer::Maybe || any_maybe;
                    work.merge(&o.stats);
                    o.verdict().to_string()
                }
                Err(_) => {
                    any_maybe = true;
                    "Maybe (no common anchor)".to_owned()
                }
            };
            pair_lines.push(format!("{a:<14} vs {b:<14} {verdict}"));
        }
    }
    if !pair_lines.is_empty() {
        let _ = writeln!(out, "-- pairwise conflicts (>=1 write) --");
        for l in pair_lines {
            let _ = writeln!(out, "{l}");
        }
    }
    let _ = writeln!(
        out,
        "(dispatch: {} admitted, {} pruned; {} negative-memo hits)",
        work.dispatch_hits, work.dispatch_misses, work.neg_memo_hits
    );
    Ok(any_maybe)
}

/// `apt report`: renders the parallelization report — for one procedure,
/// or for every procedure when none is named.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_report(
    program_text: &str,
    proc_name: Option<&str>,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    let names: Vec<String> = match proc_name {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(fail("program has no procedures"));
    }
    let mut out = String::new();
    let mut any_maybe = false;
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        any_maybe |= report_proc(program_text, name, config, portfolio, &mut out)?;
    }
    if let Some(stats) = portfolio.stats() {
        render_portfolio_stats(&mut out, &stats);
    }
    let mem = apt_core::MemorySample::take();
    let _ = writeln!(
        out,
        "(memory: arena {} nodes / {} bytes{}; peak rss {})",
        mem.arena.live_nodes,
        mem.arena.live_bytes,
        if mem.arena.freed_total > 0 {
            format!(", {} freed", mem.arena.freed_total)
        } else {
            String::new()
        },
        match mem.peak_rss_kb {
            Some(kb) => format!("{kb} kb"),
            None => "unavailable".to_owned(),
        }
    );
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// `apt batch`: runs the full report workload (loop-carried queries plus
/// pairwise write conflicts) through the batched dependence engine, fanned
/// out over `jobs` worker threads with a shared proof cache. For one
/// procedure, or for every procedure when none is named.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_batch(
    program_text: &str,
    proc_name: Option<&str>,
    jobs: usize,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    let names: Vec<String> = match proc_name {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(fail("program has no procedures"));
    }
    let mut out = String::new();
    let mut any_maybe = false;
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        let (_name, mut analysis) = analyze(program_text, Some(name), config)?;
        portfolio.apply(&mut analysis);
        let queries = analysis.all_queries();
        let _ = writeln!(
            out,
            "== batch: procedure {name} ({} queries, {jobs} jobs) ==",
            queries.len()
        );
        if queries.is_empty() {
            let _ = writeln!(out, "(no labeled memory accesses)");
            continue;
        }
        let batch = analysis.run_batch(&queries, &BatchOptions::new().with_jobs(jobs));
        let (results, cache) = (batch.results, batch.cache);
        let mut work = ProverStats::default();
        for (query, result) in queries.iter().zip(results) {
            let what = match query {
                BatchQuery::LoopCarried { label, .. } => format!("carried {label}"),
                BatchQuery::Sequential { from, to } => format!("{from} vs {to}"),
            };
            let verdict = match result {
                Ok(outcome) => {
                    any_maybe |= outcome.answer == Answer::Maybe;
                    work.merge(&outcome.stats);
                    outcome.verdict().to_string()
                }
                Err(e) => {
                    any_maybe = true;
                    format!("Maybe ({e})")
                }
            };
            let _ = writeln!(out, "{what:<30} {verdict}");
        }
        let _ = writeln!(
            out,
            "(dispatch: {} admitted, {} pruned; {} negative-memo hits)",
            work.dispatch_hits, work.dispatch_misses, work.neg_memo_hits
        );
        let _ = writeln!(
            out,
            "(cache: {} proved / {} failed goals, {} subset memos; \
             dfas: {} raw [{} states] -> {} minimized [{} states])",
            cache.proved_goals,
            cache.failed_goals,
            cache.subset_results,
            cache.dfas,
            cache.raw_dfa_states,
            cache.min_dfas,
            cache.min_dfa_states
        );
    }
    if let Some(stats) = portfolio.stats() {
        render_portfolio_stats(&mut out, &stats);
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// What `--baseline` recovered from disk: the table to replay from (if
/// one named `default` was present and decodable) plus every other
/// decodable section, carried through so a rewrite never sheds them.
struct Baseline {
    table: Option<DepTable>,
    sessions: Vec<SessionSection>,
    other_analyses: Vec<AnalyzeSection>,
}

/// Reads a `--baseline` file through the snapshot codec. Every failure
/// mode — missing file, bad header, corrupt sections — degrades to a
/// cold (empty) baseline: a damaged table costs warmth, never a verdict.
fn load_baseline(path: &str) -> Baseline {
    let mut baseline = Baseline {
        table: None,
        sessions: Vec::new(),
        other_analyses: Vec::new(),
    };
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(_) => return baseline, // first run: nothing persisted yet
    };
    let outcomes = match apt_serve::snapshot::decode(&bytes) {
        Ok((_, outcomes)) => outcomes,
        Err(e) => {
            eprintln!("apt analyze: baseline {path} unusable ({e}); analyzing cold");
            return baseline;
        }
    };
    for outcome in outcomes {
        match outcome {
            SectionOutcome::Analysis(a) if a.name == "default" => baseline.table = Some(a.table),
            SectionOutcome::Analysis(a) => baseline.other_analyses.push(a),
            SectionOutcome::Restored(s) => baseline.sessions.push(s),
            SectionOutcome::Corrupt { name, reason } => {
                eprintln!("apt analyze: baseline section [{name}] corrupt ({reason}); dropped");
            }
        }
    }
    baseline
}

/// Writes the refreshed table (plus whatever else the baseline file
/// held) back through the snapshot codec, atomically.
fn save_baseline(path: &str, table: DepTable, rest: Baseline) -> Result<(), CliError> {
    let mut analyses = rest.other_analyses;
    analyses.push(AnalyzeSection {
        name: "default".to_owned(),
        table,
    });
    analyses.sort_by(|a, b| a.name.cmp(&b.name));
    let snap = Snapshot {
        created_unix_ms: apt_serve::snapshot::unix_ms_now(),
        sections: rest.sessions,
        analyses,
    };
    let bytes = apt_serve::snapshot::encode(&snap);
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| fail(format!("cannot write {tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| fail(format!("cannot rename {tmp} -> {path}: {e}")))
}

/// `apt analyze`: whole-program incremental dependence analysis. Every
/// procedure's full query workload runs through the batched engine; with
/// `--baseline <file>`, verdicts persisted by a previous run replay for
/// procedures whose content hashes (body + reachable callees + axioms)
/// are unchanged, and the refreshed table is written back to the file.
///
/// `changed_only` trims the *printout* to procedures that did prover
/// work; totals and the exit code still cover every procedure, so a
/// `--changed-only` run agrees with a cold one on exit status.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input or an unwritable baseline.
pub fn cmd_analyze(
    program_text: &str,
    baseline_path: Option<&str>,
    jobs: usize,
    changed_only: bool,
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    if program.procs.is_empty() {
        return Err(fail("program has no procedures"));
    }
    let baseline = match baseline_path {
        Some(path) => load_baseline(path),
        None => Baseline {
            table: None,
            sessions: Vec::new(),
            other_analyses: Vec::new(),
        },
    };
    let mut analysis = analyze_program(&program).with_prover_config(config.clone());
    portfolio.apply_program(&mut analysis);
    let report = analysis.run(
        baseline.table.as_ref(),
        &BatchOptions::new().with_jobs(jobs),
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== analyze: {} procedure(s), {} jobs ==",
        report.procs.len(),
        jobs
    );
    for proc in &report.procs {
        if changed_only && proc.reproved == 0 {
            continue;
        }
        let how = if proc.reused { "incremental" } else { "cold" };
        let _ = writeln!(
            out,
            "procedure {} [{how}: {} replayed, {} reproved]",
            proc.name, proc.replayed, proc.reproved
        );
        for row in &proc.rows {
            let verdict = match &row.outcome {
                RowOutcome::Error(e) => format!("Maybe ({e})"),
                outcome => {
                    let suffix = if outcome.is_replayed() {
                        " (replayed)"
                    } else {
                        ""
                    };
                    format!("{}{suffix}", outcome.answer())
                }
            };
            let _ = writeln!(out, "  {:<30} {verdict}", row.key);
        }
    }
    let _ = writeln!(
        out,
        "totals: {} queries — {} replayed, {} reproved; {}/{} procedures reused",
        report.total_queries(),
        report.replayed(),
        report.reproved(),
        report.procs_reused(),
        report.procs.len()
    );
    let any_maybe = report.any_maybe();
    if let Some(stats) = portfolio.stats() {
        render_portfolio_stats(&mut out, &stats);
    }
    if let Some(path) = baseline_path {
        save_baseline(path, report.table, baseline)?;
        let _ = writeln!(out, "(table persisted to {path})");
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

/// Usage text.
pub const USAGE: &str = "\
apt — the axiom-based pointer dependence test (PLDI 1994 reproduction)

USAGE:
  apt prove  <axioms-file> <path1> <path2> [--distinct | --unknown]
  apt apm    <program-file> [--proc <name>]
  apt query  <program-file> [--proc <name>] --from <S> --to <T>
  apt query  <program-file> [--proc <name>] --carried <U> [--loop <L>]
  apt report <program-file> [--proc <name>]
  apt batch  <program-file> [--proc <name>] [--jobs <n>]
  apt analyze <program-file> [--baseline <file>] [--changed-only]
              [--jobs <n>]
  apt serve  [--addr <host:port>] [--socket <path>] [--workers <n>]
             [--high-water <n>] [--max-sessions <m>]
             [--max-connections <n>] [--snapshot-dir <dir>]
             [--snapshot-interval-ms <n>] [--idle-timeout-ms <n>]
             [--fault-plan <spec>]
  apt client (--addr <host:port> | --socket <path>) <verb> …
      verbs: open <axioms-file> | prove <session> <p1> <p2> [--distinct]
             [--engines <spec>]
             analyze <program-file> [--name <t>] [--changed-only]
             invalidate [<proc>] [--name <t>] | hello
             stats | health | ready | shutdown | raw '<json-frame>'
  apt snapshot inspect <file>

PORTFOLIO FLAGS (prove / query / report / batch / analyze; on `serve`
they set the server's default engine roster):
  --engines <spec>        race multiple backends per query and adopt the
                          first definite verdict: 'all', or a comma list
                          of axiomatic, dyck, refuter. The axiomatic
                          prover alone is the default. dyck answers
                          definite No without a proof object; refuter
                          answers definite Yes with a concrete witness
                          heap (re-validated before it is believed).
  --refuter-max-heap <n>  largest candidate heap the refuter enumerates,
                          in nodes (default 8); implies --engines all
                          when --engines is absent

ANALYZE (whole-program incremental mode):
  Runs every procedure's full dependence workload. With --baseline, the
  table persisted by the previous run replays the definite verdicts of
  procedures whose content hashes (own body + transitively reachable
  callees + axiom set) are unchanged — only edited procedures re-prove —
  and the refreshed table is written back. --changed-only trims the
  printout to procedures that did prover work; the exit code still
  covers everything, so it agrees with a cold run's.

SERVE PERSISTENCE FLAGS:
  --snapshot-dir <dir>         persist warm state (compiled axiom sets +
                               definite proof/subset caches) to
                               <dir>/apt-serve.snap; restored on startup
  --snapshot-interval-ms <n>   background flush period (default: only on
                               graceful shutdown)
  --idle-timeout-ms <n>        per-connection read deadline (default
                               120000; 0 disables)
  --max-connections <n>        concurrent connections admitted (default:
                               the process fd limit minus 512 headroom;
                               raise `ulimit -n` before raising this).
                               Connections past the cap get an
                               'overloaded' error frame, not a hang
  --fault-plan <spec>          DEV ONLY — inject snapshot I/O faults,
                               e.g. 'write_err=2,torn=0.5,fsync_err'

RESOURCE FLAGS (prove / query / report / batch; on `serve` they set the
per-request budget ceiling, on `client prove` the request's overrides):
  --fuel <n>            goal attempts per query (default 100000)
  --deadline-ms <n>     wall-clock budget per command; `report` splits it
                        evenly across its loop queries
  --max-dfa-states <n>  DFA states any one subset construction may build

Exhausting any budget degrades the affected answer to an explicit
'Maybe (<reason>)' — it never crashes and never flips a Yes/No.

EXIT CODES:
  0  every answer definite     1  some answer Maybe (degraded or unknown)
  2  usage or parse error

Axiom files hold either an ADDS description (structure { tree L, R; … })
or one 'forall …' axiom per line. Program files use the mini pointer
language (see the repository README).";

/// Parses the shared resource-governance flags into a [`ProverConfig`].
///
/// # Errors
///
/// Returns a [`CliError`] on a malformed flag value.
fn config_from_flags(args: &[String]) -> Result<ProverConfig, CliError> {
    let parse_u64 = |flag: &str| -> Result<Option<u64>, CliError> {
        let Some(i) = args.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        let v = args
            .get(i + 1)
            .ok_or_else(|| fail(format!("{flag} needs a value")))?;
        v.parse::<u64>()
            .map(Some)
            .map_err(|_| fail(format!("{flag} needs a non-negative integer, got {v:?}")))
    };
    let mut budget = Budget::new();
    if let Some(fuel) = parse_u64("--fuel")? {
        budget = budget.with_fuel(fuel);
    }
    if let Some(ms) = parse_u64("--deadline-ms")? {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(states) = parse_u64("--max-dfa-states")? {
        let states = usize::try_from(states)
            .map_err(|_| fail("--max-dfa-states value does not fit in usize"))?;
        budget = budget.with_max_dfa_states(states);
    }
    Ok(ProverConfig::with_budget(budget))
}

/// Runs the CLI on the given argument list (everything after the program
/// name). Returns the text to print plus the exit code on success.
///
/// # Errors
///
/// Returns a [`CliError`] for the caller to print and exit with code 2.
pub fn run(args: &[String]) -> Result<CmdOutput, CliError> {
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
    };
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let config = config_from_flags(args)?;
    let portfolio = PortfolioOpts::from_flags(args)?;
    match args.first().map(String::as_str) {
        Some("prove") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let a = args.get(2).ok_or_else(|| fail(USAGE))?;
            let b = args.get(3).ok_or_else(|| fail(USAGE))?;
            let origin = if args.iter().any(|x| x == "--distinct") {
                Origin::Distinct
            } else {
                Origin::Same
            };
            cmd_prove(&read(file)?, a, b, origin, &config, &portfolio)
        }
        Some("apm") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            cmd_apm(&read(file)?, flag_value("--proc"))
        }
        Some("query") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let text = read(file)?;
            let proc = flag_value("--proc");
            if let Some(u) = flag_value("--carried") {
                cmd_query_carried(&text, proc, u, flag_value("--loop"), &config, &portfolio)
            } else {
                let from = flag_value("--from").ok_or_else(|| fail(USAGE))?;
                let to = flag_value("--to").ok_or_else(|| fail(USAGE))?;
                cmd_query_sequential(&text, proc, from, to, &config, &portfolio)
            }
        }
        Some("report") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            cmd_report(&read(file)?, flag_value("--proc"), &config, &portfolio)
        }
        Some("batch") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let jobs =
                match flag_value("--jobs") {
                    Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        fail(format!("--jobs needs a positive integer, got {v:?}"))
                    })?,
                    None => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
                };
            cmd_batch(
                &read(file)?,
                flag_value("--proc"),
                jobs,
                &config,
                &portfolio,
            )
        }
        Some("analyze") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let jobs =
                match flag_value("--jobs") {
                    Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        fail(format!("--jobs needs a positive integer, got {v:?}"))
                    })?,
                    None => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
                };
            cmd_analyze(
                &read(file)?,
                flag_value("--baseline"),
                jobs,
                args.iter().any(|x| x == "--changed-only"),
                &config,
                &portfolio,
            )
        }
        Some("serve") => cmd_serve(args, &config, &portfolio),
        Some("client") => cmd_client(args),
        Some("snapshot") => cmd_snapshot(args),
        _ => Err(fail(USAGE)),
    }
}

/// `apt snapshot inspect <file>`: prints a per-section summary of a
/// warm-state snapshot file, flagging corrupt sections.
///
/// # Errors
///
/// Returns a [`CliError`] on usage errors, unreadable files, or a
/// snapshot whose header is unusable.
pub fn cmd_snapshot(args: &[String]) -> Result<CmdOutput, CliError> {
    match args.get(1).map(String::as_str) {
        Some("inspect") => {
            let path = args.get(2).ok_or_else(|| fail(USAGE))?;
            let bytes =
                std::fs::read(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
            let report =
                apt_serve::snapshot::inspect(&bytes).map_err(|e| fail(format!("{path}: {e}")))?;
            // Corrupt sections are worth a nonzero exit so scripts can
            // gate on snapshot health, mirroring the Maybe convention.
            let any_maybe = report.contains("CORRUPT");
            Ok(CmdOutput {
                text: report,
                any_maybe,
            })
        }
        _ => Err(fail(USAGE)),
    }
}

/// `apt serve`: runs the resident dependence-query daemon until a
/// `shutdown` request arrives. The shared resource flags set the
/// server's per-request budget ceiling (clients may only tighten it).
///
/// # Errors
///
/// Returns a [`CliError`] on bad flags or bind failures.
pub fn cmd_serve(
    args: &[String],
    config: &ProverConfig,
    portfolio: &PortfolioOpts,
) -> Result<CmdOutput, CliError> {
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let usize_flag = |flag: &str| -> Result<Option<usize>, CliError> {
        match flag_value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Some)
                .ok_or_else(|| fail(format!("{flag} needs a positive integer, got {v:?}"))),
        }
    };
    let mut serve_config = ServeConfig::new();
    serve_config.default_budget = config.budget.clone();
    serve_config.ceiling = config.budget.clone();
    serve_config.portfolio = portfolio.config().cloned();
    if let Some(n) = usize_flag("--workers")? {
        serve_config.workers = n;
    }
    if let Some(n) = usize_flag("--high-water")? {
        serve_config.high_water = n;
    }
    if let Some(n) = usize_flag("--max-sessions")? {
        serve_config.max_sessions = n;
    }
    if let Some(n) = usize_flag("--max-connections")? {
        serve_config.max_connections = n;
    }
    let u64_flag = |flag: &str| -> Result<Option<u64>, CliError> {
        match flag_value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|_| fail(format!("{flag} needs a non-negative integer, got {v:?}"))),
        }
    };
    if let Some(dir) = flag_value("--snapshot-dir") {
        serve_config.snapshot_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(ms) = u64_flag("--snapshot-interval-ms")? {
        if ms > 0 {
            serve_config.snapshot_interval = Some(Duration::from_millis(ms));
        }
    }
    if let Some(ms) = u64_flag("--idle-timeout-ms")? {
        serve_config.idle_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(spec) = flag_value("--fault-plan") {
        let plan =
            apt_serve::FaultPlan::parse(spec).map_err(|e| fail(format!("--fault-plan: {e}")))?;
        serve_config.fault_plan = Some(std::sync::Arc::new(plan));
        eprintln!("apt-serve: FAULT PLAN ARMED ({spec}) — dev/test use only");
    }
    let mut server = Server::new(serve_config);
    if let Some(addr) = flag_value("--addr") {
        let bound = server
            .bind_tcp(addr)
            .map_err(|e| fail(format!("cannot bind tcp {addr}: {e}")))?;
        eprintln!("apt-serve: listening on tcp {bound}");
    }
    if let Some(path) = flag_value("--socket") {
        server
            .bind_unix(std::path::Path::new(path))
            .map_err(|e| fail(format!("cannot bind unix socket {path}: {e}")))?;
        eprintln!("apt-serve: listening on unix {path}");
    }
    server.run().map_err(|e| fail(e.to_string()))?;
    Ok(CmdOutput::clean("apt-serve: stopped\n".to_owned()))
}

/// `apt client`: one request/response against a running daemon.
///
/// # Errors
///
/// Returns a [`CliError`] on bad flags, connection failures, or a
/// server-side error frame.
pub fn cmd_client(args: &[String]) -> Result<CmdOutput, CliError> {
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let mut client = match (flag_value("--addr"), flag_value("--socket")) {
        (Some(addr), _) => Client::connect_tcp(addr)
            .map_err(|e| fail(format!("cannot connect to tcp {addr}: {e}")))?,
        (None, Some(path)) => Client::connect_unix(std::path::Path::new(path))
            .map_err(|e| fail(format!("cannot connect to unix socket {path}: {e}")))?,
        (None, None) => return Err(fail("apt client needs --addr or --socket")),
    };
    // Positional arguments, with flag/value pairs skipped.
    let mut positional = Vec::new();
    let mut i = 1; // args[0] == "client"
    while let Some(a) = args.get(i) {
        if a.starts_with("--") {
            // Boolean flags consume one slot; the rest take a value.
            i += if a == "--distinct" || a == "--changed-only" {
                1
            } else {
                2
            };
            continue;
        }
        positional.push(a.as_str());
        i += 1;
    }
    let mut out = String::new();
    let mut any_maybe = false;
    match positional.first().copied() {
        Some("open") => {
            let file = positional.get(1).ok_or_else(|| fail(USAGE))?;
            let axioms = std::fs::read_to_string(file)
                .map_err(|e| fail(format!("cannot read {file}: {e}")))?;
            let session = client
                .open_session(&axioms)
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "session: {session}");
        }
        Some("prove") => {
            let session = positional.get(1).ok_or_else(|| fail(USAGE))?;
            let a = positional.get(2).ok_or_else(|| fail(USAGE))?;
            let b = positional.get(3).ok_or_else(|| fail(USAGE))?;
            let origin = if args.iter().any(|x| x == "--distinct") {
                "distinct"
            } else {
                "same"
            };
            let mut pairs = vec![
                ("verb", Json::from("prove")),
                ("session", Json::from(*session)),
                ("a", Json::from(*a)),
                ("b", Json::from(*b)),
                ("origin", Json::from(origin)),
            ];
            if let Some(spec) = flag_value("--engines") {
                pairs.push(("engines", spec.into()));
            }
            for (flag, field) in [
                ("--fuel", "fuel"),
                ("--deadline-ms", "deadline_ms"),
                ("--max-dfa-states", "max_dfa_states"),
            ] {
                if let Some(v) = flag_value(flag) {
                    let n = v.parse::<u64>().map_err(|_| {
                        fail(format!("{flag} needs a non-negative integer, got {v:?}"))
                    })?;
                    pairs.push((field, n.into()));
                }
            }
            let frame = client
                .roundtrip(obj(pairs))
                .map_err(|e| fail(e.to_string()))?;
            let result = frame
                .get("result")
                .ok_or_else(|| fail("prove reply lacks result"))?;
            let answer = result.get("answer").and_then(Json::as_str).unwrap_or("?");
            match result.get("reason").and_then(Json::as_str) {
                Some(reason) => {
                    let _ = writeln!(out, "answer: {answer} ({reason})");
                }
                None => {
                    let _ = writeln!(out, "answer: {answer}");
                }
            }
            if let Some(engine) = result.get("engine").and_then(Json::as_str) {
                let _ = writeln!(out, "engine: {engine}");
            }
            if let Some(witness) = result.get("witness").and_then(Json::as_str) {
                let _ = writeln!(out, "witness: {witness}");
            }
            any_maybe = answer == "Maybe";
        }
        Some("analyze") => {
            let file = positional.get(1).ok_or_else(|| fail(USAGE))?;
            let program = std::fs::read_to_string(file)
                .map_err(|e| fail(format!("cannot read {file}: {e}")))?;
            let mut pairs = vec![
                ("verb", Json::from("analyze")),
                ("program", Json::from(program.as_str())),
            ];
            if let Some(name) = flag_value("--name") {
                pairs.push(("name", name.into()));
            }
            if args.iter().any(|x| x == "--changed-only") {
                pairs.push(("changed_only", true.into()));
            }
            for (flag, field) in [
                ("--jobs", "jobs"),
                ("--fuel", "fuel"),
                ("--deadline-ms", "deadline_ms"),
                ("--max-dfa-states", "max_dfa_states"),
            ] {
                if let Some(v) = flag_value(flag) {
                    let n = v.parse::<u64>().map_err(|_| {
                        fail(format!("{flag} needs a non-negative integer, got {v:?}"))
                    })?;
                    pairs.push((field, n.into()));
                }
            }
            let frame = client
                .roundtrip(obj(pairs))
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "{}", frame.render());
            any_maybe = frame.get("any_maybe").and_then(Json::as_bool) == Some(true);
        }
        Some("invalidate") => {
            let mut pairs = vec![("verb", Json::from("invalidate"))];
            if let Some(name) = flag_value("--name") {
                pairs.push(("name", name.into()));
            }
            if let Some(proc) = positional.get(1) {
                pairs.push(("proc", Json::from(*proc)));
            }
            let frame = client
                .roundtrip(obj(pairs))
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "{}", frame.render());
        }
        Some(verb @ ("stats" | "hello")) => {
            let frame = client
                .roundtrip(obj(vec![("verb", verb.into())]))
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "{}", frame.render());
        }
        Some(verb @ ("health" | "ready")) => {
            let frame = client
                .roundtrip(obj(vec![("verb", verb.into())]))
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "{}", frame.render());
        }
        Some("shutdown") => {
            client.shutdown().map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "ok");
        }
        Some("raw") => {
            let line = positional.get(1).ok_or_else(|| fail(USAGE))?;
            let frame = client
                .roundtrip_raw(line)
                .map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "{}", frame.render());
        }
        _ => return Err(fail(USAGE)),
    }
    Ok(CmdOutput {
        text: out,
        any_maybe,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_PROGRAM: &str = r"
        type List {
            ptr link: List;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
            axiom A2: forall p, p.link+ <> p.eps;
        }
        proc update(head: List) {
            q = head;
            loop {
            U:  q->f = fun();
                q = q->link;
            }
        V:  head->f = 0;
        }";

    #[test]
    fn load_axioms_autodetects_formats() {
        let adds = load_axioms("structure T { tree L, R; }").expect("adds");
        assert_eq!(adds.len(), 2);
        let plain = load_axioms("A1: forall p, p.L <> p.R").expect("plain");
        assert_eq!(plain.len(), 1);
        assert!(load_axioms("garbage here").is_err());
    }

    #[test]
    fn prove_command_proves_and_reports() {
        let out = cmd_prove(
            "structure T { tree L, R; list N; acyclic L, R, N; }",
            "L.L.N",
            "L.R.N",
            Origin::Same,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        )
        .expect("runs");
        assert!(out.contains("PROVEN"), "{out}");
        assert!(out.contains("checked"), "{out}");
        assert_eq!(out.exit_code(), 0);
        let out = cmd_prove(
            "structure T { tree L, R; }",
            "L.(L|R)*",
            "L",
            Origin::Same,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        )
        .expect("runs");
        assert!(out.contains("Maybe"), "{out}");
        assert_eq!(out.exit_code(), 1);
    }

    #[test]
    fn prove_under_starved_budget_names_the_limit() {
        // A provable query under 1 unit of fuel: the Maybe must carry a
        // fuel-exhaustion reason, not pretend the axioms were silent.
        let out = cmd_prove(
            "structure T { tree L, R; list N; acyclic L, R, N; }",
            "L.L.N",
            "L.R.N",
            Origin::Same,
            &ProverConfig::with_budget(Budget::new().with_fuel(1)),
            &PortfolioOpts::off(),
        )
        .expect("runs");
        assert!(out.contains("Maybe (search exhausted: fuel)"), "{out}");
        assert!(out.contains("resource limit reached"), "{out}");
        assert_eq!(out.exit_code(), 1);
    }

    #[test]
    fn apm_command_prints_matrices() {
        let out = cmd_apm(LIST_PROGRAM, None).expect("runs");
        assert!(out.contains("-- U: write of q->f --"), "{out}");
        assert!(out.contains("_hhead"), "{out}");
    }

    #[test]
    fn query_commands_answer() {
        let cfg = ProverConfig::default();
        let off = PortfolioOpts::off();
        let out =
            cmd_query_carried(LIST_PROGRAM, Some("update"), "U", None, &cfg, &off).expect("runs");
        assert!(out.contains("answer: No"), "{out}");
        assert_eq!(out.exit_code(), 0);
        let out = cmd_query_sequential(LIST_PROGRAM, None, "U", "V", &cfg, &off).expect("runs");
        // U's paths don't survive relative to head's handle… either way it
        // must answer, not crash.
        assert!(out.contains("answer:"), "{out}");
    }

    #[test]
    fn report_flags_parallelizable_loops() {
        let cfg = ProverConfig::default();
        let lines = report_lines(LIST_PROGRAM, None, &cfg, &PortfolioOpts::off()).expect("runs");
        let u = lines.iter().find(|l| l.label == "U").expect("U listed");
        assert_eq!(u.loop_depth, 1);
        assert_eq!(u.carried, Some(Answer::No));
        assert!(!u.panicked);
        let v = lines.iter().find(|l| l.label == "V").expect("V listed");
        assert_eq!(v.loop_depth, 0);
        assert_eq!(v.carried, None);
        let rendered =
            cmd_report(LIST_PROGRAM, None, &cfg, &PortfolioOpts::off()).expect("renders");
        assert!(rendered.contains("PARALLELIZABLE"), "{rendered}");
        assert!(rendered.contains("pairwise conflicts"), "{rendered}");
    }

    #[test]
    fn report_covers_all_procedures_by_default() {
        let two_procs = format!(
            "{LIST_PROGRAM}
            proc touch(h: List) {{
            W:  h->f = 9;
            }}"
        );
        let rendered = cmd_report(
            &two_procs,
            None,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        )
        .expect("renders");
        assert!(rendered.contains("procedure update"), "{rendered}");
        assert!(rendered.contains("procedure touch"), "{rendered}");
    }

    #[test]
    fn report_isolates_a_panicking_loop_query() {
        // Inject a panic into U's loop-carried query: the report must
        // still render, keep V's line intact, and mark U as a Maybe.
        test_support::inject_report_panic(Some("U"));
        let rendered = cmd_report(
            LIST_PROGRAM,
            None,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        );
        test_support::inject_report_panic(None);
        let rendered = rendered.expect("report survives the panic");
        assert!(rendered.contains("query panicked"), "{rendered}");
        assert!(rendered.contains("keep sequential"), "{rendered}");
        assert!(rendered.contains('V'), "{rendered}");
        assert_eq!(rendered.exit_code(), 1);
        // Without the injection the same report is clean again.
        let clean = cmd_report(
            LIST_PROGRAM,
            None,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        )
        .expect("renders");
        assert!(clean.contains("PARALLELIZABLE"), "{clean}");
    }

    #[test]
    fn batch_agrees_with_sequential_queries() {
        let cfg = ProverConfig::default();
        let rendered = cmd_batch(LIST_PROGRAM, None, 4, &cfg, &PortfolioOpts::off()).expect("runs");
        assert!(rendered.contains("carried U"), "{rendered}");
        assert!(rendered.contains("U vs V"), "{rendered}");
        // The loop-carried U dependence is broken by listness (as the
        // report shows), and U vs V conflict at head->f stays a Maybe/Yes
        // question answered identically to `apt query`.
        let lines = report_lines(LIST_PROGRAM, None, &cfg, &PortfolioOpts::off()).expect("runs");
        let u = lines.iter().find(|l| l.label == "U").expect("U listed");
        assert_eq!(u.carried, Some(Answer::No));
        assert!(
            rendered
                .lines()
                .any(|l| l.starts_with("carried U") && l.contains("No")),
            "{rendered}"
        );
    }

    #[test]
    fn batch_covers_all_procedures_and_validates_jobs() {
        let two_procs = format!(
            "{LIST_PROGRAM}
            proc touch(h: List) {{
            W:  h->f = 9;
            }}"
        );
        let rendered = cmd_batch(
            &two_procs,
            None,
            2,
            &ProverConfig::default(),
            &PortfolioOpts::off(),
        )
        .expect("renders");
        assert!(rendered.contains("procedure update"), "{rendered}");
        assert!(rendered.contains("procedure touch"), "{rendered}");
        let e = run(&["batch".into(), "f".into(), "--jobs".into(), "0".into()]).unwrap_err();
        assert!(e.0.contains("--jobs"), "{e}");
    }

    #[test]
    fn analyze_replays_from_a_baseline_file() {
        let two_procs = format!(
            "{LIST_PROGRAM}
            proc touch(h: List) {{
            W:  h->f = 9;
            X:  v = h->f;
            }}"
        );
        let dir = std::env::temp_dir().join(format!("apt-analyze-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline_path = dir.join("table.snap");
        let baseline = baseline_path.to_str().unwrap();
        let cfg = ProverConfig::default();
        let off = PortfolioOpts::off();

        let cold = cmd_analyze(&two_procs, Some(baseline), 2, false, &cfg, &off).expect("cold run");
        assert!(cold.contains("0/2 procedures reused"), "{cold}");
        assert!(cold.contains("(table persisted"), "{cold}");

        // Unedited re-run: both procedures replay from the table.
        let warm = cmd_analyze(&two_procs, Some(baseline), 2, false, &cfg, &off).expect("warm run");
        assert!(warm.contains("2/2 procedures reused"), "{warm}");
        assert!(warm.contains("(replayed)"), "{warm}");
        assert_eq!(warm.exit_code(), cold.exit_code(), "verdict parity");

        // --changed-only trims the printout, not the exit code.
        let trimmed =
            cmd_analyze(&two_procs, Some(baseline), 2, true, &cfg, &off).expect("trimmed");
        assert_eq!(trimmed.exit_code(), cold.exit_code());

        // A corrupted baseline degrades to a cold run, same verdicts.
        std::fs::write(&baseline_path, b"not a snapshot").unwrap();
        let recovered = cmd_analyze(&two_procs, Some(baseline), 2, false, &cfg, &off)
            .expect("corrupt fallback");
        assert!(recovered.contains("0/2 procedures reused"), "{recovered}");
        assert_eq!(recovered.exit_code(), cold.exit_code());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dispatches_and_reports_usage() {
        let e = run(&[]).unwrap_err();
        assert!(e.0.contains("USAGE"));
        let e = run(&["bogus".into()]).unwrap_err();
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn malformed_budget_flags_are_usage_errors() {
        let e = run(&["prove".into(), "f".into(), "--fuel".into(), "lots".into()]).unwrap_err();
        assert!(e.0.contains("--fuel"), "{e}");
        let e = run(&[
            "report".into(),
            "f".into(),
            "--deadline-ms".into(),
            "-3".into(),
        ])
        .unwrap_err();
        assert!(e.0.contains("--deadline-ms"), "{e}");
    }
}
