//! The `apt` command-line tool: run the APT dependence test from the
//! shell.
//!
//! ```text
//! apt prove  <axioms-file> <path1> <path2> [--distinct | --unknown]
//! apt apm    <program-file> --proc <name>
//! apt query  <program-file> --proc <name> --from <S> --to <T>
//! apt query  <program-file> --proc <name> --carried <U> [--loop <L>]
//! apt report <program-file> [--proc <name>]
//! ```
//!
//! Axiom files are either ADDS descriptions (`structure … { tree L, R; }`)
//! or one axiom per line (`A1: forall p, p.L <> p.R`); the format is
//! auto-detected. Program files use the `apt-ir` mini language.
//!
//! The library half exists so the subcommands are unit-testable; `main`
//! is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apt_axioms::{adds, AxiomSet};
use apt_core::{check_proof, Answer, Origin, Prover};
use apt_paths::{analyze_proc, Analysis, QueryError};
use apt_regex::Path;
use std::fmt::Write as _;

/// A CLI failure: message for stderr, nonzero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parses an axiom file: ADDS syntax if any line starts with an ADDS
/// keyword, otherwise one axiom per line.
///
/// # Errors
///
/// Returns a [`CliError`] describing the parse failure.
pub fn load_axioms(text: &str) -> Result<AxiomSet, CliError> {
    let adds_like = text.lines().any(|l| {
        let t = l.trim();
        [
            "structure",
            "tree ",
            "list ",
            "acyclic ",
            "disjoint ",
            "cycle ",
        ]
        .iter()
        .any(|k| t.starts_with(k))
    });
    if adds_like {
        adds::parse_adds(text).map_err(|e| fail(e.to_string()))
    } else {
        AxiomSet::parse(text).map_err(|e| fail(e.to_string()))
    }
}

/// `apt prove`: tests two access paths under an axiom set.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_prove(
    axioms_text: &str,
    path_a: &str,
    path_b: &str,
    origin: Origin,
) -> Result<String, CliError> {
    let axioms = load_axioms(axioms_text)?;
    let a = Path::parse(path_a).map_err(|e| fail(e.to_string()))?;
    let b = Path::parse(path_b).map_err(|e| fail(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "axioms:\n{axioms}");
    let mut prover = Prover::new(&axioms);
    match prover.prove_disjoint(origin, &a, &b) {
        Some(proof) => {
            check_proof(&axioms, &proof).map_err(|e| fail(format!("internal: {e}")))?;
            let quant = match origin {
                Origin::Same => "forall x",
                Origin::Distinct => "forall x <> y",
            };
            let _ = writeln!(out, "{quant}: x.{a} <> y-or-x.{b} — No dependence (PROVEN)");
            let _ = writeln!(out, "\n{proof}");
            let stats = prover.stats();
            let _ = writeln!(
                out,
                "({} goals, {} subset checks, proof of {} nodes, checked)",
                stats.goals_attempted,
                stats.subset_checks,
                proof.node_count()
            );
        }
        None => {
            let _ = writeln!(out, "{a} <> {b}: Maybe (no proof found)");
        }
    }
    Ok(out)
}

fn analyze(program_text: &str, proc_name: Option<&str>) -> Result<(String, Analysis), CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    let name = match proc_name {
        Some(n) => n.to_owned(),
        None => program
            .procs
            .first()
            .map(|p| p.name.clone())
            .ok_or_else(|| fail("program has no procedures"))?,
    };
    let analysis =
        analyze_proc(&program, &name).map_err(|e| fail(format!("cannot analyze {name:?}: {e}")))?;
    Ok((name, analysis))
}

/// `apt apm`: prints the access-path matrix at every labeled access.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_apm(program_text: &str, proc_name: Option<&str>) -> Result<String, CliError> {
    let (name, analysis) = analyze(program_text, proc_name)?;
    let mut out = String::new();
    let _ = writeln!(out, "procedure {name}: access-path matrices\n");
    for snap in analysis.snapshots() {
        let kind = if snap.access.is_write {
            "write"
        } else {
            "read"
        };
        let _ = writeln!(
            out,
            "-- {}: {} of {}->{} --",
            snap.label, kind, snap.access.ptr, snap.access.field
        );
        let _ = writeln!(out, "{}", snap.apm);
    }
    if analysis.labels().is_empty() {
        let _ = writeln!(out, "(no labeled memory accesses)");
    }
    Ok(out)
}

fn render_outcome(out: &mut String, outcome: &apt_core::TestOutcome) {
    let _ = writeln!(out, "answer: {}", outcome.answer);
    for proof in &outcome.proofs {
        let _ = writeln!(out, "\n{proof}");
    }
}

/// `apt query --from S --to T`: a sequential dependence query.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input or unknown labels.
pub fn cmd_query_sequential(
    program_text: &str,
    proc_name: Option<&str>,
    from: &str,
    to: &str,
) -> Result<String, CliError> {
    let (name, analysis) = analyze(program_text, proc_name)?;
    let mut out = String::new();
    let _ = writeln!(out, "procedure {name}: is {to} dependent on {from}?");
    match analysis.test_sequential(from, to) {
        Ok(outcome) => render_outcome(&mut out, &outcome),
        Err(e) => {
            let _ = writeln!(out, "answer: Maybe ({e})");
        }
    }
    Ok(out)
}

/// `apt query --carried U`: a loop-carried self-dependence query.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input or unknown labels.
pub fn cmd_query_carried(
    program_text: &str,
    proc_name: Option<&str>,
    label: &str,
    loop_label: Option<&str>,
) -> Result<String, CliError> {
    let (name, analysis) = analyze(program_text, proc_name)?;
    let mut out = String::new();
    match analysis.loop_carried_pair(label, loop_label) {
        Ok((ri, rj)) => {
            let _ = writeln!(
                out,
                "procedure {name}: loop-carried {label} (iteration i: {ri}, iteration j: {rj})"
            );
        }
        Err(e) => {
            let _ = writeln!(out, "procedure {name}: loop-carried {label}: Maybe ({e})");
            return Ok(out);
        }
    }
    match analysis.test_loop_carried(label, loop_label) {
        Ok(outcome) => render_outcome(&mut out, &outcome),
        Err(e) => {
            let _ = writeln!(out, "answer: Maybe ({e})");
        }
    }
    Ok(out)
}

/// One line of the parallelization report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportLine {
    /// The labeled statement.
    pub label: String,
    /// Loop nesting depth at the statement.
    pub loop_depth: usize,
    /// The loop-carried answer, if the statement sits in a loop.
    pub carried: Option<Answer>,
}

/// Computes the loop-parallelization report for one procedure: every
/// labeled access inside a loop gets a loop-carried dependence test.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn report_lines(
    program_text: &str,
    proc_name: Option<&str>,
) -> Result<Vec<ReportLine>, CliError> {
    let (_name, analysis) = analyze(program_text, proc_name)?;
    let mut lines = Vec::new();
    for snap in analysis.snapshots() {
        let depth = snap.loops.len();
        let carried = if depth == 0 {
            None
        } else {
            Some(match analysis.test_loop_carried(&snap.label, None) {
                Ok(outcome) => outcome.answer,
                Err(QueryError::NoCommonAnchor | QueryError::NotInLoop(_)) => Answer::Maybe,
                Err(QueryError::NoSuchLabel(_)) => Answer::Maybe,
            })
        };
        lines.push(ReportLine {
            label: snap.label.clone(),
            loop_depth: depth,
            carried,
        });
    }
    Ok(lines)
}

/// Renders the report for one procedure.
fn report_proc(program_text: &str, name: &str, out: &mut String) -> Result<(), CliError> {
    let (_name, analysis) = analyze(program_text, Some(name))?;
    let lines = report_lines(program_text, Some(name))?;
    let _ = writeln!(out, "== parallelization report: procedure {name} ==");
    let _ = writeln!(
        out,
        "{:<14} {:<26} {:<6} innermost loop-carried dependence",
        "label", "access", "depth"
    );
    for line in &lines {
        let snap = analysis.snapshot(&line.label).expect("label exists");
        let access = format!(
            "{}{}->{}",
            if snap.access.is_write {
                "write "
            } else {
                "read  "
            },
            snap.access.ptr,
            snap.access.field
        );
        let verdict = match line.carried {
            None => "- (not in a loop)".to_owned(),
            Some(Answer::No) => "No  -> PARALLELIZABLE".to_owned(),
            Some(a) => format!("{a} -> keep sequential"),
        };
        let _ = writeln!(
            out,
            "{:<14} {:<26} {:<6} {}",
            line.label, access, line.loop_depth, verdict
        );
    }
    if lines.is_empty() {
        let _ = writeln!(out, "(no labeled memory accesses)");
        return Ok(());
    }

    // Pairwise conflicts between labeled accesses (at least one a write).
    let labels: Vec<String> = lines.iter().map(|l| l.label.clone()).collect();
    let mut pair_lines = Vec::new();
    for (i, a) in labels.iter().enumerate() {
        for b in labels.iter().skip(i + 1) {
            let sa = analysis.snapshot(a).expect("label");
            let sb = analysis.snapshot(b).expect("label");
            if !(sa.access.is_write || sb.access.is_write) {
                continue;
            }
            let verdict = match analysis.test_sequential(a, b) {
                Ok(o) => o.answer.to_string(),
                Err(_) => "Maybe (no common anchor)".to_owned(),
            };
            pair_lines.push(format!("{a:<14} vs {b:<14} {verdict}"));
        }
    }
    if !pair_lines.is_empty() {
        let _ = writeln!(out, "-- pairwise conflicts (>=1 write) --");
        for l in pair_lines {
            let _ = writeln!(out, "{l}");
        }
    }
    Ok(())
}

/// `apt report`: renders the parallelization report — for one procedure,
/// or for every procedure when none is named.
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn cmd_report(program_text: &str, proc_name: Option<&str>) -> Result<String, CliError> {
    let program = apt_ir::parse_program(program_text).map_err(|e| fail(e.to_string()))?;
    let names: Vec<String> = match proc_name {
        Some(n) => vec![n.to_owned()],
        None => program.procs.iter().map(|p| p.name.clone()).collect(),
    };
    if names.is_empty() {
        return Err(fail("program has no procedures"));
    }
    let mut out = String::new();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        report_proc(program_text, name, &mut out)?;
    }
    Ok(out)
}

/// Usage text.
pub const USAGE: &str = "\
apt — the axiom-based pointer dependence test (PLDI 1994 reproduction)

USAGE:
  apt prove  <axioms-file> <path1> <path2> [--distinct | --unknown]
  apt apm    <program-file> [--proc <name>]
  apt query  <program-file> [--proc <name>] --from <S> --to <T>
  apt query  <program-file> [--proc <name>] --carried <U> [--loop <L>]
  apt report <program-file> [--proc <name>]

Axiom files hold either an ADDS description (structure { tree L, R; … })
or one 'forall …' axiom per line. Program files use the mini pointer
language (see the repository README).";

/// Runs the CLI on the given argument list (everything after the program
/// name). Returns the text to print on success.
///
/// # Errors
///
/// Returns a [`CliError`] for the caller to print and exit nonzero.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))
    };
    let flag_value = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    match args.first().map(String::as_str) {
        Some("prove") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let a = args.get(2).ok_or_else(|| fail(USAGE))?;
            let b = args.get(3).ok_or_else(|| fail(USAGE))?;
            let origin = if args.iter().any(|x| x == "--distinct") {
                Origin::Distinct
            } else {
                Origin::Same
            };
            cmd_prove(&read(file)?, a, b, origin)
        }
        Some("apm") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            cmd_apm(&read(file)?, flag_value("--proc"))
        }
        Some("query") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            let text = read(file)?;
            let proc = flag_value("--proc");
            if let Some(u) = flag_value("--carried") {
                cmd_query_carried(&text, proc, u, flag_value("--loop"))
            } else {
                let from = flag_value("--from").ok_or_else(|| fail(USAGE))?;
                let to = flag_value("--to").ok_or_else(|| fail(USAGE))?;
                cmd_query_sequential(&text, proc, from, to)
            }
        }
        Some("report") => {
            let file = args.get(1).ok_or_else(|| fail(USAGE))?;
            cmd_report(&read(file)?, flag_value("--proc"))
        }
        _ => Err(fail(USAGE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIST_PROGRAM: &str = r"
        type List {
            ptr link: List;
            data f;
            axiom A1: forall p <> q, p.link <> q.link;
            axiom A2: forall p, p.link+ <> p.eps;
        }
        proc update(head: List) {
            q = head;
            loop {
            U:  q->f = fun();
                q = q->link;
            }
        V:  head->f = 0;
        }";

    #[test]
    fn load_axioms_autodetects_formats() {
        let adds = load_axioms("structure T { tree L, R; }").expect("adds");
        assert_eq!(adds.len(), 2);
        let plain = load_axioms("A1: forall p, p.L <> p.R").expect("plain");
        assert_eq!(plain.len(), 1);
        assert!(load_axioms("garbage here").is_err());
    }

    #[test]
    fn prove_command_proves_and_reports() {
        let out = cmd_prove(
            "structure T { tree L, R; list N; acyclic L, R, N; }",
            "L.L.N",
            "L.R.N",
            Origin::Same,
        )
        .expect("runs");
        assert!(out.contains("PROVEN"), "{out}");
        assert!(out.contains("checked"), "{out}");
        let out =
            cmd_prove("structure T { tree L, R; }", "L.(L|R)*", "L", Origin::Same).expect("runs");
        assert!(out.contains("Maybe"), "{out}");
    }

    #[test]
    fn apm_command_prints_matrices() {
        let out = cmd_apm(LIST_PROGRAM, None).expect("runs");
        assert!(out.contains("-- U: write of q->f --"), "{out}");
        assert!(out.contains("_hhead"), "{out}");
    }

    #[test]
    fn query_commands_answer() {
        let out = cmd_query_carried(LIST_PROGRAM, Some("update"), "U", None).expect("runs");
        assert!(out.contains("answer: No"), "{out}");
        let out = cmd_query_sequential(LIST_PROGRAM, None, "U", "V").expect("runs");
        // U's paths don't survive relative to head's handle… either way it
        // must answer, not crash.
        assert!(out.contains("answer:"), "{out}");
    }

    #[test]
    fn report_flags_parallelizable_loops() {
        let lines = report_lines(LIST_PROGRAM, None).expect("runs");
        let u = lines.iter().find(|l| l.label == "U").expect("U listed");
        assert_eq!(u.loop_depth, 1);
        assert_eq!(u.carried, Some(Answer::No));
        let v = lines.iter().find(|l| l.label == "V").expect("V listed");
        assert_eq!(v.loop_depth, 0);
        assert_eq!(v.carried, None);
        let rendered = cmd_report(LIST_PROGRAM, None).expect("renders");
        assert!(rendered.contains("PARALLELIZABLE"), "{rendered}");
        assert!(rendered.contains("pairwise conflicts"), "{rendered}");
    }

    #[test]
    fn report_covers_all_procedures_by_default() {
        let two_procs = format!(
            "{LIST_PROGRAM}
            proc touch(h: List) {{
            W:  h->f = 9;
            }}"
        );
        let rendered = cmd_report(&two_procs, None).expect("renders");
        assert!(rendered.contains("procedure update"), "{rendered}");
        assert!(rendered.contains("procedure touch"), "{rendered}");
    }

    #[test]
    fn run_dispatches_and_reports_usage() {
        let e = run(&[]).unwrap_err();
        assert!(e.0.contains("USAGE"));
        let e = run(&["bogus".into()]).unwrap_err();
        assert!(e.0.contains("USAGE"));
    }
}
