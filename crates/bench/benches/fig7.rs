//! Criterion benches for the Figure 7 pipeline: the sparse kernels that
//! generate the task traces, and the machine-model scheduling itself.

use apt_bench::fig7::{classify, AnalysisKind};
use apt_heaps::gen::random_sparse_matrix;
use apt_heaps::numeric::{factor, scale, solve, LoopClassification};
use apt_parsim::MachineModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn factor_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_factor");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let m0 = random_sparse_matrix(n, 10 * n, 1994);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut m = m0.clone();
                black_box(factor(&mut m, LoopClassification::full()))
            })
        });
    }
    group.finish();
}

fn scale_solve_kernels(c: &mut Criterion) {
    let n = 400;
    let m0 = random_sparse_matrix(n, 10 * n, 1994);
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();
    let mut factored = m0.clone();
    let fr = factor(&mut factored, LoopClassification::full());

    let mut group = c.benchmark_group("fig7_linear_kernels");
    group.bench_function("scale_400", |bench| {
        bench.iter(|| {
            let mut m = m0.clone();
            black_box(scale(&mut m, 1.5, LoopClassification::full()))
        })
    });
    group.bench_function("solve_400", |bench| {
        bench.iter(|| black_box(solve(&factored, &fr.pivots, &b, LoopClassification::full())))
    });
    group.finish();
}

fn schedule_and_classify(c: &mut Criterion) {
    let n = 200;
    let mut m = random_sparse_matrix(n, 10 * n, 1994);
    let fr = factor(&mut m, LoopClassification::full());

    let mut group = c.benchmark_group("fig7_machinery");
    group.bench_function("makespan_7pe", |bench| {
        let machine = MachineModel {
            pes: 7,
            barrier_overhead: 200,
        };
        bench.iter(|| black_box(fr.trace.makespan_on(machine)))
    });
    // The analysis-driven loop classification (IR parse + APM analysis +
    // APT proofs) — the compile-time cost of the whole §5 pipeline.
    group.bench_function("classify_full", |bench| {
        bench.iter(|| black_box(classify(AnalysisKind::Full)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = factor_kernel, scale_solve_kernels, schedule_and_classify
}
criterion_main!(benches);
