//! Ablation benches: what each prover rule family contributes, measured
//! on the accuracy suite (DESIGN.md calls these out as the design-choice
//! experiments).
//!
//! Each configuration runs the full query suite; alongside the timing,
//! the bench asserts the expected *power* ordering once at setup: every
//! ablated configuration stays sound and breaks at most as many false
//! dependences as the full configuration.

use apt_bench::accuracy::{family_axioms, suite, GroundTruth};
use apt_core::{DepQuery, Origin, Prover, ProverConfig};
use apt_regex::Path;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn run_suite(config: &ProverConfig) -> (usize, usize) {
    let mut broken = 0;
    let mut unsound = 0;
    for case in suite() {
        let axioms = family_axioms(case.family);
        let mut prover = Prover::with_config(&axioms, config.clone());
        let a = Path::parse(case.a).expect("path");
        let b = Path::parse(case.b).expect("path");
        if case.origin == Origin::Same && a == b && a.is_definite() {
            continue; // a definite Yes, not a disjointness query
        }
        let no = DepQuery::disjoint(&a, &b)
            .origin(case.origin)
            .run_with(&mut prover)
            .proof
            .is_some();
        match (case.truth, no) {
            (GroundTruth::Independent, true) => broken += 1,
            (GroundTruth::Dependent, true) => unsound += 1,
            _ => {}
        }
    }
    (broken, unsound)
}

fn configs() -> Vec<(&'static str, ProverConfig)> {
    let full = ProverConfig::default();
    let mut no_decompose = full.clone();
    no_decompose.enable_decompose = false;
    let mut no_peels = full.clone();
    no_peels.enable_tail_peel = false;
    no_peels.enable_head_peel = false;
    let mut no_closure = full.clone();
    no_closure.enable_closure_peel = false;
    vec![
        ("full", full),
        ("no_decompose", no_decompose),
        ("no_peels", no_peels),
        ("no_closure_induction", no_closure),
        ("direct_axioms_only", ProverConfig::direct_only()),
    ]
}

fn ablation(c: &mut Criterion) {
    // Power check, printed once.
    let mut reference = None;
    for (name, config) in configs() {
        let (broken, unsound) = run_suite(&config);
        assert_eq!(unsound, 0, "{name} must stay sound");
        eprintln!("ablation power: {name:<22} breaks {broken} false dependences");
        match &reference {
            None => reference = Some(broken),
            Some(full_broken) => assert!(
                broken <= *full_broken,
                "{name} cannot beat the full configuration"
            ),
        }
    }

    let mut group = c.benchmark_group("ablation_suite");
    for (name, config) in configs() {
        group.bench_function(name, |bench| bench.iter(|| black_box(run_suite(&config))));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation
}
criterion_main!(benches);
