//! Criterion benches for the regular-expression substrate — the subset
//! decision (`M1 ∩ ¬M2 = ∅`, [HU79]) the paper identifies as the
//! dominant prover cost.

use apt_regex::{dfa::Dfa, ops, parse, Regex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn literal_chain(n: usize) -> Regex {
    Regex::word((0..n).map(|i| if i % 2 == 0 { "L" } else { "N" }))
}

fn subset_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_subset");
    let closure = parse("(L|N|R)*").expect("regex");
    for n in [4usize, 16, 64, 256] {
        let chain = literal_chain(n);
        group.bench_with_input(BenchmarkId::new("chain_in_closure", n), &n, |b, _| {
            b.iter(|| black_box(ops::is_subset(black_box(&chain), black_box(&closure))))
        });
    }
    group.finish();
}

fn paper_axiom_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("regex_paper_ops");
    let sparse_all = parse("(rows|cols|relem|celem|nrowH|ncolH|nrowE|ncolE)+").expect("regex");
    let rows = parse("nrowE+.ncolE*").expect("regex");
    group.bench_function("appendix_a_acyclicity_subset", |b| {
        b.iter(|| black_box(ops::is_subset(black_box(&rows), black_box(&sparse_all))))
    });
    let a = parse("(L|R)+.N+").expect("regex");
    group.bench_function("conservative_self_intersection", |b| {
        b.iter(|| black_box(ops::is_disjoint(black_box(&a), black_box(&a))))
    });
    group.bench_function("dfa_build_appendix_alphabet", |b| {
        let alpha = sparse_all.symbols();
        b.iter(|| black_box(Dfa::build(black_box(&sparse_all), &alpha)))
    });
    group.finish();
}

fn minimization(c: &mut Criterion) {
    let re = parse("((L|R).(L|R))*.N.(L|R)+").expect("regex");
    let alpha = re.symbols();
    let dfa = Dfa::build(&re, &alpha);
    c.bench_function("regex_minimize", |b| b.iter(|| black_box(dfa.minimize())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = subset_scaling, paper_axiom_checks, minimization
}
criterion_main!(benches);
