//! Criterion benches for the APT prover itself: the paper's flagship
//! queries, and the §4.2 scaling study over growing path lengths.

use apt_bench::complexity::query_for;
use apt_core::{DepQuery, Origin, Prover};
use apt_regex::Path;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn flagship_queries(c: &mut Criterion) {
    let llt = apt_axioms::adds::leaf_linked_tree_axioms();
    let sm_min = apt_axioms::adds::sparse_matrix_minimal_axioms();
    let sm_full = apt_axioms::adds::sparse_matrix_axioms();

    let mut group = c.benchmark_group("flagship");
    group.bench_function("section_3_3_LLN_vs_LRN", |b| {
        let p = Path::parse("L.L.N").expect("path");
        let q = Path::parse("L.R.N").expect("path");
        b.iter(|| {
            let mut prover = Prover::new(&llt);
            black_box(
                DepQuery::disjoint(black_box(&p), black_box(&q))
                    .origin(Origin::Same)
                    .run_with(&mut prover)
                    .proof,
            )
        })
    });
    group.bench_function("theorem_T_minimal_axioms", |b| {
        let p = Path::parse("ncolE+").expect("path");
        let q = Path::parse("nrowE+.ncolE+").expect("path");
        b.iter(|| {
            let mut prover = Prover::new(&sm_min);
            black_box(
                DepQuery::disjoint(black_box(&p), black_box(&q))
                    .origin(Origin::Same)
                    .run_with(&mut prover)
                    .proof,
            )
        })
    });
    group.bench_function("theorem_T_appendix_A", |b| {
        let p = Path::parse("ncolE+").expect("path");
        let q = Path::parse("nrowE+.ncolE+").expect("path");
        b.iter(|| {
            let mut prover = Prover::new(&sm_full);
            black_box(
                DepQuery::disjoint(black_box(&p), black_box(&q))
                    .origin(Origin::Same)
                    .run_with(&mut prover)
                    .proof,
            )
        })
    });
    group.bench_function("subtree_star_induction", |b| {
        let axioms = apt_axioms::AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .expect("parses");
        let p = Path::parse("L.(L|R)*").expect("path");
        let q = Path::parse("R.(L|R)*").expect("path");
        b.iter(|| {
            let mut prover = Prover::new(&axioms);
            black_box(
                DepQuery::disjoint(black_box(&p), black_box(&q))
                    .origin(Origin::Same)
                    .run_with(&mut prover)
                    .proof,
            )
        })
    });
    group.finish();
}

/// The §4.2 claim: practical cost grows as a low-degree polynomial in the
/// combined path length.
fn prover_scaling(c: &mut Criterion) {
    let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
    let mut group = c.benchmark_group("prover_scaling");
    for n in [4usize, 8, 16, 32, 64] {
        let (a, b) = query_for(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut prover = Prover::new(&axioms);
                black_box(
                    DepQuery::disjoint(black_box(&a), black_box(&b))
                        .origin(Origin::Same)
                        .run_with(&mut prover)
                        .proof,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = flagship_queries, prover_scaling
}
criterion_main!(benches);
