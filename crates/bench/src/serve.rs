//! Serving-layer throughput: warm resident sessions vs. a fresh
//! process (or engine) per query.
//!
//! The daemon's reason to exist is amortization: compiling an axiom set
//! and warming its caches once, then answering many queries. This
//! bench quantifies that against the workflow it replaces — running
//! `apt prove` afresh for every query — on the disjointness half of the
//! Figure 7 sparse-matrix suite (the `apt prove` subcommand does not do
//! equality queries, so the process baseline couldn't either).
//!
//! Three strategies, identical query stream:
//!
//! 1. **fresh-process** — spawn the `apt` binary per query (compile the
//!    axiom set, prove, exit). Skipped when the binary isn't next to
//!    this bench (e.g. `cargo run` without building `apt-cli`).
//! 2. **fresh-engine** — a new in-process [`DepEngine`] per query: the
//!    process baseline minus exec/link overhead.
//! 3. **warm-session** — one `open_session` against a real loopback
//!    daemon, then sequential `prove` round-trips over TCP (so the
//!    serving number *includes* protocol and socket overhead).
//!
//! Every warm-session verdict must fingerprint-match the fresh-engine
//! oracle; the process baseline is checked at answer level. The run
//! also probes admission control: a tiny server (one worker, one queue
//! slot) is offered four slow queries at once and must refuse the
//! excess with `overloaded` frames — quickly, not by timing out.

use apt_axioms::adds::{leaf_linked_tree_axioms, sparse_matrix_axioms};
use apt_core::{Answer, DepEngine, DepQuery, MaybeReason, Origin};
use apt_regex::Path;
use apt_serve::json::{obj, parse, Json};
use apt_serve::{Client, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Bench tuning.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Suite depth (the Figure 7 `i`/`j` range).
    pub depth: usize,
    /// Timed repetitions of the warm-session pass (best-of).
    pub reps: usize,
    /// Idle connections the concurrency probe tries to hold (scaled
    /// down to what the fd limit allows — both ends live in this
    /// process, so each connection costs two descriptors).
    pub idle_conns: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> ServeBenchConfig {
        ServeBenchConfig {
            depth: 4,
            reps: 5,
            idle_conns: 10_000,
        }
    }
}

impl ServeBenchConfig {
    /// The small configuration used by CI smoke runs.
    pub fn smoke() -> ServeBenchConfig {
        ServeBenchConfig {
            depth: 2,
            reps: 2,
            idle_conns: 1_200,
        }
    }
}

/// One disjointness query of the suite, in every representation the
/// bench needs (wire fields double as CLI arguments).
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// First access path, concrete syntax.
    pub a: String,
    /// Second access path, concrete syntax.
    pub b: String,
    /// Distinct-origin query?
    pub distinct: bool,
}

/// The disjointness half of the Figure 7 suite (Theorem T instances,
/// loop-carried row walks, and distinct-origin probes).
pub fn suite(depth: usize) -> Vec<SuiteQuery> {
    let chain = |sym: &str, n: usize| vec![sym.to_owned(); n].join(".");
    let mut suite = Vec::new();
    for i in 1..=depth {
        for j in 1..=depth {
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: format!("{}.ncolE+", chain("nrowE", j)),
                distinct: false,
            });
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: format!("ncolE+.{}", chain("ncolE", j)),
                distinct: false,
            });
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: chain("nrowE", j),
                distinct: true,
            });
        }
    }
    suite
}

fn to_dep_query(q: &SuiteQuery) -> DepQuery {
    let a = Path::parse(&q.a).expect("suite path parses");
    let b = Path::parse(&q.b).expect("suite path parses");
    DepQuery::disjoint(&a, &b).origin(if q.distinct {
        Origin::Distinct
    } else {
        Origin::Same
    })
}

/// The verdict fingerprint compared between strategies.
pub type VerdictKey = (Answer, Option<MaybeReason>, bool);

/// Crash-restart warmth: time from daemon start to a completed suite
/// pass, with and without a warm-state snapshot to restore from.
#[derive(Debug, Clone)]
pub struct RestartResult {
    /// Micros from server start to first completed pass, cold (no
    /// snapshot directory configured): pays axiom compilation and full
    /// proof search.
    pub cold_micros: u128,
    /// Micros from server start to first completed pass when restoring
    /// a snapshot written by a previous graceful shutdown — includes
    /// the restore itself.
    pub warm_micros: u128,
    /// `cold_micros / warm_micros`.
    pub speedup: f64,
    /// The `last_restore` outcome the restarted daemon reported
    /// (`"warm"` when every snapshot section restored).
    pub restore: String,
    /// Goal-cache entries the restore republished.
    pub restored_goals: u64,
    /// Whether both restart passes matched the in-process oracle.
    pub verdicts_identical: bool,
}

impl RestartResult {
    /// The headline gate: restored warm, answers right, and at least
    /// 3x faster to first warm pass than a cold restart.
    pub fn behaved(&self) -> bool {
        self.verdicts_identical && self.restore == "warm" && self.speedup >= 3.0
    }
}

/// Connection-scaling probe: thousands of idle connections must cost
/// state, not threads, and must not degrade the active clients
/// threading requests through the crowd.
#[derive(Debug, Clone)]
pub struct ConcurrencyResult {
    /// Idle connections actually held.
    pub connections: usize,
    /// What the config asked for before fd-limit scaling.
    pub target: usize,
    /// Process thread count before the idle crowd connected.
    pub threads_before: usize,
    /// Process thread count with every idle connection held — the
    /// headline invariant is `threads_during == threads_before`.
    pub threads_during: usize,
    /// VmRSS (kB) before the idle crowd connected.
    pub rss_before_kb: u64,
    /// VmRSS (kB) with every idle connection held. Both socket ends
    /// live in this process, so the delta is an upper bound on the
    /// server's own per-connection memory.
    pub rss_during_kb: u64,
    /// `(rss_during - rss_before) * 1024 / connections`.
    pub rss_per_conn_bytes: u64,
    /// Median connect-to-first-response-byte micros for a fresh
    /// connection arriving while the idle crowd is held.
    pub accept_to_first_byte_p50_us: u64,
    /// Active-load round-trips measured (4 clients, mixed with idle).
    pub active_requests: usize,
    /// Client-observed p50 round-trip micros under mixed load.
    pub p50_us: u64,
    /// Client-observed p99 round-trip micros under mixed load.
    pub p99_us: u64,
    /// Server-side request-service p50/p99 micros (from the `stats`
    /// latency histograms).
    pub server_request_p50_us: u64,
    /// Server-side p99.
    pub server_request_p99_us: u64,
    /// Server-side queue-wait p99 micros.
    pub server_queue_p99_us: u64,
    /// Every active-load verdict matched the in-process oracle.
    pub verdicts_identical: bool,
}

impl ConcurrencyResult {
    /// The gate: no thread growth, right answers, and a crowd of at
    /// least a thousand (or the scaled-down target on tiny fd limits).
    pub fn behaved(&self) -> bool {
        self.threads_during == self.threads_before
            && self.verdicts_identical
            && self.connections >= self.target.min(1_000)
    }
}

/// The measured result.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Queries per suite pass.
    pub queries: usize,
    /// Total micros for one fresh-process pass (`None` when the `apt`
    /// binary was not found next to the bench).
    pub fresh_process_micros: Option<u128>,
    /// Total micros for one fresh-engine-per-query pass.
    pub fresh_engine_micros: u128,
    /// Best-of-reps total micros for a warm-session pass over TCP.
    pub warm_session_micros: u128,
    /// Warm-session throughput, queries/second.
    pub warm_qps: f64,
    /// Speedup of warm-session over fresh-process (when measured).
    pub speedup_vs_process: Option<f64>,
    /// Speedup of warm-session over fresh-engine.
    pub speedup_vs_fresh_engine: f64,
    /// Whether every warm-session verdict matched the oracle (and the
    /// process baseline agreed at answer level).
    pub verdicts_identical: bool,
    /// Overload probe: refusals observed (expected exactly 2).
    pub overload_refusals: u64,
    /// Overload probe: refusals arrived promptly and the server stayed
    /// healthy (no timeouts, no crashes, exactly the expected count).
    pub overload_ok: bool,
    /// Crash-restart warmth probe.
    pub restart: RestartResult,
    /// Connection-scaling probe.
    pub concurrency: ConcurrencyResult,
}

impl ServeBenchResult {
    /// Renders `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7-sparse-matrix-disjoint\",");
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        match self.fresh_process_micros {
            Some(us) => {
                let _ = writeln!(s, "  \"fresh_process_micros\": {us},");
            }
            None => {
                let _ = writeln!(s, "  \"fresh_process_micros\": null,");
            }
        }
        let _ = writeln!(
            s,
            "  \"fresh_engine_micros\": {},",
            self.fresh_engine_micros
        );
        let _ = writeln!(
            s,
            "  \"warm_session_micros\": {},",
            self.warm_session_micros
        );
        let _ = writeln!(s, "  \"warm_session_qps\": {:.1},", self.warm_qps);
        match self.speedup_vs_process {
            Some(x) => {
                let _ = writeln!(s, "  \"speedup_vs_fresh_process\": {x:.2},");
            }
            None => {
                let _ = writeln!(s, "  \"speedup_vs_fresh_process\": null,");
            }
        }
        let _ = writeln!(
            s,
            "  \"speedup_vs_fresh_engine\": {:.2},",
            self.speedup_vs_fresh_engine
        );
        let _ = writeln!(s, "  \"verdicts_identical\": {},", self.verdicts_identical);
        let _ = writeln!(
            s,
            "  \"overload\": {{\"workers\": 1, \"high_water\": 1, \"offered\": 4, \
             \"refusals\": {}, \"behaved\": {}}},",
            self.overload_refusals, self.overload_ok
        );
        let r = &self.restart;
        let _ = writeln!(
            s,
            "  \"restart\": {{\"cold_micros\": {}, \"warm_micros\": {}, \
             \"speedup\": {:.2}, \"restore\": \"{}\", \"restored_goals\": {}, \
             \"verdicts_identical\": {}, \"behaved\": {}}},",
            r.cold_micros,
            r.warm_micros,
            r.speedup,
            r.restore,
            r.restored_goals,
            r.verdicts_identical,
            r.behaved()
        );
        let c = &self.concurrency;
        let _ = writeln!(
            s,
            "  \"concurrency\": {{\"connections\": {}, \"target\": {}, \
             \"threads_before\": {}, \"threads_during\": {}, \
             \"rss_before_kb\": {}, \"rss_during_kb\": {}, \
             \"rss_per_conn_bytes\": {}, \"accept_to_first_byte_p50_us\": {}, \
             \"active_requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"server_request_p50_us\": {}, \"server_request_p99_us\": {}, \
             \"server_queue_p99_us\": {}, \"verdicts_identical\": {}, \
             \"behaved\": {}}}",
            c.connections,
            c.target,
            c.threads_before,
            c.threads_during,
            c.rss_before_kb,
            c.rss_during_kb,
            c.rss_per_conn_bytes,
            c.accept_to_first_byte_p50_us,
            c.active_requests,
            c.p50_us,
            c.p99_us,
            c.server_request_p50_us,
            c.server_request_p99_us,
            c.server_queue_p99_us,
            c.verdicts_identical,
            c.behaved()
        );
        s.push_str("}\n");
        s
    }
}

fn prove_frame(session: &str, q: &SuiteQuery) -> String {
    obj(vec![
        ("verb", Json::from("prove")),
        ("session", session.into()),
        ("a", q.a.as_str().into()),
        ("b", q.b.as_str().into()),
        (
            "origin",
            if q.distinct { "distinct" } else { "same" }.into(),
        ),
    ])
    .render()
}

fn fingerprint_wire(result: &Json) -> Option<VerdictKey> {
    let (answer, reason) = apt_serve::proto::parse_verdict(result)?;
    let has_proof = !matches!(result.get("proof"), None | Some(Json::Null));
    Some((answer, reason, has_proof))
}

/// Locates the `apt` binary next to the running bench, if present.
fn apt_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let apt = exe.parent()?.join("apt");
    apt.is_file().then_some(apt)
}

/// Runs the bench.
pub fn run(config: &ServeBenchConfig) -> ServeBenchResult {
    let suite = suite(config.depth);
    let axioms_text = sparse_matrix_axioms().to_string();
    let reps = config.reps.max(1);

    // Oracle fingerprints: fresh engine per query (also the in-process
    // timing baseline — it pays compilation per query, like a process).
    let started = Instant::now();
    let oracle: Vec<VerdictKey> = suite
        .iter()
        .map(|q| {
            let engine = DepEngine::new(sparse_matrix_axioms());
            let outcome = to_dep_query(q).run(&engine);
            (
                outcome.verdict.answer,
                outcome.verdict.reason,
                outcome.proof.is_some(),
            )
        })
        .collect();
    let fresh_engine_micros = started.elapsed().as_micros();

    // Fresh-process baseline: `apt prove` per query, axioms from a file.
    let mut verdicts_identical = true;
    let fresh_process_micros = apt_binary().map(|apt| {
        let file =
            std::env::temp_dir().join(format!("apt-serve-bench-{}.axioms", std::process::id()));
        std::fs::write(&file, &axioms_text).expect("write axiom file");
        let started = Instant::now();
        for (q, oracle_key) in suite.iter().zip(&oracle) {
            let mut cmd = std::process::Command::new(&apt);
            cmd.arg("prove").arg(&file).arg(&q.a).arg(&q.b);
            if q.distinct {
                cmd.arg("--distinct");
            }
            let status = cmd
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("spawn apt");
            // Exit 0 = proven disjoint (answer No), 1 = Maybe.
            let answer = match status.code() {
                Some(0) => Answer::No,
                Some(1) => Answer::Maybe,
                other => panic!("apt prove exited with {other:?}"),
            };
            verdicts_identical &= answer == oracle_key.0;
        }
        let micros = started.elapsed().as_micros();
        let _ = std::fs::remove_file(&file);
        micros
    });

    // Warm session over loopback TCP.
    let mut server = Server::new(ServeConfig::new());
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client.open_session(&axioms_text).expect("open session");
    let frames: Vec<String> = suite.iter().map(|q| prove_frame(&session, q)).collect();
    let mut warm_session_micros = u128::MAX;
    // One untimed pass warms the session's caches; `reps` timed passes
    // then measure the steady state a resident service actually serves.
    for rep in 0..=reps {
        let started = Instant::now();
        for (i, frame) in frames.iter().enumerate() {
            let reply = client.roundtrip_raw(frame).expect("prove round-trip");
            let result = reply.get("result").expect("result field");
            let key = fingerprint_wire(result).expect("verdict parses");
            verdicts_identical &= key == oracle[i];
        }
        if rep > 0 {
            warm_session_micros = warm_session_micros.min(started.elapsed().as_micros());
        }
    }
    handle.stop();
    let _ = client.shutdown(); // speeds the drain; stop() already queued
    server_thread.join().expect("server thread");

    let overload_refusals = overload_probe();
    let restart = restart_probe();
    let concurrency = concurrency_probe(config.idle_conns, &suite, &oracle, &axioms_text);
    let secs = warm_session_micros as f64 / 1e6;
    ServeBenchResult {
        queries: suite.len(),
        fresh_process_micros,
        fresh_engine_micros,
        warm_session_micros,
        warm_qps: suite.len() as f64 / secs,
        speedup_vs_process: fresh_process_micros.map(|us| us as f64 / warm_session_micros as f64),
        speedup_vs_fresh_engine: fresh_engine_micros as f64 / warm_session_micros as f64,
        verdicts_identical,
        overload_refusals,
        overload_ok: overload_refusals == 2,
        restart,
        concurrency,
    }
}

/// Threads and VmRSS (kB) of this process, from /proc.
fn proc_threads_rss() -> (usize, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| {
        status
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .and_then(|v| {
                v.split_whitespace()
                    .next()
                    .and_then(|n| n.parse::<u64>().ok())
            })
            .unwrap_or(0)
    };
    (field("Threads:") as usize, field("VmRSS:"))
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Holds as many idle connections as the fd limit allows (both ends in
/// this process: two fds each) while four active clients run suite
/// passes through the crowd, then reads the server's own latency
/// histograms back out of `stats`.
fn concurrency_probe(
    target: usize,
    suite: &[SuiteQuery],
    oracle: &[VerdictKey],
    axioms_text: &str,
) -> ConcurrencyResult {
    let connections = match apt_serve::poll::nofile_limit() {
        // Reserve 1024 fds for everything that is not an idle pair.
        Some(limit) => target.min((limit.saturating_sub(1024) / 2) as usize),
        None => target.min(1_000),
    };

    let mut server = Server::new(ServeConfig::new());
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Warm the session before measuring anything.
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client.open_session(axioms_text).expect("open session");
    let mut verdicts_identical = suite_pass(&mut client, &session, suite, oracle);

    let (threads_before, rss_before_kb) = proc_threads_rss();

    // The idle crowd. Pace the connects so the single-threaded accept
    // loop keeps up with the listen backlog (one CPU runs both ends).
    let mut idle: Vec<TcpStream> = Vec::with_capacity(connections);
    for i in 0..connections {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("idle connect {i}/{connections}: {e}"),
        }
        if i % 100 == 99 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    std::thread::sleep(Duration::from_millis(200));
    let (threads_during, rss_during_kb) = proc_threads_rss();

    // Accept-to-first-byte for fresh arrivals behind the crowd.
    let mut accept_us: Vec<u64> = (0..32)
        .map(|_| {
            let started = Instant::now();
            let mut s = TcpStream::connect(addr).expect("probe connect");
            s.write_all(b"{\"verb\":\"hello\"}\n").expect("probe send");
            let mut byte = [0u8; 1];
            std::io::Read::read_exact(&mut s, &mut byte).expect("probe first byte");
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
        })
        .collect();
    accept_us.sort_unstable();

    // Mixed load: four clients hammer prove round-trips through the
    // idle crowd, each timing every request.
    const PASSES: usize = 10;
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.to_string();
            let axioms_text = axioms_text.to_owned();
            let suite = suite.to_vec();
            let oracle = oracle.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("active connect");
                let session = client.open_session(&axioms_text).expect("active open");
                let mut lat = Vec::with_capacity(PASSES * suite.len());
                let mut identical = true;
                for _ in 0..PASSES {
                    for (q, oracle_key) in suite.iter().zip(&oracle) {
                        let started = Instant::now();
                        let reply = client
                            .roundtrip_raw(&prove_frame(&session, q))
                            .expect("active prove");
                        lat.push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
                        let result = reply.get("result").expect("result field");
                        let key = fingerprint_wire(result).expect("verdict parses");
                        identical &= key == *oracle_key;
                    }
                }
                (lat, identical)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for worker in workers {
        let (lat, identical) = worker.join().expect("active client");
        latencies.extend(lat);
        verdicts_identical &= identical;
    }
    latencies.sort_unstable();

    // The server's own histograms, through the same wire they ship on.
    let stats = client
        .roundtrip_raw(&obj(vec![("verb", Json::from("stats"))]).render())
        .expect("stats round-trip");
    let hist_quantile = |which: &str, q: &str| {
        stats
            .get("server")
            .and_then(|s| s.get("latency"))
            .and_then(|l| l.get(which))
            .and_then(|h| h.get(q))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    let active = latencies.len();
    drop(idle);
    handle.stop();
    let _ = client.shutdown();
    server_thread.join().expect("server thread");

    ConcurrencyResult {
        connections,
        target,
        threads_before,
        threads_during,
        rss_before_kb,
        rss_during_kb,
        rss_per_conn_bytes: rss_during_kb.saturating_sub(rss_before_kb) * 1024
            / connections.max(1) as u64,
        accept_to_first_byte_p50_us: percentile(&accept_us, 0.50),
        active_requests: active,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        server_request_p50_us: hist_quantile("request_us", "p50_us"),
        server_request_p99_us: hist_quantile("request_us", "p99_us"),
        server_queue_p99_us: hist_quantile("queue_wait_us", "p99_us"),
        verdicts_identical,
    }
}

/// One suite pass over an already-connected client; `true` when every
/// verdict fingerprint matches the oracle.
fn suite_pass(
    client: &mut Client,
    session: &str,
    suite: &[SuiteQuery],
    oracle: &[VerdictKey],
) -> bool {
    let mut identical = true;
    for (q, oracle_key) in suite.iter().zip(oracle) {
        let reply = client
            .roundtrip_raw(&prove_frame(session, q))
            .expect("prove round-trip");
        let result = reply.get("result").expect("result field");
        let key = fingerprint_wire(result).expect("verdict parses");
        identical &= key == *oracle_key;
    }
    identical
}

/// Starts a daemon (optionally restoring from `snapshot_dir`), runs one
/// suite pass, and reads the restore outcome from `stats`. Returns
/// micros from server construction through the completed pass — the
/// restore, the `open_session`, and every round-trip all count.
fn restart_pass(
    snapshot_dir: Option<PathBuf>,
    suite: &[SuiteQuery],
    axioms_text: &str,
    oracle: &[VerdictKey],
) -> (u128, bool, String, u64) {
    let started = Instant::now();
    let mut config = ServeConfig::new();
    config.snapshot_dir = snapshot_dir;
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client.open_session(axioms_text).expect("open session");
    let identical = suite_pass(&mut client, &session, suite, oracle);
    let micros = started.elapsed().as_micros();

    let reply = client
        .roundtrip_raw(&obj(vec![("verb", Json::from("stats"))]).render())
        .expect("stats round-trip");
    // Stats fields sit at the top level of the reply frame.
    let snap = reply
        .get("server")
        .and_then(|s| s.get("snapshot"))
        .cloned()
        .unwrap_or(Json::Null);
    let restore = snap
        .get("last_restore")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_owned();
    let restored_goals = snap
        .get("restored_goals")
        .and_then(Json::as_u64)
        .unwrap_or(0);

    handle.stop();
    let _ = client.shutdown();
    server_thread.join().expect("server thread");
    (micros, identical, restore, restored_goals)
}

/// The restart probe's own suite, on the leaf-linked tree: star-tower
/// queries whose proof search costs milliseconds cold and nothing
/// warm, plus provable disjointness pairs so the snapshot's proof
/// entries (and the restore-time proof spot-check) are exercised too.
///
/// The Figure 7 suite is wrong for this probe: its queries resolve in
/// tens of microseconds, so restart time drowns in fixed per-query
/// round-trip cost and a warm cache can't show up in the clock.
fn restart_suite() -> Vec<SuiteQuery> {
    let mut suite = Vec::new();
    for k in [4usize, 6, 8, 10] {
        suite.push(SuiteQuery {
            a: format!("{}.N", vec!["L"; 2 * k].join(".")),
            b: format!("{}.N", vec!["(L|R)+"; k].join(".")),
            distinct: false,
        });
    }
    for i in 1..=4 {
        suite.push(SuiteQuery {
            a: format!("{}.N", vec!["L"; i].join(".")),
            b: format!("{}.N", vec!["R"; i].join(".")),
            distinct: false,
        });
        suite.push(SuiteQuery {
            a: vec!["L"; i].join("."),
            b: vec!["R"; i].join("."),
            distinct: true,
        });
    }
    suite
}

/// Measures cold-restart-to-warm time with and without snapshots.
///
/// A first daemon warms a session on the restart suite and shuts down
/// gracefully, persisting its caches. Two restarts then race the same
/// suite: one cold (no snapshot directory), one restoring the
/// snapshot. The warm restart must answer identically and reach the
/// end of its first pass at least 3x sooner — the whole point of
/// persisting warm state across a crash or deploy.
fn restart_probe() -> RestartResult {
    let suite = restart_suite();
    let axioms_text = leaf_linked_tree_axioms().to_string();
    let oracle: Vec<VerdictKey> = suite
        .iter()
        .map(|q| {
            let engine = DepEngine::new(leaf_linked_tree_axioms());
            let outcome = to_dep_query(q).run(&engine);
            (
                outcome.verdict.answer,
                outcome.verdict.reason,
                outcome.proof.is_some(),
            )
        })
        .collect();
    let (suite, axioms_text, oracle) = (&suite[..], axioms_text.as_str(), &oracle[..]);

    let dir = std::env::temp_dir().join(format!("apt-serve-bench-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot dir");

    // Warm a daemon and let graceful shutdown persist its state.
    {
        let mut config = ServeConfig::new();
        config.snapshot_dir = Some(dir.clone());
        let mut server = Server::new(config);
        let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
        let handle = server.handle();
        let server_thread = std::thread::spawn(move || server.run().expect("server run"));
        let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
        let session = client.open_session(axioms_text).expect("open session");
        assert!(
            suite_pass(&mut client, &session, suite, oracle),
            "restart warm-up pass diverged from the oracle"
        );
        handle.stop();
        let _ = client.shutdown();
        server_thread.join().expect("server thread");
    }

    let (cold_micros, cold_ok, _, _) = restart_pass(None, suite, axioms_text, oracle);
    let (warm_micros, warm_ok, restore, restored_goals) =
        restart_pass(Some(dir.clone()), suite, axioms_text, oracle);
    let _ = std::fs::remove_dir_all(&dir);

    RestartResult {
        cold_micros,
        warm_micros,
        speedup: cold_micros as f64 / warm_micros.max(1) as f64,
        restore,
        restored_goals,
        verdicts_identical: cold_ok && warm_ok,
    }
}

/// Offers four multi-second queries to a one-worker, one-slot server;
/// returns how many came back `overloaded` (expected: exactly 2, and
/// within the read timeout — refusal must be prompt).
fn overload_probe() -> u64 {
    let mut config = ServeConfig::new();
    config.workers = 1;
    config.high_water = 1;
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client
        .open_session(&leaf_linked_tree_axioms().to_string())
        .expect("open");
    // A slow unprovable query: long literal chain vs. a star tower.
    let k = 32;
    let mut line = obj(vec![
        ("verb", Json::from("prove")),
        ("session", session.as_str().into()),
        (
            "a",
            format!("{}.N", vec!["L"; 2 * k].join(".")).as_str().into(),
        ),
        (
            "b",
            format!("{}.N", vec!["(L|R)+"; k].join(".")).as_str().into(),
        ),
        ("fuel", 5_000_000u64.into()),
        ("deadline_ms", 10_000u64.into()),
    ])
    .render();
    line.push('\n');

    let mut streams = Vec::new();
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(line.as_bytes()).expect("send");
        s.flush().expect("flush");
        streams.push(s);
        std::thread::sleep(Duration::from_millis(150));
    }
    let mut refusals = 0;
    for s in streams {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let mut reader = std::io::BufReader::new(s);
        let mut response = String::new();
        if let Ok(n) = std::io::BufRead::read_line(&mut reader, &mut response) {
            if n > 0 {
                if let Ok(frame) = parse(response.trim()) {
                    if frame.get("error").and_then(Json::as_str) == Some("overloaded") {
                        refusals += 1;
                    }
                }
            }
        }
    }
    handle.stop();
    server_thread.join().expect("server thread");
    refusals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_verdicts_match() {
        let result = run(&ServeBenchConfig::smoke());
        assert!(result.verdicts_identical);
        assert!(result.overload_ok, "refusals: {}", result.overload_refusals);
        // The warm restart must restore every section and answer
        // identically. (The 3x speedup gate lives in the bench binary,
        // where timing is taken on a quiet machine; under `cargo test`
        // parallelism it would flake.)
        assert!(result.restart.verdicts_identical);
        assert_eq!(result.restart.restore, "warm", "{:?}", result.restart);
        assert!(result.restart.restored_goals > 0, "{:?}", result.restart);
        // The concurrency probe must hold its crowd and answer right.
        // (The zero-thread-growth gate lives in the bench binary: under
        // `cargo test` another test's threads could start or stop
        // between the two samples.)
        assert!(result.concurrency.verdicts_identical);
        assert!(
            result.concurrency.connections >= 1_000,
            "{:?}",
            result.concurrency
        );
        assert!(
            result.concurrency.server_request_p99_us > 0,
            "server histograms recorded nothing: {:?}",
            result.concurrency
        );
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
        assert!(json.contains("\"restore\": \"warm\""), "{json}");
        // The JSON must itself be valid JSON.
        apt_serve::json::parse(&json).expect("bench json parses");
    }
}
