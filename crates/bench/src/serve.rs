//! Serving-layer throughput: warm resident sessions vs. a fresh
//! process (or engine) per query.
//!
//! The daemon's reason to exist is amortization: compiling an axiom set
//! and warming its caches once, then answering many queries. This
//! bench quantifies that against the workflow it replaces — running
//! `apt prove` afresh for every query — on the disjointness half of the
//! Figure 7 sparse-matrix suite (the `apt prove` subcommand does not do
//! equality queries, so the process baseline couldn't either).
//!
//! Three strategies, identical query stream:
//!
//! 1. **fresh-process** — spawn the `apt` binary per query (compile the
//!    axiom set, prove, exit). Skipped when the binary isn't next to
//!    this bench (e.g. `cargo run` without building `apt-cli`).
//! 2. **fresh-engine** — a new in-process [`DepEngine`] per query: the
//!    process baseline minus exec/link overhead.
//! 3. **warm-session** — one `open_session` against a real loopback
//!    daemon, then sequential `prove` round-trips over TCP (so the
//!    serving number *includes* protocol and socket overhead).
//!
//! Every warm-session verdict must fingerprint-match the fresh-engine
//! oracle; the process baseline is checked at answer level. The run
//! also probes admission control: a tiny server (one worker, one queue
//! slot) is offered four slow queries at once and must refuse the
//! excess with `overloaded` frames — quickly, not by timing out.

use apt_axioms::adds::{leaf_linked_tree_axioms, sparse_matrix_axioms};
use apt_core::{Answer, DepEngine, DepQuery, MaybeReason, Origin};
use apt_regex::Path;
use apt_serve::json::{obj, parse, Json};
use apt_serve::{Client, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Bench tuning.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Suite depth (the Figure 7 `i`/`j` range).
    pub depth: usize,
    /// Timed repetitions of the warm-session pass (best-of).
    pub reps: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> ServeBenchConfig {
        ServeBenchConfig { depth: 4, reps: 5 }
    }
}

impl ServeBenchConfig {
    /// The small configuration used by CI smoke runs.
    pub fn smoke() -> ServeBenchConfig {
        ServeBenchConfig { depth: 2, reps: 2 }
    }
}

/// One disjointness query of the suite, in every representation the
/// bench needs (wire fields double as CLI arguments).
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// First access path, concrete syntax.
    pub a: String,
    /// Second access path, concrete syntax.
    pub b: String,
    /// Distinct-origin query?
    pub distinct: bool,
}

/// The disjointness half of the Figure 7 suite (Theorem T instances,
/// loop-carried row walks, and distinct-origin probes).
pub fn suite(depth: usize) -> Vec<SuiteQuery> {
    let chain = |sym: &str, n: usize| vec![sym.to_owned(); n].join(".");
    let mut suite = Vec::new();
    for i in 1..=depth {
        for j in 1..=depth {
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: format!("{}.ncolE+", chain("nrowE", j)),
                distinct: false,
            });
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: format!("ncolE+.{}", chain("ncolE", j)),
                distinct: false,
            });
            suite.push(SuiteQuery {
                a: chain("ncolE", i),
                b: chain("nrowE", j),
                distinct: true,
            });
        }
    }
    suite
}

fn to_dep_query(q: &SuiteQuery) -> DepQuery {
    let a = Path::parse(&q.a).expect("suite path parses");
    let b = Path::parse(&q.b).expect("suite path parses");
    DepQuery::disjoint(&a, &b).origin(if q.distinct {
        Origin::Distinct
    } else {
        Origin::Same
    })
}

/// The verdict fingerprint compared between strategies.
pub type VerdictKey = (Answer, Option<MaybeReason>, bool);

/// The measured result.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// Queries per suite pass.
    pub queries: usize,
    /// Total micros for one fresh-process pass (`None` when the `apt`
    /// binary was not found next to the bench).
    pub fresh_process_micros: Option<u128>,
    /// Total micros for one fresh-engine-per-query pass.
    pub fresh_engine_micros: u128,
    /// Best-of-reps total micros for a warm-session pass over TCP.
    pub warm_session_micros: u128,
    /// Warm-session throughput, queries/second.
    pub warm_qps: f64,
    /// Speedup of warm-session over fresh-process (when measured).
    pub speedup_vs_process: Option<f64>,
    /// Speedup of warm-session over fresh-engine.
    pub speedup_vs_fresh_engine: f64,
    /// Whether every warm-session verdict matched the oracle (and the
    /// process baseline agreed at answer level).
    pub verdicts_identical: bool,
    /// Overload probe: refusals observed (expected exactly 2).
    pub overload_refusals: u64,
    /// Overload probe: refusals arrived promptly and the server stayed
    /// healthy (no timeouts, no crashes, exactly the expected count).
    pub overload_ok: bool,
}

impl ServeBenchResult {
    /// Renders `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7-sparse-matrix-disjoint\",");
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        match self.fresh_process_micros {
            Some(us) => {
                let _ = writeln!(s, "  \"fresh_process_micros\": {us},");
            }
            None => {
                let _ = writeln!(s, "  \"fresh_process_micros\": null,");
            }
        }
        let _ = writeln!(
            s,
            "  \"fresh_engine_micros\": {},",
            self.fresh_engine_micros
        );
        let _ = writeln!(
            s,
            "  \"warm_session_micros\": {},",
            self.warm_session_micros
        );
        let _ = writeln!(s, "  \"warm_session_qps\": {:.1},", self.warm_qps);
        match self.speedup_vs_process {
            Some(x) => {
                let _ = writeln!(s, "  \"speedup_vs_fresh_process\": {x:.2},");
            }
            None => {
                let _ = writeln!(s, "  \"speedup_vs_fresh_process\": null,");
            }
        }
        let _ = writeln!(
            s,
            "  \"speedup_vs_fresh_engine\": {:.2},",
            self.speedup_vs_fresh_engine
        );
        let _ = writeln!(s, "  \"verdicts_identical\": {},", self.verdicts_identical);
        let _ = writeln!(
            s,
            "  \"overload\": {{\"workers\": 1, \"high_water\": 1, \"offered\": 4, \
             \"refusals\": {}, \"behaved\": {}}}",
            self.overload_refusals, self.overload_ok
        );
        s.push_str("}\n");
        s
    }
}

fn fingerprint_wire(result: &Json) -> Option<VerdictKey> {
    let (answer, reason) = apt_serve::proto::parse_verdict(result)?;
    let has_proof = !matches!(result.get("proof"), None | Some(Json::Null));
    Some((answer, reason, has_proof))
}

/// Locates the `apt` binary next to the running bench, if present.
fn apt_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let apt = exe.parent()?.join("apt");
    apt.is_file().then_some(apt)
}

/// Runs the bench.
pub fn run(config: &ServeBenchConfig) -> ServeBenchResult {
    let suite = suite(config.depth);
    let axioms_text = sparse_matrix_axioms().to_string();
    let reps = config.reps.max(1);

    // Oracle fingerprints: fresh engine per query (also the in-process
    // timing baseline — it pays compilation per query, like a process).
    let started = Instant::now();
    let oracle: Vec<VerdictKey> = suite
        .iter()
        .map(|q| {
            let engine = DepEngine::new(sparse_matrix_axioms());
            let outcome = to_dep_query(q).run(&engine);
            (
                outcome.verdict.answer,
                outcome.verdict.reason,
                outcome.proof.is_some(),
            )
        })
        .collect();
    let fresh_engine_micros = started.elapsed().as_micros();

    // Fresh-process baseline: `apt prove` per query, axioms from a file.
    let mut verdicts_identical = true;
    let fresh_process_micros = apt_binary().map(|apt| {
        let file =
            std::env::temp_dir().join(format!("apt-serve-bench-{}.axioms", std::process::id()));
        std::fs::write(&file, &axioms_text).expect("write axiom file");
        let started = Instant::now();
        for (q, oracle_key) in suite.iter().zip(&oracle) {
            let mut cmd = std::process::Command::new(&apt);
            cmd.arg("prove").arg(&file).arg(&q.a).arg(&q.b);
            if q.distinct {
                cmd.arg("--distinct");
            }
            let status = cmd
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("spawn apt");
            // Exit 0 = proven disjoint (answer No), 1 = Maybe.
            let answer = match status.code() {
                Some(0) => Answer::No,
                Some(1) => Answer::Maybe,
                other => panic!("apt prove exited with {other:?}"),
            };
            verdicts_identical &= answer == oracle_key.0;
        }
        let micros = started.elapsed().as_micros();
        let _ = std::fs::remove_file(&file);
        micros
    });

    // Warm session over loopback TCP.
    let mut server = Server::new(ServeConfig::new());
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client.open_session(&axioms_text).expect("open session");
    let frames: Vec<String> = suite
        .iter()
        .map(|q| {
            obj(vec![
                ("verb", Json::from("prove")),
                ("session", session.as_str().into()),
                ("a", q.a.as_str().into()),
                ("b", q.b.as_str().into()),
                (
                    "origin",
                    if q.distinct { "distinct" } else { "same" }.into(),
                ),
            ])
            .render()
        })
        .collect();
    let mut warm_session_micros = u128::MAX;
    // One untimed pass warms the session's caches; `reps` timed passes
    // then measure the steady state a resident service actually serves.
    for rep in 0..=reps {
        let started = Instant::now();
        for (i, frame) in frames.iter().enumerate() {
            let reply = client.roundtrip_raw(frame).expect("prove round-trip");
            let result = reply.get("result").expect("result field");
            let key = fingerprint_wire(result).expect("verdict parses");
            verdicts_identical &= key == oracle[i];
        }
        if rep > 0 {
            warm_session_micros = warm_session_micros.min(started.elapsed().as_micros());
        }
    }
    handle.stop();
    let _ = client.shutdown(); // speeds the drain; stop() already queued
    server_thread.join().expect("server thread");

    let overload_refusals = overload_probe();
    let secs = warm_session_micros as f64 / 1e6;
    ServeBenchResult {
        queries: suite.len(),
        fresh_process_micros,
        fresh_engine_micros,
        warm_session_micros,
        warm_qps: suite.len() as f64 / secs,
        speedup_vs_process: fresh_process_micros.map(|us| us as f64 / warm_session_micros as f64),
        speedup_vs_fresh_engine: fresh_engine_micros as f64 / warm_session_micros as f64,
        verdicts_identical,
        overload_refusals,
        overload_ok: overload_refusals == 2,
    }
}

/// Offers four multi-second queries to a one-worker, one-slot server;
/// returns how many came back `overloaded` (expected: exactly 2, and
/// within the read timeout — refusal must be prompt).
fn overload_probe() -> u64 {
    let mut config = ServeConfig::new();
    config.workers = 1;
    config.high_water = 1;
    let mut server = Server::new(config);
    let addr = server.bind_tcp("127.0.0.1:0").expect("bind");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect_tcp(&addr.to_string()).expect("connect");
    let session = client
        .open_session(&leaf_linked_tree_axioms().to_string())
        .expect("open");
    // A slow unprovable query: long literal chain vs. a star tower.
    let k = 32;
    let mut line = obj(vec![
        ("verb", Json::from("prove")),
        ("session", session.as_str().into()),
        (
            "a",
            format!("{}.N", vec!["L"; 2 * k].join(".")).as_str().into(),
        ),
        (
            "b",
            format!("{}.N", vec!["(L|R)+"; k].join(".")).as_str().into(),
        ),
        ("fuel", 5_000_000u64.into()),
        ("deadline_ms", 10_000u64.into()),
    ])
    .render();
    line.push('\n');

    let mut streams = Vec::new();
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(line.as_bytes()).expect("send");
        s.flush().expect("flush");
        streams.push(s);
        std::thread::sleep(Duration::from_millis(150));
    }
    let mut refusals = 0;
    for s in streams {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let mut reader = std::io::BufReader::new(s);
        let mut response = String::new();
        if let Ok(n) = std::io::BufRead::read_line(&mut reader, &mut response) {
            if n > 0 {
                if let Ok(frame) = parse(response.trim()) {
                    if frame.get("error").and_then(Json::as_str) == Some("overloaded") {
                        refusals += 1;
                    }
                }
            }
        }
    }
    handle.stop();
    server_thread.join().expect("server thread");
    refusals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_verdicts_match() {
        let result = run(&ServeBenchConfig::smoke());
        assert!(result.verdicts_identical);
        assert!(result.overload_ok, "refusals: {}", result.overload_refusals);
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
        // The JSON must itself be valid JSON.
        apt_serve::json::parse(&json).expect("bench json parses");
    }
}
