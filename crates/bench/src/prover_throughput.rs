//! Indexed proof search vs. the literal §4.2 linear axiom scan.
//!
//! Both kernels are the same [`Prover`] over the Appendix A sparse-matrix
//! axioms running the Figure 7 query family ([`crate::batch::figure7_suite`]);
//! the only difference is configuration. The **linear** baseline disables
//! the compiled-axiom dispatch index and the negative memo
//! (`enable_axiom_dispatch = false`, `enable_negative_memo = false`),
//! restoring the "try every axiom, four subset checks per injectivity
//! probe" search the paper describes. The **indexed** kernel is the
//! default configuration: first-/last-symbol bitset dispatch, the
//! compile-time injectivity map, and failure memoization.
//!
//! The one-off [`CompiledAxioms::compile`] runs outside every timed
//! region and is shared by both kernels, so the comparison isolates the
//! per-query search cost. Provers are standalone (no engine shared
//! cache): each pass pays its own real search work.
//!
//! Verdict fingerprints (answer, degradation reason, proof presence) are
//! compared query-by-query between the kernels; any divergence fails the
//! run — dispatch may only skip work whose outcome was already decided.

use crate::batch::{figure7_suite, VerdictKey};
use apt_axioms::adds::sparse_matrix_axioms;
use apt_axioms::CompiledAxioms;
use apt_core::{Outcome, Prover, ProverConfig, ProverStats};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for the prover throughput run.
#[derive(Debug, Clone)]
pub struct ProverBenchConfig {
    /// Maximum chain depth of the Figure 7 query family; the suite holds
    /// `2·depth² + depth` queries.
    pub depth: usize,
    /// Timing repetitions per phase (the best run is reported).
    pub reps: usize,
    /// Timed warm passes over the suite on one long-lived prover.
    pub warm_passes: usize,
}

impl Default for ProverBenchConfig {
    fn default() -> ProverBenchConfig {
        ProverBenchConfig {
            depth: 6,
            reps: 3,
            warm_passes: 5,
        }
    }
}

impl ProverBenchConfig {
    /// The small-suite configuration used by CI smoke runs. Two
    /// repetitions and five warm passes keep the run fast while giving
    /// best-of-passes enough samples to damp scheduler noise.
    pub fn smoke() -> ProverBenchConfig {
        ProverBenchConfig {
            depth: 3,
            reps: 2,
            warm_passes: 5,
        }
    }
}

/// Best-of-reps timings of the two kernels over one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRow {
    /// Linear-scan baseline, microseconds.
    pub linear_micros: u128,
    /// Indexed kernel, microseconds.
    pub indexed_micros: u128,
}

impl PhaseRow {
    /// Linear time over indexed time.
    pub fn speedup(&self) -> f64 {
        self.linear_micros as f64 / self.indexed_micros.max(1) as f64
    }
}

/// Work counters contrasted across the two kernels (accumulated over the
/// verdict-comparison pass, which runs the full suite once per kernel on a
/// fresh prover).
#[derive(Debug, Clone, Copy)]
pub struct KernelCounters {
    /// Subset tests the linear scan performed.
    pub linear_subset_checks: u64,
    /// Subset tests the indexed kernel performed.
    pub indexed_subset_checks: u64,
    /// Axiom orientations admitted past the dispatch signatures.
    pub dispatch_hits: u64,
    /// Axiom orientations pruned by the dispatch signatures.
    pub dispatch_misses: u64,
    /// Goal failures answered from the negative memo.
    pub neg_memo_hits: u64,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ProverBenchResult {
    /// Number of queries in the suite.
    pub queries: usize,
    /// Fresh-prover-per-query phase (every query pays full search).
    pub cold: PhaseRow,
    /// Prover-per-pass phase (caches warm up across the query stream).
    pub warm: PhaseRow,
    /// Whether both kernels produced identical verdict fingerprints.
    pub verdicts_identical: bool,
    /// Work counters behind the timings.
    pub counters: KernelCounters,
    /// Memory reading taken after the timed phases (arena occupancy plus
    /// process peak RSS).
    pub memory: apt_core::MemorySample,
}

impl ProverBenchResult {
    /// Renders the result as a JSON object (`BENCH_prover.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7-sparse-matrix\",");
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(s, "  \"verdicts_identical\": {},", self.verdicts_identical);
        let phase = |s: &mut String, name: &str, row: &PhaseRow, trailing: &str| {
            let _ = writeln!(
                s,
                "  \"{}\": {{\"linear_micros\": {}, \"indexed_micros\": {}, \
                 \"speedup\": {:.2}}}{}",
                name,
                row.linear_micros,
                row.indexed_micros,
                row.speedup(),
                trailing
            );
        };
        phase(&mut s, "cold", &self.cold, ",");
        phase(&mut s, "warm", &self.warm, ",");
        let c = &self.counters;
        let _ = writeln!(
            s,
            "  \"counters\": {{\"linear_subset_checks\": {}, \
             \"indexed_subset_checks\": {}, \"dispatch_hits\": {}, \
             \"dispatch_misses\": {}, \"neg_memo_hits\": {}}},",
            c.linear_subset_checks,
            c.indexed_subset_checks,
            c.dispatch_hits,
            c.dispatch_misses,
            c.neg_memo_hits
        );
        let m = &self.memory;
        let _ = writeln!(
            s,
            "  \"memory\": {{\"arena_bytes\": {}, \"arena_nodes\": {}, \
             \"peak_rss_kb\": {}}}",
            m.arena.live_bytes,
            m.arena.live_nodes,
            m.peak_rss_kb
                .map_or_else(|| "null".to_owned(), |kb| kb.to_string())
        );
        s.push_str("}\n");
        s
    }
}

/// The linear-scan baseline configuration: same rules, same budgets, no
/// dispatch index and no negative memo.
pub fn linear_config() -> ProverConfig {
    ProverConfig {
        enable_axiom_dispatch: false,
        enable_negative_memo: false,
        ..ProverConfig::default()
    }
}

fn fingerprint(outcome: &Outcome) -> VerdictKey {
    (
        outcome.verdict.answer,
        outcome.maybe_reason,
        outcome.proof.is_some(),
    )
}

/// Runs the Figure 7 suite on both kernels, timing a fresh-prover pass
/// (cold) and repeated passes on a long-lived prover (warm), and compares
/// every verdict fingerprint.
pub fn run(config: &ProverBenchConfig) -> ProverBenchResult {
    let axioms = sparse_matrix_axioms();
    let suite = figure7_suite(config.depth);
    let reps = config.reps.max(1);
    let warm_passes = config.warm_passes.max(1);
    // Compile once, outside every timed region; both kernels share it.
    let compiled = Arc::new(CompiledAxioms::compile(&axioms));

    let make_prover = |cfg: &ProverConfig| -> Prover<'_> {
        Prover::with_compiled(&axioms, cfg.clone(), Arc::clone(&compiled))
    };

    // Verdict parity + work counters (untimed, fresh prover per kernel).
    let observe = |cfg: &ProverConfig| -> (Vec<VerdictKey>, ProverStats) {
        let mut prover = make_prover(cfg);
        let keys = suite
            .iter()
            .map(|q| fingerprint(&q.run_with(&mut prover)))
            .collect();
        (keys, prover.stats())
    };
    let (linear_keys, linear_stats) = observe(&linear_config());
    let (indexed_keys, indexed_stats) = observe(&ProverConfig::default());
    let verdicts_identical = linear_keys == indexed_keys;

    // Cold: a fresh prover per QUERY — nothing carries over between
    // queries, so every query pays its full search. Prover construction is
    // outside the clock; only the searches are timed.
    let cold_time = |cfg: &ProverConfig| -> u128 {
        let mut best = u128::MAX;
        for _ in 0..reps {
            let mut total = 0u128;
            for q in &suite {
                let mut prover = make_prover(cfg);
                let started = Instant::now();
                std::hint::black_box(q.run_with(&mut prover));
                total += started.elapsed().as_micros();
            }
            best = best.min(total);
        }
        best
    };

    // Warm: one prover answers the whole suite — its proof cache and
    // failure memo warm up across the query stream, the way a compiler's
    // dependence phase drives the prover. Each timed pass uses a fresh
    // prover so the search work is real every time (the global regex arena
    // and the compiled axiom set stay warm throughout); the best pass is
    // reported.
    let warm_time = |cfg: &ProverConfig| -> u128 {
        let mut best = u128::MAX;
        for _ in 0..(reps * warm_passes) {
            let mut prover = make_prover(cfg);
            let started = Instant::now();
            for q in &suite {
                std::hint::black_box(q.run_with(&mut prover));
            }
            best = best.min(started.elapsed().as_micros());
        }
        best
    };

    let cold = PhaseRow {
        linear_micros: cold_time(&linear_config()),
        indexed_micros: cold_time(&ProverConfig::default()),
    };
    let warm = PhaseRow {
        linear_micros: warm_time(&linear_config()),
        indexed_micros: warm_time(&ProverConfig::default()),
    };

    ProverBenchResult {
        queries: suite.len(),
        cold,
        warm,
        verdicts_identical,
        counters: KernelCounters {
            linear_subset_checks: linear_stats.subset_checks,
            indexed_subset_checks: indexed_stats.subset_checks,
            dispatch_hits: indexed_stats.dispatch_hits,
            dispatch_misses: indexed_stats.dispatch_misses,
            neg_memo_hits: indexed_stats.neg_memo_hits,
        },
        memory: apt_core::MemorySample::take(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_verdict_identical() {
        let result = run(&ProverBenchConfig::smoke());
        assert!(result.queries > 0);
        assert!(result.verdicts_identical);
        // Dispatch must actually prune on this workload.
        assert!(result.counters.dispatch_misses > 0);
        assert!(
            result.counters.indexed_subset_checks <= result.counters.linear_subset_checks,
            "indexed kernel did more subset work than the linear scan"
        );
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
        assert!(json.contains("\"warm\""), "{json}");
    }
}
