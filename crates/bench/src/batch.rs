//! Batched-engine throughput: sequential prover-per-query vs. the
//! [`DepEngine`] on the Figure 7 / sparse-matrix query suites.
//!
//! The sequential baseline is the pre-engine workflow: every query gets
//! its own [`Prover`], so nothing is reused between queries. The engine
//! runs the same suite as one batch per jobs level, sharing its
//! proof/subset/DFA caches across queries (and across threads when more
//! than one worker is available). The speedup reported against the
//! baseline therefore measures what the batch API buys on a real query
//! mix: cross-query proof reuse first, parallel fan-out second.
//!
//! Verdicts are compared query-by-query against the sequential baseline;
//! any divergence is a correctness bug and fails the run.

use apt_axioms::adds::sparse_matrix_axioms;
use apt_core::{Answer, DepEngine, DepQuery, MaybeReason, Origin, Prover, ProverConfig};
use apt_regex::Path;
use std::fmt::Write as _;
use std::time::Instant;

/// Configuration for the batch throughput run.
#[derive(Debug, Clone)]
pub struct BatchBenchConfig {
    /// Maximum chain depth of the generated query family; the suite holds
    /// `2·depth² + depth` queries.
    pub depth: usize,
    /// Timing repetitions per measurement (the best run is reported).
    pub reps: usize,
    /// Worker counts to measure.
    pub jobs: Vec<usize>,
}

impl Default for BatchBenchConfig {
    fn default() -> BatchBenchConfig {
        BatchBenchConfig {
            depth: 6,
            reps: 3,
            jobs: vec![1, 2, 4, 8],
        }
    }
}

impl BatchBenchConfig {
    /// The 1-repetition, small-suite configuration used by CI smoke runs.
    pub fn smoke() -> BatchBenchConfig {
        BatchBenchConfig {
            depth: 3,
            reps: 1,
            jobs: vec![1, 4],
        }
    }
}

/// The Figure 7 query family over the Appendix A sparse-matrix axioms:
/// concrete instances of Theorem T (`ncolE^i <> nrowE^j.ncolE+`), the
/// row-walk loop-carried shape (`ncolE^i <> ncolE+.ncolE^i`), and the
/// `nrowE`/`ncolE` equality probes the analysis phrases at loop heads.
pub fn figure7_suite(depth: usize) -> Vec<DepQuery> {
    let chain = |sym: &str, n: usize| vec![sym.to_owned(); n].join(".");
    let path = |s: &str| Path::parse(s).expect("suite path parses");
    let mut suite = Vec::new();
    for i in 1..=depth {
        for j in 1..=depth {
            // Theorem T, instantiated: row i's walk vs. a row j further on.
            suite.push(
                DepQuery::disjoint(
                    &path(&chain("ncolE", i)),
                    &path(&format!("{}.ncolE+", chain("nrowE", j))),
                )
                .origin(Origin::Same),
            );
            // Loop-carried row walk: iteration i vs. a later iteration.
            suite.push(
                DepQuery::disjoint(
                    &path(&chain("ncolE", i)),
                    &path(&format!("ncolE+.{}", chain("ncolE", j))),
                )
                .origin(Origin::Same),
            );
        }
        // Equality probes (all unprovable here — worst-case search).
        suite.push(DepQuery::equal(
            &path(&chain("ncolE", i)),
            &path(&chain("nrowE", i)),
        ));
    }
    suite
}

/// The verdict fingerprint compared across execution strategies.
pub type VerdictKey = (Answer, Option<MaybeReason>, bool);

fn fingerprint(outcome: &apt_core::Outcome) -> VerdictKey {
    (
        outcome.verdict.answer,
        outcome.maybe_reason,
        outcome.proof.is_some(),
    )
}

/// One measured jobs level.
#[derive(Debug, Clone)]
pub struct JobsRow {
    /// Worker threads used.
    pub jobs: usize,
    /// Best-of-reps wall time, microseconds.
    pub micros: u128,
    /// Queries per second at that time.
    pub throughput_qps: f64,
    /// Speedup over the sequential prover-per-query baseline.
    pub speedup: f64,
    /// Whether every verdict matched the sequential baseline.
    pub verdicts_identical: bool,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BatchBenchResult {
    /// Number of queries in the suite.
    pub queries: usize,
    /// Best-of-reps sequential wall time, microseconds.
    pub sequential_micros: u128,
    /// One row per measured jobs level.
    pub rows: Vec<JobsRow>,
}

impl BatchBenchResult {
    /// The speedup at the given jobs level, if measured.
    pub fn speedup_at(&self, jobs: usize) -> Option<f64> {
        self.rows.iter().find(|r| r.jobs == jobs).map(|r| r.speedup)
    }

    /// Whether every engine run reproduced the sequential verdicts.
    pub fn all_verdicts_identical(&self) -> bool {
        self.rows.iter().all(|r| r.verdicts_identical)
    }

    /// Renders the result as a JSON object (`BENCH_batch.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7-sparse-matrix\",");
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(s, "  \"sequential_micros\": {},", self.sequential_micros);
        let _ = writeln!(
            s,
            "  \"verdicts_identical\": {},",
            self.all_verdicts_identical()
        );
        s.push_str("  \"runs\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"jobs\": {}, \"micros\": {}, \"throughput_qps\": {:.1}, \
                 \"speedup_vs_sequential\": {:.2}, \"verdicts_identical\": {}}}",
                row.jobs, row.micros, row.throughput_qps, row.speedup, row.verdicts_identical
            );
            s.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Runs the suite sequentially (a fresh prover per query) and through the
/// engine at each configured jobs level, timing both and checking that
/// every engine verdict matches the sequential one.
pub fn run(config: &BatchBenchConfig) -> BatchBenchResult {
    let axioms = sparse_matrix_axioms();
    let suite = figure7_suite(config.depth);
    let reps = config.reps.max(1);

    // Sequential baseline: the pre-engine workflow, one prover per query.
    let mut baseline: Vec<VerdictKey> = Vec::new();
    let mut sequential_micros = u128::MAX;
    for rep in 0..reps {
        let started = Instant::now();
        let verdicts: Vec<VerdictKey> = suite
            .iter()
            .map(|q| {
                let mut prover = Prover::with_config(&axioms, ProverConfig::default());
                fingerprint(&q.clone().run_with(&mut prover))
            })
            .collect();
        sequential_micros = sequential_micros.min(started.elapsed().as_micros());
        if rep == 0 {
            baseline = verdicts;
        }
    }

    let mut rows = Vec::new();
    for &jobs in &config.jobs {
        let mut micros = u128::MAX;
        let mut verdicts_identical = true;
        for _ in 0..reps {
            // A fresh engine per repetition: every run pays its own
            // cache warm-up, so repetitions are comparable.
            let engine = DepEngine::with_config(axioms.clone(), ProverConfig::default());
            let started = Instant::now();
            let outcomes = engine.run_batch(&suite, jobs);
            micros = micros.min(started.elapsed().as_micros());
            verdicts_identical &= outcomes.len() == baseline.len()
                && outcomes
                    .iter()
                    .zip(&baseline)
                    .all(|(o, b)| fingerprint(o) == *b);
        }
        let secs = micros as f64 / 1e6;
        rows.push(JobsRow {
            jobs,
            micros,
            throughput_qps: if secs > 0.0 {
                suite.len() as f64 / secs
            } else {
                f64::INFINITY
            },
            speedup: sequential_micros as f64 / micros.max(1) as f64,
            verdicts_identical,
        });
    }
    BatchBenchResult {
        queries: suite.len(),
        sequential_micros,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_verdict_identical() {
        let result = run(&BatchBenchConfig::smoke());
        assert!(result.queries > 0);
        assert!(result.all_verdicts_identical());
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
        assert!(json.contains("\"jobs\": 4"), "{json}");
    }
}
