//! The Figure 7 reproduction: sparse-matrix speedups under the *partial*
//! and *full* analyses.
//!
//! The paper manually applied loop transformations after running the APT
//! prototype; here the step is automated. [`classify`] runs the actual
//! dependence tests for every kernel loop:
//!
//! * structurally read-only loops (heuristic, search, scale, solve) are
//!   analyzed end-to-end: the loop is written in the `apt-ir` mini
//!   language, `apt-paths` collects the access paths, and APT tests the
//!   loop-carried dependence (the §5 Theorem T shape);
//! * the structurally-modifying factor loops (fillins, and the elimination
//!   that follows them) can only be phrased by the modification-aware
//!   "full" analysis. The *partial* analysis "only collected access paths
//!   for structurally read-only portions of the code" (§5), so under it
//!   these loops stay sequential. Under *full* the row-disjointness
//!   theorem (Theorem T) is proven directly with the Appendix A axioms.
//!
//! The resulting [`LoopClassification`] drives the instrumented kernels of
//! `apt-heaps`, whose task traces are scheduled on the `apt-parsim`
//! machine model.

use apt_core::{Answer, DepQuery, Origin, Prover};
use apt_heaps::gen::random_sparse_matrix;
use apt_heaps::numeric::{factor, scale, solve, LoopClassification};
use apt_parsim::{MachineModel, Trace};
use apt_paths::analyze_proc;
use apt_regex::Path;

/// Which analysis produced the access paths (§5's two result sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// Paths collected only in structurally read-only code.
    Partial,
    /// Structural modifications understood (§3.4 machinery).
    Full,
}

/// One dependence decision made while classifying the kernel loops.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Which loop was tested.
    pub loop_name: String,
    /// Human-readable description of the theorem posed.
    pub query: String,
    /// The tester's answer (`No` ⇒ parallelize).
    pub answer: Answer,
}

/// The §5 factorization traversal written in the mini language, with the
/// sparse-matrix element axioms attached. The outer loop walks a column of
/// the (sub)matrix by `nrowE`; the inner loop walks each row by `ncolE` —
/// precisely the access pattern of the heuristic/search/eliminate steps.
const ROW_WALK_PROGRAM: &str = r"
    type MElem {
        ptr nrowE: MElem;
        ptr ncolE: MElem;
        data val;
        axiom A1: forall p <> q, p.ncolE <> q.ncolE;
        axiom A1b: forall p <> q, p.nrowE <> q.nrowE;
        axiom A2: forall p, p.ncolE+ <> p.nrowE+;
        axiom A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
    }
    proc rowwalk(sub: MElem) {
        r = sub;
    L1: loop {
            e = r->ncolE;
        L2: loop {
            S:  e->val = fun();
                e = e->ncolE;
            }
            r = r->nrowE;
        }
    }";

/// The scale/solve traversal: walk the row-header list, then each row's
/// element list, with the relevant Appendix A axioms.
const HEADER_WALK_PROGRAM: &str = r"
    type MRowH {
        ptr nrowH: MRowH;
        ptr relem: MElem2;
        axiom H1: forall p <> q, p.nrowH <> q.nrowH;
        axiom H2: forall p <> q, p.relem.ncolE2* <> q.relem.ncolE2*;
        axiom H3: forall p, p.(nrowH|relem|ncolE2)+ <> p.eps;
    }
    type MElem2 {
        ptr ncolE2: MElem2;
        data val;
        axiom E1: forall p <> q, p.ncolE2 <> q.ncolE2;
    }
    proc walkall(m: MRowH) {
        h = m;
    L1: loop {
            e = h->relem;
        L2: loop {
            S:  e->val = fun();
                e = e->ncolE2;
            }
            h = h->nrowH;
        }
    }";

/// Runs the end-to-end analysis (IR → APM → APT) for a read-only kernel
/// loop and reports whether its outer loop-carried dependence is broken.
fn analyze_loop(program: &str, proc_name: &str, loop_name: &str) -> (bool, QueryRecord) {
    let prog = apt_ir::parse_program(program).expect("kernel program parses");
    let analysis = analyze_proc(&prog, proc_name).expect("procedure exists");
    // The paper parallelizes both the outer loop (L1, across rows — the
    // Theorem T shape) and the inner loop (L2, along one row); require
    // both loop-carried dependences broken, and report the outer query,
    // which is the interesting one.
    let outer = analysis
        .test_loop_carried("S", Some("L1"))
        .expect("outer loop-carried query");
    let inner = analysis
        .test_loop_carried("S", Some("L2"))
        .expect("inner loop-carried query");
    let (ri, rj) = analysis
        .loop_carried_pair("S", Some("L1"))
        .expect("outer loop-carried pair");
    let ok = outer.answer == Answer::No && inner.answer == Answer::No;
    let record = QueryRecord {
        loop_name: loop_name.to_owned(),
        query: format!("{} <> {}", ri.access, rj.access),
        answer: if ok { Answer::No } else { Answer::Maybe },
    };
    (ok, record)
}

/// Proves Theorem T directly with the minimal §5 axioms — the
/// modification-aware justification for the fillin/eliminate loops under
/// the full analysis.
fn theorem_t(loop_name: &str) -> (bool, QueryRecord) {
    let axioms = apt_axioms::adds::sparse_matrix_minimal_axioms();
    let mut prover = Prover::new(&axioms);
    let a = Path::parse("ncolE+").expect("path");
    let b = Path::parse("nrowE+.ncolE+").expect("path");
    let proven = DepQuery::disjoint(&a, &b)
        .origin(Origin::Same)
        .run_with(&mut prover)
        .proof
        .is_some();
    let record = QueryRecord {
        loop_name: loop_name.to_owned(),
        query: "forall hr, hr.ncolE+ <> hr.nrowE+.ncolE+ (Theorem T)".to_owned(),
        answer: if proven { Answer::No } else { Answer::Maybe },
    };
    (proven, record)
}

/// Derives the loop classification for one analysis kind by running the
/// dependence tests, returning the decisions alongside.
pub fn classify(kind: AnalysisKind) -> (LoopClassification, Vec<QueryRecord>) {
    let mut records = Vec::new();
    let mut cls = LoopClassification::sequential();

    // Structurally read-only loops: both analyses phrase and break them.
    let (ok, rec) = analyze_loop(ROW_WALK_PROGRAM, "rowwalk", "heuristic/search row walk");
    records.push(rec);
    cls.heuristic = ok;
    cls.search = ok;

    let (ok, rec) = analyze_loop(HEADER_WALK_PROGRAM, "walkall", "scale/solve header walk");
    records.push(rec);
    cls.scale = ok;
    cls.solve = ok;

    match kind {
        AnalysisKind::Partial => {
            // No valid access paths survive the structural modifications,
            // so the queries cannot even be phrased.
            records.push(QueryRecord {
                loop_name: "fillins".to_owned(),
                query: "(no valid access paths across structural modification)".to_owned(),
                answer: Answer::Maybe,
            });
            records.push(QueryRecord {
                loop_name: "eliminate".to_owned(),
                query: "(no valid access paths across structural modification)".to_owned(),
                answer: Answer::Maybe,
            });
        }
        AnalysisKind::Full => {
            let (ok, rec) = theorem_t("fillins");
            records.push(rec);
            cls.fillins = ok;
            let (ok, rec) = theorem_t("eliminate");
            records.push(rec);
            cls.eliminate = ok;
        }
    }
    (cls, records)
}

/// Workload parameters for the Figure 7 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Config {
    /// Matrix dimension (paper: 1000).
    pub n: usize,
    /// Nonzero count (paper: 10,000).
    pub nnz: usize,
    /// Workload seed.
    pub seed: u64,
    /// Fork/join barrier cost of the machine model, in element-operation
    /// units.
    pub barrier_overhead: u64,
    /// PE counts to report (paper: 2, 4, 7).
    pub pes: &'static [usize],
}

impl Default for Fig7Config {
    fn default() -> Fig7Config {
        Fig7Config {
            n: 1000,
            nnz: 10_000,
            seed: 1994,
            barrier_overhead: 200,
            pes: &[2, 4, 7],
        }
    }
}

/// One row of the Figure 7 table.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Row label, matching the paper's.
    pub label: String,
    /// `(PEs, speedup)` pairs.
    pub speedups: Vec<(usize, f64)>,
    /// The paper's reported numbers for the same row, for side-by-side
    /// reporting.
    pub paper: Vec<(usize, f64)>,
}

/// The complete Figure 7 result.
#[derive(Debug)]
pub struct Fig7Result {
    /// The four table rows.
    pub rows: Vec<Fig7Row>,
    /// Dependence decisions for the partial analysis.
    pub partial_queries: Vec<QueryRecord>,
    /// Dependence decisions for the full analysis.
    pub full_queries: Vec<QueryRecord>,
    /// Fillins inserted during factorization.
    pub fillins: usize,
}

fn speedups(trace: &Trace, config: &Fig7Config) -> Vec<(usize, f64)> {
    config
        .pes
        .iter()
        .map(|&p| {
            (
                p,
                trace.speedup_on(MachineModel {
                    pes: p,
                    barrier_overhead: config.barrier_overhead,
                }),
            )
        })
        .collect()
}

/// Runs the full Figure 7 experiment.
pub fn run(config: &Fig7Config) -> Fig7Result {
    let (partial_cls, partial_queries) = classify(AnalysisKind::Partial);
    let (full_cls, full_queries) = classify(AnalysisKind::Full);

    let base = random_sparse_matrix(config.n, config.nnz.saturating_sub(config.n), config.seed);
    let b: Vec<f64> = (0..config.n).map(|i| 1.0 + (i % 7) as f64).collect();

    let mut rows = Vec::new();
    let mut fillin_count = 0;
    for (kind_label, cls) in [("partial", partial_cls), ("full", full_cls)] {
        let mut m = base.clone();
        let scale_trace = scale(&mut m, 2.0, cls);
        let fr = factor(&mut m, cls);
        let (_x, solve_trace) = solve(&m, &fr.pivots, &b, cls);
        fillin_count = fr.fillins;

        let mut all = Trace::new();
        all.extend_from(&scale_trace);
        all.extend_from(&fr.trace);
        all.extend_from(&solve_trace);

        let paper_factor: Vec<(usize, f64)> = if kind_label == "partial" {
            vec![(2, 1.7), (4, 2.5), (7, 3.1)]
        } else {
            vec![(2, 1.8), (4, 3.3), (7, 5.2)]
        };
        let paper_all: Vec<(usize, f64)> = if kind_label == "partial" {
            vec![(2, 1.7), (4, 2.4), (7, 3.0)]
        } else {
            vec![(2, 1.8), (4, 3.3), (7, 5.2)]
        };

        rows.push(Fig7Row {
            label: format!("Factor only ({kind_label})"),
            speedups: speedups(&fr.trace, config),
            paper: paper_factor,
        });
        rows.push(Fig7Row {
            label: format!("Scale, Factor, Solve ({kind_label})"),
            speedups: speedups(&all, config),
            paper: paper_all,
        });
    }
    // Paper row order: both partial rows, then both full rows — already so.
    Fig7Result {
        rows,
        partial_queries,
        full_queries,
        fillins: fillin_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper() {
        let (p, precs) = classify(AnalysisKind::Partial);
        assert!(p.heuristic && p.search && p.scale && p.solve);
        assert!(!p.fillins && !p.eliminate);
        assert!(precs.iter().any(|r| r.answer == Answer::No));

        let (f, frecs) = classify(AnalysisKind::Full);
        assert!(f.heuristic && f.search && f.scale && f.solve);
        assert!(f.fillins && f.eliminate, "Theorem T must be proven");
        assert!(frecs
            .iter()
            .filter(|r| r.loop_name.contains("eliminate") || r.loop_name.contains("fillins"))
            .all(|r| r.answer == Answer::No));
    }

    #[test]
    fn small_fig7_has_paper_shape() {
        // A scaled-down workload keeps the test fast; the orderings the
        // paper demonstrates must already hold.
        let config = Fig7Config {
            n: 60,
            nnz: 600,
            seed: 7,
            barrier_overhead: 16,
            pes: &[2, 4, 7],
        };
        let result = run(&config);
        assert_eq!(result.rows.len(), 4);
        let get = |label: &str, pes: usize| -> f64 {
            result
                .rows
                .iter()
                .find(|r| r.label.starts_with(label) && r.label.contains("("))
                .and_then(|r| r.speedups.iter().find(|(p, _)| *p == pes))
                .map(|(_, s)| *s)
                .expect("row present")
        };
        let partial_f7 = result.rows[0].speedups.last().unwrap().1;
        let full_f7 = result.rows[2].speedups.last().unwrap().1;
        assert!(
            full_f7 > partial_f7,
            "full ({full_f7:.2}) must beat partial ({partial_f7:.2})"
        );
        assert!(full_f7 < 7.0, "speedup must stay sub-linear");
        // Speedups grow with PEs in every row.
        for row in &result.rows {
            let s: Vec<f64> = row.speedups.iter().map(|(_, s)| *s).collect();
            assert!(s.windows(2).all(|w| w[1] >= w[0] - 1e-9), "{row:?}");
        }
        let _ = get;
    }
}
