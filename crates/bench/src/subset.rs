//! Subset-test latency: the hash-consed early-exit kernel vs. the
//! pre-arena kernel, on the subset checks the prover actually issues.
//!
//! The workload is every `(query side, axiom side)` pair the Figure 7
//! query family pits against the Appendix A (plus §5 minimal)
//! sparse-matrix axioms — exactly the applicability checks `proveDisj`
//! runs hottest. Two kernels answer every pair:
//!
//! * **old** — the pre-change path: DFA memoization and answer memoization
//!   both keyed on `Display`-formatted regex strings, subset decided by
//!   materializing the complement and the full product (\[HU79\] taken
//!   literally);
//! * **new** — the arena path: answers keyed on hash-consed
//!   [`RegexId`] pairs, DFAs interned by id, subset decided by the lazy
//!   early-exit product walk.
//!
//! Two phases are timed. **Cold** runs every pair once against fresh
//! caches (dominated by automata construction). **Warm** replays the full
//! pair list against settled caches — the steady state of a long batch,
//! where the old path still formats two trees per lookup and the new path
//! hashes two integers. Verdicts are compared pair-by-pair; any divergence
//! fails the run.

use apt_axioms::adds::{sparse_matrix_axioms, sparse_matrix_minimal_axioms};
use apt_axioms::Axiom;
use apt_regex::dfa::Dfa;
use apt_regex::{ops, DfaCache, FxHashMap, Limits, Regex, RegexId, Symbol};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for the subset-latency run.
#[derive(Debug, Clone)]
pub struct SubsetBenchConfig {
    /// Chain depth of the Figure 7 query family feeding the pair list.
    pub depth: usize,
    /// Timing repetitions per phase (the best run is reported).
    pub reps: usize,
    /// Full replays of the pair list in the warm phase.
    pub warm_passes: usize,
}

impl Default for SubsetBenchConfig {
    fn default() -> SubsetBenchConfig {
        SubsetBenchConfig {
            depth: 6,
            reps: 3,
            warm_passes: 50,
        }
    }
}

impl SubsetBenchConfig {
    /// The small configuration used by CI smoke runs.
    pub fn smoke() -> SubsetBenchConfig {
        SubsetBenchConfig {
            depth: 2,
            reps: 1,
            warm_passes: 5,
        }
    }
}

/// One subset check as the prover would issue it: both trees plus their
/// pre-interned ids (the prover holds both on its hot path).
#[derive(Debug, Clone)]
pub struct SubsetPair {
    /// Left side (`L(a) ⊆ L(b)` asks about this language).
    pub a: Regex,
    /// Right side.
    pub b: Regex,
    /// Interned id of `a`.
    pub a_id: RegexId,
    /// Interned id of `b`.
    pub b_id: RegexId,
}

/// Every distinct `(query side, axiom side)` subset check the Figure 7
/// suite at `depth` asks of the Appendix A + §5-minimal axiom sets,
/// deduplicated by id pair (the same dedup the prover's cache performs).
pub fn figure7_subset_pairs(depth: usize) -> Vec<SubsetPair> {
    let mut axioms: Vec<Axiom> = sparse_matrix_axioms().iter().cloned().collect();
    axioms.extend(sparse_matrix_minimal_axioms().iter().cloned());
    let queries = crate::batch::figure7_suite(depth);
    let mut seen: HashSet<(RegexId, RegexId)> = HashSet::new();
    let mut pairs = Vec::new();
    for q in &queries {
        for side in [q.a(), q.b()] {
            let sre = side.to_regex();
            let sid = RegexId::intern(&sre);
            for ax in &axioms {
                for (oid, other) in [(ax.lhs_id(), ax.lhs()), (ax.rhs_id(), ax.rhs())] {
                    if seen.insert((sid, oid)) {
                        pairs.push(SubsetPair {
                            a: sre.clone(),
                            b: other.clone(),
                            a_id: sid,
                            b_id: oid,
                        });
                    }
                }
            }
        }
    }
    pairs
}

/// The pre-change kernel, replicated faithfully: string-keyed DFA and
/// answer caches, materializing subset check.
struct OldKernel {
    dfas: HashMap<(String, Vec<Symbol>), Arc<Dfa>>,
    answers: HashMap<(String, String), bool>,
}

impl OldKernel {
    fn new() -> OldKernel {
        OldKernel {
            dfas: HashMap::new(),
            answers: HashMap::new(),
        }
    }

    fn dfa(&mut self, re: &Regex, alpha: &[Symbol]) -> Arc<Dfa> {
        let key = (re.to_string(), alpha.to_vec());
        if let Some(dfa) = self.dfas.get(&key) {
            return Arc::clone(dfa);
        }
        let built = Arc::new(Dfa::build(re, alpha));
        self.dfas.insert(key, Arc::clone(&built));
        built
    }

    fn subset(&mut self, a: &Regex, b: &Regex) -> bool {
        // The old hot path formatted both trees on *every* lookup.
        let key = (a.to_string(), b.to_string());
        if let Some(&hit) = self.answers.get(&key) {
            return hit;
        }
        let result = if a.is_empty_language() {
            true
        } else {
            let mut alpha = a.symbols();
            alpha.extend(b.symbols());
            alpha.sort_unstable();
            alpha.dedup();
            let da = self.dfa(a, &alpha);
            let db = self.dfa(b, &alpha);
            match da.try_intersect(&db.complement(), &Limits::none()) {
                Ok(product) => product.is_empty(),
                Err(e) => unreachable!("unbounded product cannot trip a limit: {e}"),
            }
        };
        self.answers.insert(key, result);
        result
    }
}

/// The post-change kernel: id-keyed answers, id-keyed DFA interner, lazy
/// early-exit product walk.
struct NewKernel {
    dfas: DfaCache,
    answers: FxHashMap<(RegexId, RegexId), bool>,
}

impl NewKernel {
    fn new() -> NewKernel {
        NewKernel {
            dfas: DfaCache::new(),
            answers: FxHashMap::default(),
        }
    }

    fn subset(&mut self, pair: &SubsetPair) -> bool {
        let key = (pair.a_id, pair.b_id);
        if let Some(&hit) = self.answers.get(&key) {
            return hit;
        }
        let result = match ops::try_is_subset_interned(
            pair.a_id,
            &pair.a,
            pair.b_id,
            &pair.b,
            &Limits::none(),
            Some(&self.dfas),
        ) {
            Ok(v) => v,
            Err(e) => unreachable!("unbounded subset cannot trip a limit: {e}"),
        };
        self.answers.insert(key, result);
        result
    }
}

/// Timings for one phase (cold or warm), microseconds, best-of-reps.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRow {
    /// Old-kernel time.
    pub old_micros: u128,
    /// New-kernel time.
    pub new_micros: u128,
}

impl PhaseRow {
    /// Old time over new time.
    pub fn speedup(&self) -> f64 {
        self.old_micros as f64 / self.new_micros.max(1) as f64
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct SubsetBenchResult {
    /// Distinct subset pairs in the workload.
    pub pairs: usize,
    /// Warm-phase replays of the pair list.
    pub warm_passes: usize,
    /// First-touch phase: every pair once against fresh caches.
    pub cold: PhaseRow,
    /// Steady-state phase: the settled caches replayed.
    pub warm: PhaseRow,
    /// Whether both kernels agreed on every pair.
    pub verdicts_identical: bool,
    /// Memory reading taken after the timed phases (arena occupancy plus
    /// process peak RSS).
    pub memory: apt_core::MemorySample,
}

impl SubsetBenchResult {
    /// Renders the result as a JSON object (`BENCH_subset.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7-appendixA-subset-pairs\",");
        let _ = writeln!(s, "  \"pairs\": {},", self.pairs);
        let _ = writeln!(s, "  \"verdicts_identical\": {},", self.verdicts_identical);
        let _ = writeln!(
            s,
            "  \"cold\": {{\"old_micros\": {}, \"new_micros\": {}, \"speedup\": {:.2}}},",
            self.cold.old_micros,
            self.cold.new_micros,
            self.cold.speedup()
        );
        let _ = writeln!(
            s,
            "  \"warm\": {{\"passes\": {}, \"old_micros\": {}, \"new_micros\": {}, \
             \"speedup\": {:.2}}},",
            self.warm_passes,
            self.warm.old_micros,
            self.warm.new_micros,
            self.warm.speedup()
        );
        let m = &self.memory;
        let _ = writeln!(
            s,
            "  \"memory\": {{\"arena_bytes\": {}, \"arena_nodes\": {}, \
             \"peak_rss_kb\": {}}}",
            m.arena.live_bytes,
            m.arena.live_nodes,
            m.peak_rss_kb
                .map_or_else(|| "null".to_owned(), |kb| kb.to_string())
        );
        s.push_str("}\n");
        s
    }
}

/// Runs both kernels over the Figure 7 / Appendix A subset workload,
/// timing the cold and warm phases and checking verdict identity.
pub fn run(config: &SubsetBenchConfig) -> SubsetBenchResult {
    let pairs = figure7_subset_pairs(config.depth);
    let reps = config.reps.max(1);
    let passes = config.warm_passes.max(1);

    let mut cold_old = u128::MAX;
    let mut cold_new = u128::MAX;
    let mut warm_old = u128::MAX;
    let mut warm_new = u128::MAX;
    let mut verdicts_identical = true;

    for _ in 0..reps {
        // Fresh kernels per repetition: each rep pays its own cold phase.
        let mut old = OldKernel::new();
        let started = Instant::now();
        let old_verdicts: Vec<bool> = pairs.iter().map(|p| old.subset(&p.a, &p.b)).collect();
        cold_old = cold_old.min(started.elapsed().as_micros());

        let mut new = NewKernel::new();
        let started = Instant::now();
        let new_verdicts: Vec<bool> = pairs.iter().map(|p| new.subset(p)).collect();
        cold_new = cold_new.min(started.elapsed().as_micros());

        verdicts_identical &= old_verdicts == new_verdicts;

        // Warm: the caches are settled; replay the whole list.
        let started = Instant::now();
        let mut live = 0usize;
        for _ in 0..passes {
            for p in &pairs {
                live += old.subset(&p.a, &p.b) as usize;
            }
        }
        warm_old = warm_old.min(started.elapsed().as_micros());

        let started = Instant::now();
        for _ in 0..passes {
            for p in &pairs {
                live += new.subset(p) as usize;
            }
        }
        warm_new = warm_new.min(started.elapsed().as_micros());
        std::hint::black_box(live);
    }

    SubsetBenchResult {
        pairs: pairs.len(),
        warm_passes: passes,
        cold: PhaseRow {
            old_micros: cold_old,
            new_micros: cold_new,
        },
        warm: PhaseRow {
            old_micros: warm_old,
            new_micros: warm_new,
        },
        verdicts_identical,
        memory: apt_core::MemorySample::take(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_verdict_identical() {
        let result = run(&SubsetBenchConfig::smoke());
        assert!(result.pairs > 0);
        assert!(result.verdicts_identical);
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
        assert!(json.contains("\"warm\""), "{json}");
    }

    #[test]
    fn workload_is_deduplicated() {
        let pairs = figure7_subset_pairs(2);
        let mut seen = HashSet::new();
        for p in &pairs {
            assert!(seen.insert((p.a_id, p.b_id)), "duplicate pair in workload");
            assert_eq!(RegexId::intern(&p.a), p.a_id);
            assert_eq!(RegexId::intern(&p.b), p.b_id);
        }
    }
}
