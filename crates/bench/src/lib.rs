//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! * [`fig7`] — the Figure 7 sparse-matrix speedup table (the paper's only
//!   quantitative results table), driven end-to-end by real APT runs;
//! * [`accuracy`] — the §2.4/§3.3 qualitative comparisons against the
//!   baseline testers, as a head-to-head answer table;
//! * [`complexity`] — the §4.2 practical-complexity claim (prover work as
//!   a function of path length).
//!
//! Runnable binaries print the tables (`table_speedup`, `table_accuracy`,
//! `table_complexity`); Criterion benches in `benches/` time the kernels
//! and the prover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod analyze;
pub mod batch;
pub mod complexity;
pub mod fig7;
pub mod portfolio;
pub mod prover_throughput;
pub mod serve;
pub mod subset;
