//! The accuracy comparison of §2.4/§3.3: APT versus the baseline testers
//! on a suite of dependence queries with known ground truth.

use apt_axioms::{adds, AxiomSet};
use apt_baselines::{AptAdapter, HendrenNicolau, KLimited, LarusHilfinger, PathDependenceTest};
use apt_core::{Answer, Origin};
use apt_regex::Path;

/// What is actually true of the two references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundTruth {
    /// The references can never overlap: the ideal answer is `No`.
    Independent,
    /// The references can (or must) overlap: `Yes`/`Maybe` are correct,
    /// `No` would be unsound.
    Dependent,
}

/// The structure family a query lives in (decides baseline configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Pure binary tree over `L`/`R`.
    BinaryTree,
    /// Leaf-linked binary tree (Figure 3) — a DAG.
    LeafLinkedTree,
    /// Acyclic singly linked list over `link`.
    List,
    /// Orthogonal-list sparse matrix (Figure 6).
    SparseMatrix,
}

/// One query of the suite.
#[derive(Debug, Clone)]
pub struct Case {
    /// Short name for the table.
    pub name: &'static str,
    /// Structure family.
    pub family: Family,
    /// First access path.
    pub a: &'static str,
    /// Second access path.
    pub b: &'static str,
    /// Origin relation of the two anchors.
    pub origin: Origin,
    /// Ground truth.
    pub truth: GroundTruth,
}

/// The query suite: the paper's motivating examples plus stress cases.
pub fn suite() -> Vec<Case> {
    use Family::*;
    use GroundTruth::*;
    vec![
        Case {
            name: "tree siblings (L.L vs L.R)",
            family: BinaryTree,
            a: "L.L",
            b: "L.R",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "deep tree (L^4 vs L^3.R)",
            family: BinaryTree,
            a: "L.L.L.L",
            b: "L.L.L.R",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "same leaf twice (L.L vs L.L)",
            family: BinaryTree,
            a: "L.L",
            b: "L.L",
            origin: Origin::Same,
            truth: Dependent,
        },
        Case {
            name: "subtrees (L.(L|R)* vs R.(L|R)*)",
            family: BinaryTree,
            a: "L.(L|R)*",
            b: "R.(L|R)*",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "paper 3.3 (L.L.N vs L.R.N)",
            family: LeafLinkedTree,
            a: "L.L.N",
            b: "L.R.N",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "leaf-chain overlap (L.L.N.N vs L.R.N)",
            family: LeafLinkedTree,
            a: "L.L.N.N",
            b: "L.R.N",
            origin: Origin::Same,
            truth: Dependent,
        },
        Case {
            name: "list iter pair (eps vs link+)",
            family: List,
            a: "eps",
            b: "link+",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "list deep pair (link^4 vs link^5)",
            family: List,
            a: "link.link.link.link",
            b: "link.link.link.link.link",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "theorem T (ncolE+ vs nrowE+.ncolE+)",
            family: SparseMatrix,
            a: "ncolE+",
            b: "nrowE+.ncolE+",
            origin: Origin::Same,
            truth: Independent,
        },
        Case {
            name: "row vs same row (ncolE+ vs ncolE+)",
            family: SparseMatrix,
            a: "ncolE+",
            b: "ncolE+",
            origin: Origin::Same,
            truth: Dependent,
        },
        Case {
            name: "distinct rows (relem.ncolE* from p<>q)",
            family: SparseMatrix,
            a: "relem.ncolE*",
            b: "relem.ncolE*",
            origin: Origin::Distinct,
            truth: Independent,
        },
    ]
}

/// Axioms for each family (what the programmer would attach to the type).
pub fn family_axioms(family: Family) -> AxiomSet {
    match family {
        Family::BinaryTree => AxiomSet::parse(
            "A1: forall p, p.L <> p.R\n\
             A2: forall p <> q, p.(L|R) <> q.(L|R)\n\
             A3: forall p, p.(L|R)+ <> p.eps",
        )
        .expect("axioms parse"),
        Family::LeafLinkedTree => adds::leaf_linked_tree_axioms(),
        Family::List => AxiomSet::parse(
            "A1: forall p <> q, p.link <> q.link\n\
             A2: forall p, p.link+ <> p.eps",
        )
        .expect("axioms parse"),
        Family::SparseMatrix => adds::sparse_matrix_axioms(),
    }
}

/// One tester's answers over the suite.
#[derive(Debug, Clone)]
pub struct TesterColumn {
    /// Tester display name.
    pub tester: String,
    /// Per-case answers, in suite order.
    pub answers: Vec<Answer>,
    /// Number of independent cases correctly disproven.
    pub correct_no: usize,
    /// Number of unsound answers (No on a dependent case).
    pub unsound: usize,
}

fn baseline_for(family: Family) -> Vec<Box<dyn PathDependenceTest>> {
    match family {
        Family::BinaryTree => vec![
            Box::new(KLimited::new(2)),
            Box::new(KLimited::new(4)),
            Box::new(LarusHilfinger::new(["L", "R"], [vec!["L", "R"]])),
            Box::new(HendrenNicolau::new(["L", "R"])),
        ],
        Family::LeafLinkedTree => vec![
            Box::new(KLimited::for_dag(2)),
            Box::new(KLimited::for_dag(4)),
            Box::new(LarusHilfinger::new(["L", "R"], [vec!["L", "R"], vec!["N"]])),
            Box::new(HendrenNicolau::new(["L", "R"])),
        ],
        Family::List => vec![
            Box::new(KLimited::new(2)),
            Box::new(KLimited::new(4)),
            Box::new(LarusHilfinger::new(["link"], [vec!["link"]])),
            Box::new(HendrenNicolau::new(["link"])),
        ],
        Family::SparseMatrix => vec![
            Box::new(KLimited::for_dag(2)),
            Box::new(KLimited::for_dag(4)),
            Box::new(LarusHilfinger::new(
                Vec::<&str>::new(),
                [
                    vec!["ncolE", "nrowE"],
                    vec!["relem", "celem"],
                    vec!["nrowH", "ncolH"],
                    vec!["rows", "cols"],
                ],
            )),
            Box::new(HendrenNicolau::new(Vec::<&str>::new())),
        ],
    }
}

/// Tester identifiers in column order: k-lim(2), k-lim(4), LH, HN, APT.
pub fn tester_names() -> Vec<String> {
    vec![
        "k-limited (k=2)".to_owned(),
        "k-limited (k=4)".to_owned(),
        "Larus-Hilfinger".to_owned(),
        "Hendren-Nicolau".to_owned(),
        "APT".to_owned(),
    ]
}

/// Runs the whole suite; returns one column per tester.
pub fn run() -> Vec<TesterColumn> {
    let cases = suite();
    let names = tester_names();
    let mut columns: Vec<TesterColumn> = names
        .iter()
        .map(|n| TesterColumn {
            tester: n.clone(),
            answers: Vec::new(),
            correct_no: 0,
            unsound: 0,
        })
        .collect();

    for case in &cases {
        let a = Path::parse(case.a).expect("path parses");
        let b = Path::parse(case.b).expect("path parses");
        let axioms = family_axioms(case.family);
        let baselines = baseline_for(case.family);
        let apt = AptAdapter::new(&axioms);

        let mut answers: Vec<Answer> = baselines
            .iter()
            .map(|t| t.test_paths(&a, &b, case.origin))
            .collect();
        answers.push(apt.test_paths(&a, &b, case.origin));

        for (col, ans) in columns.iter_mut().zip(answers) {
            col.answers.push(ans);
            match (case.truth, ans) {
                (GroundTruth::Independent, Answer::No) => col.correct_no += 1,
                (GroundTruth::Dependent, Answer::No) => col.unsound += 1,
                _ => {}
            }
        }
    }
    columns
}

/// The §2.3 claim, made concrete: on the Figure 1 list-update loop, a
/// k-limited tester separates iterations `i < j` only while `j ≤ k`,
/// while APT separates all of them. Returns rows of
/// `(i, j, k-limited answers per k, APT answer)`.
pub fn klimited_iteration_table(
    ks: &[usize],
    max_iter: usize,
) -> Vec<(usize, usize, Vec<Answer>, Answer)> {
    use apt_baselines::KLimited;
    let axioms = family_axioms(Family::List);
    let apt = AptAdapter::new(&axioms);
    let mut rows = Vec::new();
    for i in 1..=max_iter {
        let j = i + 1;
        let a = Path::fields(std::iter::repeat_n("link", i));
        let b = Path::fields(std::iter::repeat_n("link", j));
        let kl: Vec<Answer> = ks
            .iter()
            .map(|&k| KLimited::new(k).test_paths(&a, &b, Origin::Same))
            .collect();
        let apt_ans = apt.test_paths(&a, &b, Origin::Same);
        rows.push((i, j, kl, apt_ans));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_consistent() {
        for case in suite() {
            assert!(Path::parse(case.a).is_ok(), "{}", case.name);
            assert!(Path::parse(case.b).is_ok(), "{}", case.name);
        }
    }

    #[test]
    fn no_tester_is_unsound_on_the_suite() {
        for col in run() {
            assert_eq!(
                col.unsound, 0,
                "{} answered No on a dependent case",
                col.tester
            );
        }
    }

    #[test]
    fn apt_dominates_every_baseline() {
        let columns = run();
        let apt = columns.last().expect("APT column");
        let independent_total = suite()
            .iter()
            .filter(|c| c.truth == GroundTruth::Independent)
            .count();
        // APT breaks every false dependence in the suite.
        assert_eq!(
            apt.correct_no, independent_total,
            "APT answers: {:?}",
            apt.answers
        );
        for col in &columns[..columns.len() - 1] {
            assert!(col.correct_no <= apt.correct_no, "{} beat APT?", col.tester);
        }
    }

    #[test]
    fn klimited_separates_only_the_first_k_iterations() {
        let rows = klimited_iteration_table(&[2, 4], 6);
        for (i, j, kl, apt) in rows {
            assert_eq!(apt, Answer::No, "APT separates iterations {i},{j}");
            // k-limited works iff the deeper path stays within k.
            assert_eq!(kl[0] == Answer::No, j <= 2, "k=2 at ({i},{j})");
            assert_eq!(kl[1] == Answer::No, j <= 4, "k=4 at ({i},{j})");
        }
    }

    #[test]
    fn paper_ordering_holds_on_flagship_cases() {
        let cases = suite();
        let columns = run();
        let idx = |name: &str| cases.iter().position(|c| c.name.starts_with(name)).unwrap();
        let col = |tester: &str| {
            columns
                .iter()
                .find(|c| c.tester.starts_with(tester))
                .unwrap()
        };

        // §3.3: only APT breaks the leaf-linked dependence.
        let i = idx("paper 3.3");
        assert_eq!(col("APT").answers[i], Answer::No);
        assert_eq!(col("Larus").answers[i], Answer::Maybe);
        assert_eq!(col("Hendren").answers[i], Answer::Maybe);
        assert_eq!(col("k-limited (k=4)").answers[i], Answer::Maybe);

        // §5: only APT proves Theorem T.
        let i = idx("theorem T");
        assert_eq!(col("APT").answers[i], Answer::No);
        assert_eq!(col("Larus").answers[i], Answer::Maybe);

        // k-limited catches shallow queries but not deep ones.
        let shallow = idx("tree siblings");
        let deep = idx("deep tree");
        assert_eq!(col("k-limited (k=2)").answers[shallow], Answer::No);
        assert_eq!(col("k-limited (k=2)").answers[deep], Answer::Maybe);
        assert_eq!(col("k-limited (k=4)").answers[deep], Answer::No);
    }
}
