//! The §4.2 complexity study: prover cost as a function of path length.
//!
//! The paper argues the worst case is exponential but that in practice
//! paths are short and simple, making the test "O(n⁴) time and O(n²)
//! space" with the RE→DFA conversion dominating. This module measures
//! prover work counters and wall time for provable queries whose combined
//! component count `n` grows.

use apt_core::{DepQuery, Origin, Prover, ProverStats};
use apt_regex::Path;
use std::time::Instant;

/// One measurement point.
#[derive(Debug, Clone)]
pub struct ComplexityPoint {
    /// Combined component count of the two paths.
    pub n: usize,
    /// Whether the proof was found (all suite queries are provable).
    pub proven: bool,
    /// Wall time in microseconds.
    pub micros: u128,
    /// Prover counters.
    pub stats: ProverStats,
}

/// Builds the query pair for size `n` (`n ≥ 4`): on the Figure 3
/// leaf-linked tree, `L^k.N^m` vs `L^(k-1).R.N^m` with `k+m = n` —
/// provable for every size by tail/head peeling, like the paper's §3.3
/// example scaled up.
pub fn query_for(n: usize) -> (Path, Path) {
    assert!(n >= 4, "query needs at least 4 components");
    let k = n / 2;
    let m = n - k;
    let mut a = vec!["L"; k];
    a.extend(std::iter::repeat_n("N", m));
    let mut b = vec!["L"; k - 1];
    b.push("R");
    b.extend(std::iter::repeat_n("N", m));
    (Path::fields(a), Path::fields(b))
}

/// Runs the measurement at the given sizes (a fresh prover per point, so
/// cache effects do not leak across sizes).
pub fn run(sizes: &[usize]) -> Vec<ComplexityPoint> {
    let axioms = apt_axioms::adds::leaf_linked_tree_axioms();
    sizes
        .iter()
        .map(|&n| {
            let (a, b) = query_for(n);
            let mut prover = Prover::new(&axioms);
            let start = Instant::now();
            let proof = DepQuery::disjoint(&a, &b)
                .origin(Origin::Same)
                .run_with(&mut prover)
                .proof;
            let micros = start.elapsed().as_micros();
            ComplexityPoint {
                n,
                proven: proof.is_some(),
                micros,
                stats: prover.stats(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_provable_at_all_sizes() {
        for point in run(&[4, 8, 12, 16]) {
            assert!(point.proven, "n={} must be provable", point.n);
            assert!(point.stats.goals_attempted > 0);
        }
    }

    #[test]
    fn work_grows_polynomially_not_exponentially() {
        // Goal attempts are the work metric here: with the compiled
        // dispatch index, subset checks on this suite prune to zero (every
        // peel resolves through the compile-time injectivity map), which
        // would make a subset-check ratio 0/0.
        let points = run(&[8, 16, 32]);
        let w: Vec<f64> = points
            .iter()
            .map(|p| p.stats.goals_attempted.max(1) as f64)
            .collect();
        // Doubling n should multiply work by far less than 2^n would; allow
        // a generous polynomial envelope (×32 ≈ n^5) but reject exponential
        // blowup.
        assert!(
            w[1] / w[0] < 32.0 && w[2] / w[1] < 32.0,
            "goal attempts grew too fast: {w:?}"
        );
    }

    #[test]
    fn query_shape() {
        let (a, b) = query_for(6);
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 6);
        assert_ne!(a, b);
    }
}
