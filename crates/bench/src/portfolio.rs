//! Portfolio Maybe-rate: the axiomatic prover alone vs. the three-engine
//! race on the Figure 7 sparse-matrix suite plus a family of
//! overlapping-path queries the axioms alone can never settle.
//!
//! The axiomatic prover is refutation-free: a query whose paths *do*
//! collide (an identical-path self query, a chain walk against its own
//! transitive closure) exhausts the axioms and degrades to Maybe. The
//! portfolio's bounded concrete-heap refuter settles exactly those
//! queries with a definite Yes backed by a witness heap, so the headline
//! number here is the Maybe-rate collapse between the two columns.
//!
//! Soundness is checked, not assumed: on every query where both
//! strategies answer definitely the answers must agree, and every
//! witness the portfolio produces is independently re-validated against
//! the axiom set before it is counted. Any violation clears `behaved`
//! and fails the run.

use apt_axioms::adds::sparse_matrix_axioms;
use apt_core::{
    Answer, DepEngine, DepQuery, Origin, Portfolio, PortfolioConfig, PortfolioStats, ProverConfig,
};
use apt_regex::Path;
use std::fmt::Write as _;

/// Configuration for the portfolio Maybe-rate run.
#[derive(Debug, Clone)]
pub struct PortfolioBenchConfig {
    /// Maximum chain depth of the generated query family.
    pub depth: usize,
    /// Largest refuter candidate heap, in nodes.
    pub refuter_max_heap: usize,
}

impl Default for PortfolioBenchConfig {
    fn default() -> PortfolioBenchConfig {
        PortfolioBenchConfig {
            depth: 6,
            refuter_max_heap: 8,
        }
    }
}

impl PortfolioBenchConfig {
    /// The small-suite configuration used by CI smoke runs.
    pub fn smoke() -> PortfolioBenchConfig {
        PortfolioBenchConfig {
            depth: 3,
            refuter_max_heap: 6,
        }
    }
}

/// One suite query, kept as raw paths so a produced witness can be
/// re-validated against them.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// First access path.
    pub a: Path,
    /// Second access path.
    pub b: Path,
    /// Handle relation between the two paths' origins.
    pub origin: Origin,
    /// Query family, for the per-kind breakdown.
    pub kind: &'static str,
}

/// The query suite: the Figure 7 theorem/row-walk instances (provably
/// disjoint — the axiomatic prover's home turf) plus overlapping-path
/// queries (dependence exists — only the refuter can settle them).
pub fn suite(depth: usize) -> Vec<SuiteQuery> {
    let chain = |sym: &str, n: usize| vec![sym.to_owned(); n].join(".");
    let path = |s: &str| Path::parse(s).expect("suite path parses");
    let mut queries = Vec::new();
    for i in 1..=depth {
        for j in 1..=depth {
            queries.push(SuiteQuery {
                a: path(&chain("ncolE", i)),
                b: path(&format!("{}.ncolE+", chain("nrowE", j))),
                origin: Origin::Same,
                kind: "theorem-t",
            });
            queries.push(SuiteQuery {
                a: path(&chain("ncolE", i)),
                b: path(&format!("ncolE+.{}", chain("ncolE", j))),
                origin: Origin::Same,
                kind: "row-walk",
            });
        }
        // The axiomatically-unreachable family: these paths genuinely
        // collide, so no disjointness proof exists — the axiomatic
        // column answers Maybe on every one of them.
        queries.push(SuiteQuery {
            a: path(&chain("ncolE", i)),
            b: path(&chain("ncolE", i)),
            origin: Origin::Same,
            kind: "self-overlap",
        });
        queries.push(SuiteQuery {
            a: path(&chain("ncolE", i)),
            b: path("ncolE+"),
            origin: Origin::Same,
            kind: "suffix-overlap",
        });
    }
    queries
}

/// Per-strategy outcome counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct Column {
    /// Definite No answers.
    pub no: usize,
    /// Definite Yes answers.
    pub yes: usize,
    /// Maybe answers.
    pub maybe: usize,
}

impl Column {
    fn bump(&mut self, answer: Answer) {
        match answer {
            Answer::No => self.no += 1,
            Answer::Yes => self.yes += 1,
            Answer::Maybe => self.maybe += 1,
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct PortfolioBenchResult {
    /// Number of queries in the suite.
    pub queries: usize,
    /// Axiomatic-prover-only outcome counts.
    pub axiomatic: Column,
    /// Portfolio outcome counts.
    pub portfolio: Column,
    /// Whether every query both strategies answered definitely agreed.
    pub definite_agreement: bool,
    /// Witness heaps the portfolio produced.
    pub witnesses_produced: usize,
    /// Of those, how many passed independent re-validation.
    pub witnesses_validated: usize,
    /// Per-engine race tallies from the portfolio column.
    pub stats: PortfolioStats,
}

impl PortfolioBenchResult {
    /// The gate the CI bench check enforces: definite verdicts agree,
    /// every witness re-validated, and the portfolio's Maybe count is
    /// strictly below the axiomatic prover's.
    pub fn behaved(&self) -> bool {
        self.definite_agreement
            && self.witnesses_produced == self.witnesses_validated
            && self.portfolio.maybe < self.axiomatic.maybe
    }

    /// Renders the result as a JSON object (`BENCH_portfolio.json`).
    pub fn to_json(&self) -> String {
        let rate = |maybe: usize| {
            if self.queries == 0 {
                0.0
            } else {
                maybe as f64 / self.queries as f64
            }
        };
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"figure7+overlap\",");
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(
            s,
            "  \"axiomatic\": {{\"no\": {}, \"yes\": {}, \"maybe\": {}, \"maybe_rate\": {:.3}}},",
            self.axiomatic.no,
            self.axiomatic.yes,
            self.axiomatic.maybe,
            rate(self.axiomatic.maybe)
        );
        let _ = writeln!(
            s,
            "  \"portfolio\": {{\"no\": {}, \"yes\": {}, \"maybe\": {}, \"maybe_rate\": {:.3}}},",
            self.portfolio.no,
            self.portfolio.yes,
            self.portfolio.maybe,
            rate(self.portfolio.maybe)
        );
        let _ = writeln!(s, "  \"definite_agreement\": {},", self.definite_agreement);
        let _ = writeln!(s, "  \"witnesses_produced\": {},", self.witnesses_produced);
        let _ = writeln!(
            s,
            "  \"witnesses_validated\": {},",
            self.witnesses_validated
        );
        let _ = writeln!(
            s,
            "  \"wins\": {{\"axiomatic\": {}, \"dyck\": {}, \"refuter\": {}}},",
            self.stats.axiomatic.wins, self.stats.dyck.wins, self.stats.refuter.wins
        );
        let _ = writeln!(s, "  \"behaved\": {}", self.behaved());
        s.push_str("}\n");
        s
    }
}

/// Runs the suite twice — axiomatic prover alone, then the full
/// portfolio — and cross-checks the two columns.
pub fn run(config: &PortfolioBenchConfig) -> PortfolioBenchResult {
    let axioms = sparse_matrix_axioms();
    let queries = suite(config.depth);

    let solo = DepEngine::with_config(axioms.clone(), ProverConfig::default());
    let racer = Portfolio::new(
        DepEngine::with_config(axioms.clone(), ProverConfig::default()),
        PortfolioConfig {
            refuter_max_heap: config.refuter_max_heap,
            ..PortfolioConfig::default()
        },
    );

    let mut axiomatic = Column::default();
    let mut portfolio = Column::default();
    let mut definite_agreement = true;
    let mut witnesses_produced = 0usize;
    let mut witnesses_validated = 0usize;
    for q in &queries {
        let dep = DepQuery::disjoint(&q.a, &q.b).origin(q.origin);
        let base = solo.run(&dep);
        let raced = racer.run(&dep);
        axiomatic.bump(base.verdict.answer);
        portfolio.bump(raced.verdict.answer);
        if base.verdict.answer != Answer::Maybe
            && raced.verdict.answer != Answer::Maybe
            && base.verdict.answer != raced.verdict.answer
        {
            definite_agreement = false;
        }
        if let Some(witness) = &raced.witness {
            witnesses_produced += 1;
            if witness.validate(&axioms, q.origin, &q.a, &q.b).is_ok() {
                witnesses_validated += 1;
            }
        }
    }
    PortfolioBenchResult {
        queries: queries.len(),
        axiomatic,
        portfolio,
        definite_agreement,
        witnesses_produced,
        witnesses_validated,
        stats: racer.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_behaves_and_collapses_maybes() {
        let result = run(&PortfolioBenchConfig::smoke());
        assert!(result.queries > 0);
        assert!(result.definite_agreement, "definite verdicts diverged");
        assert_eq!(
            result.witnesses_produced, result.witnesses_validated,
            "a produced witness failed re-validation"
        );
        assert!(
            result.portfolio.maybe < result.axiomatic.maybe,
            "portfolio did not collapse the Maybe count: {} vs {}",
            result.portfolio.maybe,
            result.axiomatic.maybe
        );
        assert!(result.witnesses_produced > 0, "refuter never won");
        let json = result.to_json();
        assert!(json.contains("\"behaved\": true"), "{json}");
    }
}
