//! Measures incremental whole-program analysis (`apt analyze` with a
//! warm dependence table, one procedure edited) against a from-scratch
//! run, and writes `BENCH_analyze.json` to the current directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin analyze_incremental [--smoke] [procs]
//! ```
//!
//! `--smoke` runs one repetition on a small program (CI). Exits nonzero
//! if any incremental verdict diverges from the from-scratch run, or —
//! in full mode — if the incremental speedup falls below 5x.

use apt_bench::analyze::{run, AnalyzeBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        AnalyzeBenchConfig::smoke()
    } else {
        AnalyzeBenchConfig::default()
    };
    if let Some(procs) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.procs = procs;
    }
    eprintln!(
        "running incremental analyze: {} procs, {} rep(s), {} job(s) ...",
        config.procs, config.reps, config.jobs
    );
    let result = run(&config);

    println!("== incremental analyze: one-procedure edit on a warm table ==");
    println!(
        "{} procedures, {} queries; from scratch: {} us",
        result.procs, result.queries, result.cold_micros
    );
    println!(
        "incremental: {} us ({} replayed, {} re-proved, {}/{} procedures reused)",
        result.incremental_micros,
        result.replayed,
        result.reproved,
        result.procs_reused,
        result.procs
    );
    println!(
        "speedup vs cold: {:.2}x; verdicts {}",
        result.speedup(),
        if result.verdicts_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );

    let json = result.to_json();
    std::fs::write("BENCH_analyze.json", &json).expect("write BENCH_analyze.json");
    println!("\nwrote BENCH_analyze.json");

    if !result.verdicts_identical {
        eprintln!("error: incremental verdicts diverged from the from-scratch run");
        std::process::exit(1);
    }
    if !smoke && result.speedup() < 5.0 {
        eprintln!(
            "error: incremental speedup {:.2}x is below the 5x floor",
            result.speedup()
        );
        std::process::exit(1);
    }
}
