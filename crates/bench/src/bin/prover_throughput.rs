//! Measures proveDisj throughput with the compiled dispatch index and
//! negative memo against the linear axiom-scan baseline on the Figure 7 /
//! Appendix A workload, and writes `BENCH_prover.json` to the current
//! directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin prover_throughput [--smoke] [depth]
//! ```
//!
//! `--smoke` runs one repetition of a small workload (CI). Exits nonzero
//! if the two kernels disagree on any verdict.

use apt_bench::prover_throughput::{run, ProverBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        ProverBenchConfig::smoke()
    } else {
        ProverBenchConfig::default()
    };
    if let Some(depth) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.depth = depth;
    }
    eprintln!(
        "running prover throughput: depth {}, {} rep(s), {} warm pass(es) ...",
        config.depth, config.reps, config.warm_passes
    );
    let result = run(&config);

    println!("== proveDisj throughput: Figure 7 suite, Appendix A axioms ==");
    println!(
        "{} queries; verdicts {}",
        result.queries,
        if result.verdicts_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "phase", "linear (us)", "indexed (us)", "speedup"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8.2}x",
        "cold",
        result.cold.linear_micros,
        result.cold.indexed_micros,
        result.cold.speedup()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8.2}x",
        "warm",
        result.warm.linear_micros,
        result.warm.indexed_micros,
        result.warm.speedup()
    );
    let c = &result.counters;
    println!(
        "subset checks: {} linear vs {} indexed; dispatch {} admitted / {} pruned; {} neg-memo hits",
        c.linear_subset_checks,
        c.indexed_subset_checks,
        c.dispatch_hits,
        c.dispatch_misses,
        c.neg_memo_hits
    );

    let json = result.to_json();
    std::fs::write("BENCH_prover.json", &json).expect("write BENCH_prover.json");
    println!("\nwrote BENCH_prover.json");

    if !result.verdicts_identical {
        eprintln!("error: the indexed prover diverged from the linear scan");
        std::process::exit(1);
    }
}
