//! Regenerates the §4.2 practical-complexity observation: prover work and
//! wall time as the access-path length `n` grows (paper: ~O(n⁴) time in
//! practice, dominated by RE→DFA conversion).
//!
//! ```text
//! cargo run --release -p apt-bench --bin table_complexity
//! ```

use apt_bench::complexity::run;

fn main() {
    let sizes = [4, 6, 8, 12, 16, 24, 32, 48, 64];
    let points = run(&sizes);

    println!("== Prover cost vs path length (provable leaf-linked-tree queries) ==");
    println!(
        "{:>4} {:>8} {:>12} {:>14} {:>12} {:>6} {:>6} {:>4} {:>6} {:>6}",
        "n", "proven", "time (us)", "subset checks", "goals", "fuel", "depth", "rw", "ddl", "dfa"
    );
    for p in &points {
        let c = &p.stats.cutoffs;
        println!(
            "{:>4} {:>8} {:>12} {:>14} {:>12} {:>6} {:>6} {:>4} {:>6} {:>6}",
            p.n,
            p.proven,
            p.micros,
            p.stats.subset_checks,
            p.stats.goals_attempted,
            c.fuel,
            c.depth,
            c.rewrites,
            c.deadline,
            c.regex_budget
        );
    }
    println!();
    // Growth factors between successive sizes (exponential behaviour would
    // show factors exploding with n; the paper's practical claim is a
    // low-degree polynomial).
    println!("growth factors (subset checks):");
    for w in points.windows(2) {
        let ratio = w[1].stats.subset_checks as f64 / w[0].stats.subset_checks.max(1) as f64;
        let nr = w[1].n as f64 / w[0].n as f64;
        let degree = ratio.ln() / nr.ln();
        println!(
            "  n {:>3} -> {:>3}: x{:>6.2}  (effective degree {:.2})",
            w[0].n, w[1].n, ratio, degree
        );
    }
}
