//! Measures the Maybe-rate collapse of the three-engine portfolio
//! against the axiomatic prover alone on the Figure 7 suite plus
//! overlapping-path queries, and writes `BENCH_portfolio.json` to the
//! current directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin portfolio_maybe_rate [--smoke] [depth]
//! ```
//!
//! `--smoke` runs a small suite (CI). Exits nonzero if a definite
//! verdict diverges between the two strategies, a witness fails
//! re-validation, or the portfolio fails to collapse any Maybe.

use apt_bench::portfolio::{run, PortfolioBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        PortfolioBenchConfig::smoke()
    } else {
        PortfolioBenchConfig::default()
    };
    if let Some(depth) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.depth = depth;
    }
    eprintln!(
        "running portfolio maybe-rate: depth {}, refuter max heap {} ...",
        config.depth, config.refuter_max_heap
    );
    let result = run(&config);

    println!("== portfolio solving: Maybe-rate vs. the axiomatic prover alone ==");
    println!("{} queries", result.queries);
    println!(
        "{:>12} {:>6} {:>6} {:>7} {:>11}",
        "strategy", "no", "yes", "maybe", "maybe rate"
    );
    for (name, col) in [
        ("axiomatic", result.axiomatic),
        ("portfolio", result.portfolio),
    ] {
        println!(
            "{:>12} {:>6} {:>6} {:>7} {:>10.1}%",
            name,
            col.no,
            col.yes,
            col.maybe,
            100.0 * col.maybe as f64 / result.queries.max(1) as f64
        );
    }
    println!(
        "wins: axiomatic {}, dyck {}, refuter {}",
        result.stats.axiomatic.wins, result.stats.dyck.wins, result.stats.refuter.wins
    );
    println!(
        "witnesses: {} produced, {} re-validated",
        result.witnesses_produced, result.witnesses_validated
    );

    let json = result.to_json();
    std::fs::write("BENCH_portfolio.json", &json).expect("write BENCH_portfolio.json");
    println!("\nwrote BENCH_portfolio.json");

    if !result.behaved() {
        eprintln!(
            "error: portfolio misbehaved (divergent verdict, bad witness, or no Maybe collapse)"
        );
        std::process::exit(1);
    }
}
