//! Measures batched-engine throughput against the sequential
//! prover-per-query baseline on the Figure 7 sparse-matrix suite, and
//! writes `BENCH_batch.json` to the current directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin batch_throughput [--smoke] [depth]
//! ```
//!
//! `--smoke` runs one repetition of a small suite (CI). Exits nonzero if
//! any engine verdict diverges from the sequential baseline.

use apt_bench::batch::{run, BatchBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        BatchBenchConfig::smoke()
    } else {
        BatchBenchConfig::default()
    };
    if let Some(depth) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.depth = depth;
    }
    eprintln!(
        "running batch throughput: depth {}, {} rep(s), jobs {:?} ...",
        config.depth, config.reps, config.jobs
    );
    let result = run(&config);

    println!("== batch engine throughput: Figure 7 sparse-matrix suite ==");
    println!(
        "{} queries; sequential baseline (fresh prover per query): {} us",
        result.queries, result.sequential_micros
    );
    println!(
        "{:>6} {:>12} {:>16} {:>10} {:>9}",
        "jobs", "micros", "throughput q/s", "speedup", "verdicts"
    );
    for row in &result.rows {
        println!(
            "{:>6} {:>12} {:>16.1} {:>9.2}x {:>9}",
            row.jobs,
            row.micros,
            row.throughput_qps,
            row.speedup,
            if row.verdicts_identical {
                "ok"
            } else {
                "DIVERGED"
            }
        );
    }

    let json = result.to_json();
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("\nwrote BENCH_batch.json");

    if !result.all_verdicts_identical() {
        eprintln!("error: engine verdicts diverged from the sequential baseline");
        std::process::exit(1);
    }
    if let Some(speedup) = result.speedup_at(4) {
        println!("speedup at 4 workers: {speedup:.2}x");
    }
}
