//! Measures subset-test latency of the hash-consed early-exit kernel
//! against the pre-arena string-keyed kernel on the Figure 7 / Appendix A
//! subset workload, and writes `BENCH_subset.json` to the current
//! directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin subset_latency [--smoke] [depth]
//! ```
//!
//! `--smoke` runs one repetition of a small workload (CI). Exits nonzero
//! if the two kernels disagree on any pair.

use apt_bench::subset::{run, SubsetBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        SubsetBenchConfig::smoke()
    } else {
        SubsetBenchConfig::default()
    };
    if let Some(depth) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.depth = depth;
    }
    eprintln!(
        "running subset latency: depth {}, {} rep(s), {} warm pass(es) ...",
        config.depth, config.reps, config.warm_passes
    );
    let result = run(&config);

    println!("== subset-test latency: Figure 7 x Appendix A pairs ==");
    println!(
        "{} distinct pairs; verdicts {}",
        result.pairs,
        if result.verdicts_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "phase", "old (us)", "new (us)", "speedup"
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8.2}x",
        "cold",
        result.cold.old_micros,
        result.cold.new_micros,
        result.cold.speedup()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>8.2}x",
        "warm",
        result.warm.old_micros,
        result.warm.new_micros,
        result.warm.speedup()
    );

    let json = result.to_json();
    std::fs::write("BENCH_subset.json", &json).expect("write BENCH_subset.json");
    println!("\nwrote BENCH_subset.json");

    if !result.verdicts_identical {
        eprintln!("error: the two subset kernels disagreed on at least one pair");
        std::process::exit(1);
    }
}
