//! Regenerates **Figure 7** of the paper: sparse-matrix speedups on 2/4/7
//! PEs under the partial and full analyses.
//!
//! ```text
//! cargo run --release -p apt-bench --bin table_speedup [n] [nnz]
//! ```

use apt_bench::fig7::{run, Fig7Config};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n must be a number"))
        .unwrap_or(1000);
    let nnz: usize = args
        .next()
        .map(|a| a.parse().expect("nnz must be a number"))
        .unwrap_or(10_000);

    let config = Fig7Config {
        n,
        nnz,
        ..Fig7Config::default()
    };
    eprintln!(
        "running Figure 7 workload: {}x{} sparse matrix, N={} nonzeros (seed {}) ...",
        config.n, config.n, config.nnz, config.seed
    );
    let result = run(&config);

    println!("== Dependence decisions (analysis-driven loop classification) ==");
    println!("-- partial analysis --");
    for q in &result.partial_queries {
        println!(
            "  [{:>6}] {:<28} {}",
            q.answer.to_string(),
            q.loop_name,
            q.query
        );
    }
    println!("-- full analysis --");
    for q in &result.full_queries {
        println!(
            "  [{:>6}] {:<28} {}",
            q.answer.to_string(),
            q.loop_name,
            q.query
        );
    }
    println!();
    println!(
        "== Figure 7: sparse matrix speedup results ({}x{}, N={}, {} fillins) ==",
        config.n, config.n, config.nnz, result.fillins
    );
    println!("{:<36} {:>14} {:>14} {:>14}", "", "2 PEs", "4 PEs", "7 PEs");
    for row in &result.rows {
        let cells: Vec<String> = row
            .speedups
            .iter()
            .zip(&row.paper)
            .map(|((_, s), (_, p))| format!("{s:>5.1} (paper {p:.1})"))
            .collect();
        println!("{:<36} {}", row.label, cells.join(" "));
    }
    println!();
    println!(
        "shape checks: full > partial at 7 PEs: {}; all rows sub-linear: {}",
        result.rows[2].speedups.last().unwrap().1 > result.rows[0].speedups.last().unwrap().1,
        result
            .rows
            .iter()
            .all(|r| r.speedups.iter().all(|(p, s)| *s < *p as f64))
    );
}
