//! Regenerates the qualitative comparisons of §2.4/§3.3/§5: APT versus
//! the k-limited, Larus–Hilfinger, and Hendren–Nicolau baselines on a
//! query suite with known ground truth.
//!
//! ```text
//! cargo run -p apt-bench --bin table_accuracy
//! ```

use apt_bench::accuracy::{klimited_iteration_table, run, suite, tester_names, GroundTruth};

fn main() {
    let cases = suite();
    let columns = run();
    let names = tester_names();

    println!("== Dependence-test accuracy comparison ==");
    print!("{:<44} {:<6}", "query", "truth");
    for n in &names {
        print!(" {:<16}", n);
    }
    println!();
    for (i, case) in cases.iter().enumerate() {
        let truth = match case.truth {
            GroundTruth::Independent => "indep",
            GroundTruth::Dependent => "dep",
        };
        print!("{:<44} {:<6}", case.name, truth);
        for col in &columns {
            print!(" {:<16}", col.answers[i].to_string());
        }
        println!();
    }
    println!();
    println!("== §2.3: k-limited proves only the first k iterations independent ==");
    println!("(Figure 1 list-update loop; iterations i vs j = i+1)");
    println!(
        "{:<10} {:<16} {:<16} {:<8}",
        "i vs j", "k-limited (k=2)", "k-limited (k=4)", "APT"
    );
    for (i, j, kl, apt) in klimited_iteration_table(&[2, 4], 6) {
        println!(
            "{:<10} {:<16} {:<16} {:<8}",
            format!("{i} vs {j}"),
            kl[0].to_string(),
            kl[1].to_string(),
            apt.to_string()
        );
    }

    println!();
    let independent_total = cases
        .iter()
        .filter(|c| c.truth == GroundTruth::Independent)
        .count();
    println!("== False dependences broken (of {independent_total} breakable) ==");
    for col in &columns {
        println!(
            "{:<18} {:>2}/{} broken, {} unsound answers",
            col.tester, col.correct_no, independent_total, col.unsound
        );
    }
}
