//! Measures warm-session daemon throughput against fresh-process and
//! fresh-engine per-query baselines, probes admission control, and
//! writes `BENCH_serve.json` to the current directory.
//!
//! ```text
//! cargo run --release -p apt-bench --bin serve_throughput [--smoke] [depth]
//! ```
//!
//! `--smoke` runs the small CI configuration. Exits nonzero if any
//! warm-session verdict diverges from the in-process oracle or the
//! overload probe misbehaves.

use apt_bench::serve::{run, ServeBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut config = if smoke {
        ServeBenchConfig::smoke()
    } else {
        ServeBenchConfig::default()
    };
    if let Some(depth) = args.iter().find_map(|a| a.parse::<usize>().ok()) {
        config.depth = depth;
    }
    eprintln!(
        "running serve throughput: depth {}, {} rep(s) ...",
        config.depth, config.reps
    );
    let result = run(&config);

    println!("== serving-layer throughput: warm sessions vs fresh per-query ==");
    println!("{} disjointness queries per pass", result.queries);
    match result.fresh_process_micros {
        Some(us) => println!("fresh process per query (apt prove): {us} us total"),
        None => println!("fresh process baseline skipped (apt binary not built)"),
    }
    println!(
        "fresh engine per query (in-process): {} us total",
        result.fresh_engine_micros
    );
    println!(
        "warm session over TCP:               {} us total ({:.1} q/s)",
        result.warm_session_micros, result.warm_qps
    );
    if let Some(x) = result.speedup_vs_process {
        println!("speedup vs fresh process: {x:.2}x");
    }
    println!(
        "speedup vs fresh engine:  {:.2}x",
        result.speedup_vs_fresh_engine
    );
    println!(
        "verdicts identical: {} | overload refusals: {} ({})",
        result.verdicts_identical,
        result.overload_refusals,
        if result.overload_ok {
            "ok"
        } else {
            "MISBEHAVED"
        }
    );
    let restart = &result.restart;
    println!(
        "restart to first pass: cold {} us, warm {} us ({:.2}x, restore {}, {} goals restored) ({})",
        restart.cold_micros,
        restart.warm_micros,
        restart.speedup,
        restart.restore,
        restart.restored_goals,
        if restart.behaved() { "ok" } else { "MISBEHAVED" }
    );
    let conc = &result.concurrency;
    println!(
        "concurrency: {} idle conns (target {}), threads {} -> {}, \
         rss {} kB -> {} kB (~{} B/conn)",
        conc.connections,
        conc.target,
        conc.threads_before,
        conc.threads_during,
        conc.rss_before_kb,
        conc.rss_during_kb,
        conc.rss_per_conn_bytes
    );
    println!(
        "  accept-to-first-byte p50 {} us | active p50/p99 {}/{} us \
         ({} reqs) | server p50/p99 {}/{} us, queue p99 {} us ({})",
        conc.accept_to_first_byte_p50_us,
        conc.p50_us,
        conc.p99_us,
        conc.active_requests,
        conc.server_request_p50_us,
        conc.server_request_p99_us,
        conc.server_queue_p99_us,
        if conc.behaved() { "ok" } else { "MISBEHAVED" }
    );

    let json = result.to_json();
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");

    if !result.verdicts_identical {
        eprintln!("error: warm-session verdicts diverged from the in-process oracle");
        std::process::exit(1);
    }
    if !result.overload_ok {
        eprintln!("error: overload probe expected 2 prompt refusals");
        std::process::exit(1);
    }
    if !result.restart.behaved() {
        eprintln!(
            "error: warm restart must restore fully, answer identically, and \
             beat a cold restart by >=3x (got {:.2}x, restore {})",
            result.restart.speedup, result.restart.restore
        );
        std::process::exit(1);
    }
    if !result.concurrency.behaved() {
        eprintln!(
            "error: concurrency probe misbehaved (threads {} -> {}, {} conns, \
             verdicts_identical {})",
            result.concurrency.threads_before,
            result.concurrency.threads_during,
            result.concurrency.connections,
            result.concurrency.verdicts_identical
        );
        std::process::exit(1);
    }
}
