//! Incremental whole-program analysis: `apt analyze` with a warm
//! dependence table vs. from scratch.
//!
//! The workload is a generated multi-procedure program of identical
//! list-walking procedures — each contributes a provable loop-carried
//! disjointness (the paper's Figure 1 shape) plus pairwise conflict
//! queries, so the dependence table is definite-heavy and almost
//! everything is replayable. The measurement edits exactly one
//! procedure and compares a from-scratch run of the edited program
//! against an incremental run replaying the previous run's table: the
//! speedup is what the content-hash keyed table buys on the
//! "recompile after a small edit" path a compiler actually takes.
//!
//! Verdicts are compared row-by-row between the two runs; any
//! divergence is a correctness bug and fails the run.

use apt_core::Answer;
use apt_paths::{analyze_program, BatchOptions, ProgramReport};
use std::fmt::Write as _;
use std::time::Instant;

/// Configuration for the incremental-analyze benchmark.
#[derive(Debug, Clone)]
pub struct AnalyzeBenchConfig {
    /// Procedures in the generated program (one gets edited).
    pub procs: usize,
    /// Timing repetitions per measurement (the best run is reported).
    pub reps: usize,
    /// Worker threads for each run's fresh queries.
    pub jobs: usize,
}

impl Default for AnalyzeBenchConfig {
    fn default() -> AnalyzeBenchConfig {
        AnalyzeBenchConfig {
            procs: 16,
            reps: 3,
            jobs: 1,
        }
    }
}

impl AnalyzeBenchConfig {
    /// The 1-repetition, small-program configuration used by CI smoke
    /// runs.
    pub fn smoke() -> AnalyzeBenchConfig {
        AnalyzeBenchConfig {
            procs: 6,
            reps: 1,
            jobs: 1,
        }
    }
}

/// Generates the benchmark program: `procs` copies of a six-walker
/// tree procedure. `edit_value` is the constant stored by procedure
/// `walk0`'s second walker — generating with two different values
/// yields two programs differing in exactly that one procedure.
///
/// Each procedure walks six pairwise-disjoint depth-3 subtree regions
/// of a binary tree, one labeled store per walker. Every one of the 21
/// queries is a definite No backed by a checkable proof: the six
/// loop-carried self-queries prove by `L`-chain injectivity and
/// acyclicity, and the fifteen cross-walker pairs prove by subtree
/// disjointness (the regions diverge inside their depth-3 prefixes).
/// Nothing is Maybe, so the whole table persists and replays; and with
/// 21 proof-backed verdicts per entry, the warm run's spot-check (a
/// fixed-size proof sample) costs a small fraction of what a cold run
/// pays to prove them — which is the asymmetry the incremental table
/// exists to exploit.
pub fn program_source(procs: usize, edit_value: u64) -> String {
    let mut s = String::from(
        "type Tree {\n    ptr L: Tree;\n    ptr R: Tree;\n    data d;\n    \
         axiom A1: forall p, p.L <> p.R;\n    \
         axiom A2: forall p <> q, p.(L|R) <> q.(L|R);\n    \
         axiom A3: forall p, p.(L|R)+ <> p.eps;\n}\n",
    );
    let regions = [
        ("U", "h->L->L->L"),
        ("V", "h->L->L->R"),
        ("W", "h->L->R->L"),
        ("X", "h->L->R->R"),
        ("Y", "h->R->L->L"),
        ("Z", "h->R->L->R"),
    ];
    for k in 0..procs {
        let v = if k == 0 { edit_value } else { k as u64 };
        let _ = writeln!(s, "proc walk{k}(h: Tree) {{");
        for (i, (label, root)) in regions.iter().enumerate() {
            let store = if i == 1 {
                format!("{v}")
            } else {
                "fun()".to_string()
            };
            let _ = write!(
                s,
                "    q{i} = {root};\n    \
                 loop {{\n    \
                 {label}{k}:  q{i}->d = {store};\n        \
                 q{i} = q{i}->L;\n    \
                 }}\n"
            );
        }
        let _ = writeln!(s, "}}");
    }
    s
}

/// The per-row fingerprint compared between runs.
fn answers(report: &ProgramReport) -> Vec<(String, String, Answer)> {
    report
        .procs
        .iter()
        .flat_map(|p| {
            p.rows
                .iter()
                .map(|r| (p.name.clone(), r.key.clone(), r.outcome.answer()))
        })
        .collect()
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct AnalyzeBenchResult {
    /// Procedures in the program.
    pub procs: usize,
    /// Total queries per run.
    pub queries: usize,
    /// Best-of-reps from-scratch wall time on the edited program, µs.
    pub cold_micros: u128,
    /// Best-of-reps incremental wall time (one procedure edited), µs.
    pub incremental_micros: u128,
    /// Queries the incremental run answered from the table.
    pub replayed: usize,
    /// Queries the incremental run sent through the prover.
    pub reproved: usize,
    /// Procedures whose table entry was accepted for replay.
    pub procs_reused: usize,
    /// Whether every incremental verdict matched the from-scratch run.
    pub verdicts_identical: bool,
}

impl AnalyzeBenchResult {
    /// Cold time over incremental time.
    pub fn speedup(&self) -> f64 {
        self.cold_micros as f64 / self.incremental_micros.max(1) as f64
    }

    /// Renders the result as a JSON object (`BENCH_analyze.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suite\": \"incremental-analyze-one-proc-edit\",");
        let _ = writeln!(s, "  \"procs\": {},", self.procs);
        let _ = writeln!(s, "  \"queries\": {},", self.queries);
        let _ = writeln!(s, "  \"cold_micros\": {},", self.cold_micros);
        let _ = writeln!(s, "  \"incremental_micros\": {},", self.incremental_micros);
        let _ = writeln!(s, "  \"speedup_vs_cold\": {:.2},", self.speedup());
        let _ = writeln!(s, "  \"replayed\": {},", self.replayed);
        let _ = writeln!(s, "  \"reproved\": {},", self.reproved);
        let _ = writeln!(s, "  \"procs_reused\": {},", self.procs_reused);
        let _ = writeln!(s, "  \"verdicts_identical\": {}", self.verdicts_identical);
        s.push_str("}\n");
        s
    }
}

/// Runs the measurement: a cold pass over the base program builds the
/// table, then the edited program (one procedure changed) is analyzed
/// from scratch and incrementally, best-of-reps timed, verdicts
/// compared row-by-row.
pub fn run(config: &AnalyzeBenchConfig) -> AnalyzeBenchResult {
    let reps = config.reps.max(1);
    let options = BatchOptions::new().with_jobs(config.jobs.max(1));
    let base =
        apt_ir::parse_program(&program_source(config.procs, 9)).expect("generated program parses");
    let edited =
        apt_ir::parse_program(&program_source(config.procs, 7)).expect("generated program parses");

    // The previous compile: cold-analyze the base program for its table.
    let table = analyze_program(&base).run(None, &options).table;

    let analysis = analyze_program(&edited);
    let mut cold_micros = u128::MAX;
    let mut cold_report = None;
    for _ in 0..reps {
        let started = Instant::now();
        let report = analysis.run(None, &options);
        cold_micros = cold_micros.min(started.elapsed().as_micros());
        cold_report.get_or_insert(report);
    }
    let mut incremental_micros = u128::MAX;
    let mut incremental_report = None;
    for _ in 0..reps {
        let started = Instant::now();
        let report = analysis.run(Some(&table), &options);
        incremental_micros = incremental_micros.min(started.elapsed().as_micros());
        incremental_report.get_or_insert(report);
    }
    let cold = cold_report.expect("at least one rep");
    let incremental = incremental_report.expect("at least one rep");

    AnalyzeBenchResult {
        procs: config.procs,
        queries: incremental.total_queries(),
        cold_micros,
        incremental_micros,
        replayed: incremental.replayed(),
        reproved: incremental.reproved(),
        procs_reused: incremental.procs_reused(),
        verdicts_identical: answers(&incremental) == answers(&cold),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_verdict_identical_and_replays() {
        let result = run(&AnalyzeBenchConfig::smoke());
        assert!(result.verdicts_identical);
        assert!(result.queries > 0);
        // Exactly one procedure was edited; everything else replays.
        assert_eq!(result.procs_reused, result.procs - 1);
        assert!(result.replayed > 0);
        let json = result.to_json();
        assert!(json.contains("\"verdicts_identical\": true"), "{json}");
    }
}
