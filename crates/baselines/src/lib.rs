//! Baseline dependence testers the paper compares against (§2).
//!
//! Three families, each behind the common [`PathDependenceTest`] trait so
//! the accuracy benchmarks can run one query suite across every tester:
//!
//! * [`KLimited`] — the store-based scheme of Jones & Muchnick \[JM82\]:
//!   the first `k` heap locations along each naming path get unique names,
//!   everything deeper collapses into one summary node. "At best the
//!   dependence test will prove that only the first k iterations are
//!   independent" (§2.3).
//! * [`LarusHilfinger`] — path-expression intersection \[LH88\]: exact (and
//!   precise) for tree structures, but on DAGs access paths must first be
//!   mapped to conservative path expressions (`root.LLN ↦ (L|R)+N+`),
//!   which makes similar paths collide (§2.4).
//! * [`HendrenNicolau`] — the path-matrix approach \[HN90\]: precise for
//!   trees, but it "fails to present a general dependence test, and does
//!   not handle cyclic data structures" — any query outside its tree
//!   fragment answers Maybe.
//!
//! [`AptAdapter`] wraps the real APT prover behind the same trait.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apt_axioms::AxiomSet;
use apt_core::{Answer, DepQuery, Origin, Prover, ProverConfig};
use apt_regex::{ops, sample, Path, Regex, Symbol};

/// A dependence tester over a pair of access paths anchored at a common
/// origin vertex (or at two distinct origins).
pub trait PathDependenceTest {
    /// Short display name for result tables.
    fn name(&self) -> &str;

    /// Tests whether the two paths can reach the same vertex.
    fn test_paths(&self, a: &Path, b: &Path, origin: Origin) -> Answer;
}

/// Shared Yes-detection: identical definite paths from a common origin
/// denote the same single vertex.
fn definite_yes(a: &Path, b: &Path, origin: Origin) -> bool {
    origin == Origin::Same && a == b && a.is_definite()
}

// ---------------------------------------------------------------------
// k-limited
// ---------------------------------------------------------------------

/// The k-limited store-based tester.
///
/// Heap vertices are named by the access word that reaches them, truncated
/// at depth `k`: words of length ≤ `k` are unique names (under the
/// tree-shaped naming the scheme assumes), anything longer falls into the
/// summary node. Two references are independent only when their name sets
/// are disjoint and neither touches the summary.
#[derive(Debug, Clone)]
pub struct KLimited {
    k: usize,
    /// Names are only valid vertex identities when the structure is shaped
    /// like a tree along the named fields; otherwise distinct words may
    /// collide and the scheme must answer Maybe.
    tree_shaped: bool,
}

impl KLimited {
    /// A k-limited tester for a tree-shaped structure.
    pub fn new(k: usize) -> KLimited {
        KLimited {
            k,
            tree_shaped: true,
        }
    }

    /// A k-limited tester told that the structure may share vertices
    /// between naming paths (DAG/graph) — every overlapping query answers
    /// Maybe.
    pub fn for_dag(k: usize) -> KLimited {
        KLimited {
            k,
            tree_shaped: false,
        }
    }

    /// The depth bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl PathDependenceTest for KLimited {
    fn name(&self) -> &str {
        "k-limited"
    }

    fn test_paths(&self, a: &Path, b: &Path, origin: Origin) -> Answer {
        if definite_yes(a, b, origin) {
            return Answer::Yes;
        }
        // Distinct, unrelated roots: the store-based scheme has no way to
        // separate two unknown summaries.
        if origin == Origin::Distinct {
            return Answer::Maybe;
        }
        if !self.tree_shaped {
            return Answer::Maybe;
        }
        let ra = a.to_regex();
        let rb = b.to_regex();
        // Does either path reach beyond depth k (into the summary node)?
        let too_deep = |re: &Regex| {
            !sample::is_finite(re) || sample::words_up_to(re, 64).iter().any(|w| w.len() > self.k)
        };
        if too_deep(&ra) || too_deep(&rb) {
            return Answer::Maybe;
        }
        let wa = sample::words_up_to(&ra, self.k);
        let wb = sample::words_up_to(&rb, self.k);
        if wa.iter().any(|w| wb.contains(w)) {
            Answer::Maybe
        } else {
            Answer::No
        }
    }
}

// ---------------------------------------------------------------------
// Larus–Hilfinger
// ---------------------------------------------------------------------

/// The path-expression intersection tester of Larus & Hilfinger \[LH88\].
///
/// Configured with the structure's *tree fields* (a sub-structure known to
/// be tree-shaped, where exact path expressions are valid) and the
/// *conservative groups* used to map access paths on the shared (DAG)
/// part: each maximal run of same-group fields becomes `(g1|…|gn)+`,
/// reproducing the paper's `root.LLN ↦ (L|R)+N+` example.
#[derive(Debug, Clone)]
pub struct LarusHilfinger {
    tree_fields: Vec<Symbol>,
    groups: Vec<Vec<Symbol>>,
}

impl LarusHilfinger {
    /// Creates a tester.
    ///
    /// * `tree_fields` — fields along which the structure is a pure tree;
    ///   paths confined to them intersect exactly.
    /// * `groups` — the conservative mapping classes for everything else.
    pub fn new<I, J, S>(tree_fields: I, groups: J) -> LarusHilfinger
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = Vec<S>>,
        S: Into<Symbol>,
    {
        LarusHilfinger {
            tree_fields: tree_fields.into_iter().map(Into::into).collect(),
            groups: groups
                .into_iter()
                .map(|g| g.into_iter().map(Into::into).collect())
                .collect(),
        }
    }

    fn group_of(&self, f: Symbol) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&f))
    }

    /// The conservative path expression for an access path: each maximal
    /// run of fields from one group becomes the group's `(…|…)+`.
    /// Returns `None` when a path uses a field outside every group (the
    /// mapping has nothing safe to say, so the tester answers Maybe).
    pub fn conservative_map(&self, path: &Path) -> Option<Regex> {
        let mut out = Vec::new();
        let mut current_group: Option<usize> = None;
        for comp in path.components() {
            let syms = comp.to_regex().symbols();
            let mut comp_group = None;
            for s in syms {
                let g = self.group_of(s)?;
                match comp_group {
                    None => comp_group = Some(g),
                    Some(cg) if cg == g => {}
                    Some(_) => return None, // component mixes groups
                }
            }
            let g = comp_group?;
            if current_group != Some(g) {
                let alts = Regex::alt_all(self.groups[g].iter().map(|&s| Regex::field(s)));
                out.push(Regex::plus(alts));
                current_group = Some(g);
            }
        }
        Some(Regex::concat_all(out))
    }

    fn pure_tree_path(&self, path: &Path) -> bool {
        path.to_regex()
            .symbols()
            .iter()
            .all(|s| self.tree_fields.contains(s))
    }
}

impl PathDependenceTest for LarusHilfinger {
    fn name(&self) -> &str {
        "Larus-Hilfinger"
    }

    fn test_paths(&self, a: &Path, b: &Path, origin: Origin) -> Answer {
        if definite_yes(a, b, origin) {
            return Answer::Yes;
        }
        if origin == Origin::Distinct {
            // The alias-graph formulation anchors paths at one vertex; with
            // unrelated anchors nothing can be concluded.
            return Answer::Maybe;
        }
        // Precise on the tree fragment: in a tree, distinct words are
        // distinct vertices, so empty language intersection decides.
        if self.pure_tree_path(a) && self.pure_tree_path(b) {
            return if ops::is_disjoint(&a.to_regex(), &b.to_regex()) {
                Answer::No
            } else {
                Answer::Maybe
            };
        }
        // DAG part: intersect the conservative mappings.
        let (Some(ma), Some(mb)) = (self.conservative_map(a), self.conservative_map(b)) else {
            return Answer::Maybe;
        };
        if ops::is_disjoint(&ma, &mb) {
            Answer::No
        } else {
            Answer::Maybe
        }
    }
}

// ---------------------------------------------------------------------
// Hendren–Nicolau
// ---------------------------------------------------------------------

/// The path-matrix tester of Hendren & Nicolau \[HN90\]: exact language
/// intersection, valid only on structures declared to be trees (where
/// distinct words always reach distinct vertices). Queries that leave the
/// declared tree fields answer Maybe.
#[derive(Debug, Clone)]
pub struct HendrenNicolau {
    tree_fields: Vec<Symbol>,
}

impl HendrenNicolau {
    /// Creates a tester for a tree over `tree_fields`.
    pub fn new<I, S>(tree_fields: I) -> HendrenNicolau
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        HendrenNicolau {
            tree_fields: tree_fields.into_iter().map(Into::into).collect(),
        }
    }
}

impl PathDependenceTest for HendrenNicolau {
    fn name(&self) -> &str {
        "Hendren-Nicolau"
    }

    fn test_paths(&self, a: &Path, b: &Path, origin: Origin) -> Answer {
        if definite_yes(a, b, origin) {
            return Answer::Yes;
        }
        let in_tree = |p: &Path| {
            p.to_regex()
                .symbols()
                .iter()
                .all(|s| self.tree_fields.contains(s))
        };
        if !in_tree(a) || !in_tree(b) {
            return Answer::Maybe;
        }
        match origin {
            Origin::Same => {
                if ops::is_disjoint(&a.to_regex(), &b.to_regex()) {
                    Answer::No
                } else {
                    Answer::Maybe
                }
            }
            // In a tree, two distinct vertices have disjoint subtrees, but
            // with unrelated anchors one may be an ancestor of the other —
            // the path matrix records definite relations only.
            Origin::Distinct => Answer::Maybe,
        }
    }
}

// ---------------------------------------------------------------------
// APT adapter
// ---------------------------------------------------------------------

/// The real APT prover behind the common trait, for head-to-head tables.
#[derive(Debug)]
pub struct AptAdapter<'a> {
    axioms: &'a AxiomSet,
    config: ProverConfig,
}

impl<'a> AptAdapter<'a> {
    /// Wraps APT over an axiom set.
    pub fn new(axioms: &'a AxiomSet) -> AptAdapter<'a> {
        AptAdapter {
            axioms,
            config: ProverConfig::default(),
        }
    }

    /// Wraps APT with an explicit configuration (for ablations).
    pub fn with_config(axioms: &'a AxiomSet, config: ProverConfig) -> AptAdapter<'a> {
        AptAdapter { axioms, config }
    }
}

impl PathDependenceTest for AptAdapter<'_> {
    fn name(&self) -> &str {
        "APT"
    }

    fn test_paths(&self, a: &Path, b: &Path, origin: Origin) -> Answer {
        if definite_yes(a, b, origin) {
            return Answer::Yes;
        }
        let mut prover = Prover::with_config(self.axioms, self.config.clone());
        match DepQuery::disjoint(a, b)
            .origin(origin)
            .run_with(&mut prover)
            .proof
        {
            Some(_) => Answer::No,
            None => Answer::Maybe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_axioms::adds;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    // ---- k-limited ----

    #[test]
    fn klimited_separates_shallow_tree_paths() {
        let t = KLimited::new(3);
        assert_eq!(t.test_paths(&p("L.L"), &p("L.R"), Origin::Same), Answer::No);
    }

    #[test]
    fn klimited_fails_beyond_k() {
        let t = KLimited::new(2);
        assert_eq!(
            t.test_paths(&p("L.L.L"), &p("L.L.R"), Origin::Same),
            Answer::Maybe
        );
    }

    #[test]
    fn klimited_fails_on_loops() {
        // The paper's linked-list loop: ε vs link+ — the + escapes any k.
        let t = KLimited::new(8);
        assert_eq!(
            t.test_paths(&p("eps"), &p("link+"), Origin::Same),
            Answer::Maybe
        );
    }

    #[test]
    fn klimited_proves_first_k_iterations_only() {
        // Iteration pairs (i, j) with concrete unrollings: independent
        // while both within k…
        let t = KLimited::new(3);
        assert_eq!(
            t.test_paths(&p("link"), &p("link.link"), Origin::Same),
            Answer::No
        );
        // …but not past it.
        assert_eq!(
            t.test_paths(
                &p("link.link.link.link"),
                &p("link.link.link.link.link"),
                Origin::Same
            ),
            Answer::Maybe
        );
    }

    #[test]
    fn klimited_dag_mode_always_maybe_on_overlap_risk() {
        let t = KLimited::for_dag(4);
        assert_eq!(
            t.test_paths(&p("L.L"), &p("L.R"), Origin::Same),
            Answer::Maybe
        );
    }

    #[test]
    fn klimited_yes_on_identical_definite() {
        let t = KLimited::new(2);
        assert_eq!(
            t.test_paths(&p("L.L"), &p("L.L"), Origin::Same),
            Answer::Yes
        );
    }

    // ---- Larus–Hilfinger ----

    fn llt_lh() -> LarusHilfinger {
        // Leaf-linked tree: {L,R} is a pure tree; N links leaves (DAG).
        LarusHilfinger::new(["L", "R"], [vec!["L", "R"], vec!["N"]])
    }

    #[test]
    fn lh_exact_on_pure_tree_paths() {
        let t = llt_lh();
        assert_eq!(t.test_paths(&p("L.L"), &p("L.R"), Origin::Same), Answer::No);
        assert_eq!(
            t.test_paths(&p("L.L"), &p("L.L.R"), Origin::Same),
            Answer::No
        );
    }

    #[test]
    fn lh_conservative_mapping_matches_paper() {
        let t = llt_lh();
        let m = t.conservative_map(&p("L.L.N")).unwrap();
        assert_eq!(m.to_string(), "(L|R)+.N+");
        let m2 = t.conservative_map(&p("L.R.N")).unwrap();
        assert!(ops::equivalent(&m, &m2));
    }

    #[test]
    fn lh_fails_on_paper_dag_example() {
        // §2.4: root.LLN vs root.LRN — APT proves No, LH cannot.
        let t = llt_lh();
        assert_eq!(
            t.test_paths(&p("L.L.N"), &p("L.R.N"), Origin::Same),
            Answer::Maybe
        );
    }

    #[test]
    fn lh_still_separates_disjoint_groups() {
        // A pure-L path vs a pure-N path: (L|R)+ ∩ N+ = ∅.
        let t = llt_lh();
        assert_eq!(t.test_paths(&p("L.L"), &p("N"), Origin::Same), Answer::No);
    }

    #[test]
    fn lh_sparse_matrix_theorem_fails() {
        // §5: the rows/columns of a sparse matrix cross, so both fields
        // fall in one conservative group — Theorem T is out of reach.
        let t = LarusHilfinger::new(Vec::<&str>::new(), [vec!["ncolE", "nrowE"]]);
        assert_eq!(
            t.test_paths(&p("ncolE+"), &p("nrowE+.ncolE+"), Origin::Same),
            Answer::Maybe
        );
    }

    #[test]
    fn lh_unknown_field_is_maybe() {
        let t = llt_lh();
        assert_eq!(
            t.test_paths(&p("L.zzz_unknown"), &p("R"), Origin::Same),
            Answer::Maybe
        );
    }

    // ---- Hendren–Nicolau ----

    #[test]
    fn hn_precise_on_trees_including_closures() {
        let t = HendrenNicolau::new(["L", "R"]);
        assert_eq!(t.test_paths(&p("L.L"), &p("L.R"), Origin::Same), Answer::No);
        // In a tree, L.(L|R)* and R.(L|R)* are disjoint subtree languages.
        assert_eq!(
            t.test_paths(&p("L.(L|R)*"), &p("R.(L|R)*"), Origin::Same),
            Answer::No
        );
    }

    #[test]
    fn hn_gives_up_outside_tree() {
        let t = HendrenNicolau::new(["L", "R"]);
        assert_eq!(
            t.test_paths(&p("L.L.N"), &p("L.R.N"), Origin::Same),
            Answer::Maybe
        );
    }

    // ---- APT adapter & head-to-head ----

    #[test]
    fn apt_wins_on_paper_examples() {
        let llt = adds::leaf_linked_tree_axioms();
        let apt = AptAdapter::new(&llt);
        assert_eq!(
            apt.test_paths(&p("L.L.N"), &p("L.R.N"), Origin::Same),
            Answer::No
        );
        let sm = adds::sparse_matrix_minimal_axioms();
        let apt = AptAdapter::new(&sm);
        assert_eq!(
            apt.test_paths(&p("ncolE+"), &p("nrowE+.ncolE+"), Origin::Same),
            Answer::No
        );
    }

    #[test]
    fn apt_never_weaker_than_lh_on_tree_queries() {
        // Spot-check the paper's claim ordering on the tree fragment.
        let llt = adds::leaf_linked_tree_axioms();
        let apt = AptAdapter::new(&llt);
        let lh = llt_lh();
        for (a, b) in [("L.L", "L.R"), ("L", "R"), ("L.L", "L.L.R")] {
            let apt_ans = apt.test_paths(&p(a), &p(b), Origin::Same);
            let lh_ans = lh.test_paths(&p(a), &p(b), Origin::Same);
            if lh_ans == Answer::No {
                assert_eq!(apt_ans, Answer::No, "APT weaker than LH on {a} vs {b}");
            }
        }
    }
}
