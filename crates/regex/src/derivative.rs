//! Brzozowski derivatives.
//!
//! Used for direct word matching ([`crate::Regex::matches`]) and for
//! cross-checking the automata pipeline in tests: the derivative engine and
//! the NFA→DFA engine are independent implementations of the same language
//! semantics, so disagreement between them flags a bug in either.

use crate::Regex;

/// The Brzozowski derivative `∂_sym(re)`: the language of suffixes of words
/// in `re` that begin with `sym`.
///
/// ```
/// use apt_regex::{derivative::derive, Regex, Symbol};
/// let l = Symbol::intern("L");
/// let re = Regex::word(["L", "R"]);
/// assert_eq!(derive(&re, l), Regex::field("R"));
/// ```
pub fn derive(re: &Regex, sym: crate::Symbol) -> Regex {
    match re {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Field(s) => {
            if *s == sym {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(a, b) => {
            let left = Regex::concat(derive(a, sym), (**b).clone());
            if a.is_nullable() {
                Regex::alt(left, derive(b, sym))
            } else {
                left
            }
        }
        Regex::Alt(a, b) => Regex::alt(derive(a, sym), derive(b, sym)),
        Regex::Star(a) => Regex::concat(derive(a, sym), Regex::star((**a).clone())),
        // a+ = a·a*
        Regex::Plus(a) => Regex::concat(derive(a, sym), Regex::star((**a).clone())),
    }
}

/// Derives by an entire word, returning the residual language.
pub fn derive_word(re: &Regex, word: &[crate::Symbol]) -> Regex {
    let mut cur = re.clone();
    for &s in word {
        cur = derive(&cur, s);
        if cur.is_empty_language() {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    fn f(name: &str) -> Regex {
        Regex::field(name)
    }

    #[test]
    fn derive_field() {
        let l = Symbol::intern("L");
        assert_eq!(derive(&f("L"), l), Regex::Epsilon);
        assert_eq!(derive(&f("R"), l), Regex::Empty);
    }

    #[test]
    fn derive_star() {
        let n = Symbol::intern("N");
        let re = Regex::star(f("N"));
        assert_eq!(derive(&re, n), re);
    }

    #[test]
    fn derive_plus_becomes_star() {
        let n = Symbol::intern("N");
        let re = Regex::plus(f("N"));
        assert_eq!(derive(&re, n), Regex::star(f("N")));
    }

    #[test]
    fn derive_concat_nullable_head() {
        let l = Symbol::intern("L");
        // L*·L : deriving by L gives L*·L | ε, which accepts ε and L…
        let re = Regex::concat(Regex::star(f("L")), f("L"));
        let d = derive(&re, l);
        assert!(d.is_nullable());
        assert!(d.matches(&[l]));
    }

    #[test]
    fn derive_word_residual() {
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let re = Regex::word(["L", "R", "N"]);
        assert_eq!(derive_word(&re, &[l, r]), f("N"));
        assert_eq!(derive_word(&re, &[r]), Regex::Empty);
    }
}
