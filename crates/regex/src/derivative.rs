//! Brzozowski derivatives.
//!
//! Used for direct word matching ([`crate::Regex::matches`]) and for
//! cross-checking the automata pipeline in tests: the derivative engine and
//! the NFA→DFA engine are independent implementations of the same language
//! semantics, so disagreement between them flags a bug in either.

use crate::Regex;

/// The Brzozowski derivative `∂_sym(re)`: the language of suffixes of words
/// in `re` that begin with `sym`.
///
/// ```
/// use apt_regex::{derivative::derive, Regex, Symbol};
/// let l = Symbol::intern("L");
/// let re = Regex::word(["L", "R"]);
/// assert_eq!(derive(&re, l), Regex::field("R"));
/// ```
pub fn derive(re: &Regex, sym: crate::Symbol) -> Regex {
    match re {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Field(s) => {
            if *s == sym {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(a, b) => {
            let left = Regex::concat(derive(a, sym), (**b).clone());
            if a.is_nullable() {
                Regex::alt(left, derive(b, sym))
            } else {
                left
            }
        }
        Regex::Alt(a, b) => Regex::alt(derive(a, sym), derive(b, sym)),
        Regex::Star(a) => Regex::concat(derive(a, sym), Regex::star((**a).clone())),
        // a+ = a·a*
        Regex::Plus(a) => Regex::concat(derive(a, sym), Regex::star((**a).clone())),
    }
}

/// Decides `L(a) ⊆ L(b)` by exploring pairs of Brzozowski derivatives:
/// a counterexample word exists iff some reachable derivative pair is
/// nullable on the left and not on the right.
///
/// This is a third, automata-free implementation of the subset test, used
/// to cross-validate the DFA kernels. Derivatives here are only
/// syntactically simplified (not normalized modulo
/// associativity/commutativity/idempotence), so the pair space is not
/// always finite: the search gives up after expanding `budget` distinct
/// pairs and returns `None` ("undecided"). `Some(v)` answers are exact.
///
/// ```
/// use apt_regex::{derivative, parse};
/// let a = parse("L.L").unwrap();
/// let b = parse("L+").unwrap();
/// assert_eq!(derivative::is_subset_bounded(&a, &b, 1000), Some(true));
/// assert_eq!(derivative::is_subset_bounded(&b, &a, 1000), Some(false));
/// ```
pub fn is_subset_bounded(a: &Regex, b: &Regex, budget: usize) -> Option<bool> {
    let mut alpha = a.symbols();
    alpha.extend(b.symbols());
    alpha.sort_unstable();
    alpha.dedup();

    let mut seen: std::collections::HashSet<(Regex, Regex)> = std::collections::HashSet::new();
    let start = (a.clone(), b.clone());
    seen.insert(start.clone());
    let mut stack = vec![start];
    while let Some((ra, rb)) = stack.pop() {
        if ra.is_nullable() && !rb.is_nullable() {
            return Some(false);
        }
        for &sym in &alpha {
            let da = derive(&ra, sym);
            if da.is_empty_language() {
                // No word of L(a) continues this way: nothing to refute.
                continue;
            }
            let db = derive(&rb, sym);
            let pair = (da, db);
            if seen.insert(pair.clone()) {
                if seen.len() > budget {
                    return None;
                }
                stack.push(pair);
            }
        }
    }
    Some(true)
}

/// Derives by an entire word, returning the residual language.
pub fn derive_word(re: &Regex, word: &[crate::Symbol]) -> Regex {
    let mut cur = re.clone();
    for &s in word {
        cur = derive(&cur, s);
        if cur.is_empty_language() {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    fn f(name: &str) -> Regex {
        Regex::field(name)
    }

    #[test]
    fn derive_field() {
        let l = Symbol::intern("L");
        assert_eq!(derive(&f("L"), l), Regex::Epsilon);
        assert_eq!(derive(&f("R"), l), Regex::Empty);
    }

    #[test]
    fn derive_star() {
        let n = Symbol::intern("N");
        let re = Regex::star(f("N"));
        assert_eq!(derive(&re, n), re);
    }

    #[test]
    fn derive_plus_becomes_star() {
        let n = Symbol::intern("N");
        let re = Regex::plus(f("N"));
        assert_eq!(derive(&re, n), Regex::star(f("N")));
    }

    #[test]
    fn derive_concat_nullable_head() {
        let l = Symbol::intern("L");
        // L*·L : deriving by L gives L*·L | ε, which accepts ε and L…
        let re = Regex::concat(Regex::star(f("L")), f("L"));
        let d = derive(&re, l);
        assert!(d.is_nullable());
        assert!(d.matches(&[l]));
    }

    #[test]
    fn bounded_subset_basics() {
        let cases = [
            ("L", "L|R", Some(true)),
            ("L|R", "L", Some(false)),
            ("L.L.L", "L*", Some(true)),
            ("eps", "L+", Some(false)),
            ("empty", "L", Some(true)),
        ];
        for (x, y, expect) in cases {
            let (rx, ry) = (crate::parse(x).unwrap(), crate::parse(y).unwrap());
            assert_eq!(is_subset_bounded(&rx, &ry, 10_000), expect, "{x} ⊆ {y}");
        }
    }

    #[test]
    fn bounded_subset_gives_up_cleanly() {
        // A one-pair budget cannot close any nontrivial search.
        let a = crate::parse("(L|R)*.N").unwrap();
        let b = crate::parse("(L|R|N)*").unwrap();
        assert_eq!(is_subset_bounded(&a, &b, 1), None);
    }

    #[test]
    fn derive_word_residual() {
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let re = Regex::word(["L", "R", "N"]);
        assert_eq!(derive_word(&re, &[l, r]), f("N"));
        assert_eq!(derive_word(&re, &[r]), Regex::Empty);
    }
}
