//! Thompson construction: [`Regex`] → ε-NFA.
//!
//! The NFA is an intermediate step of the decision procedures in
//! [`crate::ops`]; the paper's subset test (`R1 ⊆ R2` iff
//! `M1 ∩ ¬M2 = ∅`, §4.1) works on the DFAs obtained from these NFAs by
//! subset construction ([`crate::dfa`]).

use crate::bitset::BitSet;
use crate::{Regex, Symbol};

/// A transition label: `None` is an ε-move.
pub type Label = Option<Symbol>;

/// A nondeterministic finite automaton with ε-moves and a single start and
/// accept state (as produced by Thompson's construction).
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Outgoing transitions per state.
    transitions: Vec<Vec<(Label, usize)>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    /// Builds the Thompson NFA for `re`.
    ///
    /// ```
    /// use apt_regex::{nfa::Nfa, Regex};
    /// let nfa = Nfa::build(&Regex::word(["L", "R"]));
    /// assert!(nfa.state_count() >= 3);
    /// ```
    pub fn build(re: &Regex) -> Nfa {
        let mut nfa = Nfa {
            transitions: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.compile(re);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    fn fresh(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: usize, label: Label, to: usize) {
        self.transitions[from].push((label, to));
    }

    /// Compiles `re`, returning `(start, accept)` state ids.
    fn compile(&mut self, re: &Regex) -> (usize, usize) {
        match re {
            Regex::Empty => {
                let s = self.fresh();
                let a = self.fresh();
                (s, a) // no edges: accepts nothing
            }
            Regex::Epsilon => {
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, None, a);
                (s, a)
            }
            Regex::Field(sym) => {
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, Some(*sym), a);
                (s, a)
            }
            Regex::Concat(x, y) => {
                let (sx, ax) = self.compile(x);
                let (sy, ay) = self.compile(y);
                self.edge(ax, None, sy);
                (sx, ay)
            }
            Regex::Alt(x, y) => {
                let s = self.fresh();
                let a = self.fresh();
                let (sx, ax) = self.compile(x);
                let (sy, ay) = self.compile(y);
                self.edge(s, None, sx);
                self.edge(s, None, sy);
                self.edge(ax, None, a);
                self.edge(ay, None, a);
                (s, a)
            }
            Regex::Star(x) => {
                let s = self.fresh();
                let a = self.fresh();
                let (sx, ax) = self.compile(x);
                self.edge(s, None, sx);
                self.edge(s, None, a);
                self.edge(ax, None, sx);
                self.edge(ax, None, a);
                (s, a)
            }
            // a+ = a · a*
            Regex::Plus(x) => {
                let (sx, ax) = self.compile(x);
                let a = self.fresh();
                self.edge(ax, None, a);
                // loop back for repetition
                self.edge(a, None, sx);
                let accept = self.fresh();
                self.edge(a, None, accept);
                (sx, accept)
            }
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Start state id.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Accept state id.
    pub fn accept(&self) -> usize {
        self.accept
    }

    /// ε-closure of a set of states (sorted, deduplicated).
    pub fn epsilon_closure(&self, states: &[usize]) -> Vec<usize> {
        let mut seen = vec![false; self.transitions.len()];
        let mut stack: Vec<usize> = states.to_vec();
        for &s in states {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &(label, to) in &self.transitions[s] {
                if label.is_none() && !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        (0..self.transitions.len()).filter(|&i| seen[i]).collect()
    }

    /// The ε-closure of every single state, as one [`BitSet`] per state.
    ///
    /// This is the precomputation the bitset-backed subset construction
    /// runs on: `closure(S) = ⋃_{s∈S} closures[s]`, a word-wise union
    /// instead of a per-step depth-first search.
    pub fn epsilon_closures(&self) -> Vec<BitSet> {
        let n = self.transitions.len();
        (0..n)
            .map(|root| {
                let mut set = BitSet::new(n);
                set.insert(root);
                let mut stack = vec![root];
                while let Some(s) = stack.pop() {
                    for &(label, to) in &self.transitions[s] {
                        if label.is_none() && set.insert(to) {
                            stack.push(to);
                        }
                    }
                }
                set
            })
            .collect()
    }

    /// Unions into `out` the ε-closures of all states reachable from `set`
    /// by one `sym` edge. `closures` must come from
    /// [`Nfa::epsilon_closures`] on this NFA.
    pub fn step_closure_into(
        &self,
        set: &BitSet,
        sym: Symbol,
        closures: &[BitSet],
        out: &mut BitSet,
    ) {
        for s in set.iter() {
            for &(label, to) in &self.transitions[s] {
                if label == Some(sym) {
                    out.union_with(&closures[to]);
                }
            }
        }
    }

    /// States reachable from `states` on one `sym` edge (no closure applied).
    pub fn step(&self, states: &[usize], sym: Symbol) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for &s in states {
            for &(label, to) in &self.transitions[s] {
                if label == Some(sym) {
                    out.push(to);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepts(nfa: &Nfa, word: &[Symbol]) -> bool {
        let mut cur = nfa.epsilon_closure(&[nfa.start()]);
        for &s in word {
            let next = nfa.step(&cur, s);
            cur = nfa.epsilon_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&nfa.accept())
    }

    #[test]
    fn empty_accepts_nothing() {
        let nfa = Nfa::build(&Regex::empty());
        assert!(!accepts(&nfa, &[]));
    }

    #[test]
    fn epsilon_accepts_only_empty_word() {
        let nfa = Nfa::build(&Regex::epsilon());
        let l = Symbol::intern("L");
        assert!(accepts(&nfa, &[]));
        assert!(!accepts(&nfa, &[l]));
    }

    #[test]
    fn word_nfa() {
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let nfa = Nfa::build(&Regex::word(["L", "R"]));
        assert!(accepts(&nfa, &[l, r]));
        assert!(!accepts(&nfa, &[l]));
        assert!(!accepts(&nfa, &[r, l]));
    }

    #[test]
    fn star_nfa() {
        let n = Symbol::intern("N");
        let nfa = Nfa::build(&Regex::star(Regex::field("N")));
        assert!(accepts(&nfa, &[]));
        assert!(accepts(&nfa, &[n]));
        assert!(accepts(&nfa, &[n, n, n]));
    }

    #[test]
    fn plus_nfa_requires_one() {
        let n = Symbol::intern("N");
        let nfa = Nfa::build(&Regex::plus(Regex::field("N")));
        assert!(!accepts(&nfa, &[]));
        assert!(accepts(&nfa, &[n]));
        assert!(accepts(&nfa, &[n, n]));
    }

    #[test]
    fn bitset_closures_agree_with_vec_closures() {
        let re = crate::parse("(L|R)*.N+.(L.R)*").unwrap();
        let nfa = Nfa::build(&re);
        let closures = nfa.epsilon_closures();
        for (s, closure) in closures.iter().enumerate() {
            let via_vec = nfa.epsilon_closure(&[s]);
            let via_bits: Vec<usize> = closure.iter().collect();
            assert_eq!(via_vec, via_bits, "state {s}");
        }
        // One symbol step + closure, both ways, from the start closure.
        let start: Vec<usize> = closures[nfa.start()].iter().collect();
        for sym in re.symbols() {
            let stepped = nfa.epsilon_closure(&nfa.step(&start, sym));
            let mut bits = BitSet::new(nfa.state_count());
            nfa.step_closure_into(&closures[nfa.start()], sym, &closures, &mut bits);
            assert_eq!(stepped, bits.iter().collect::<Vec<_>>(), "symbol {sym}");
        }
    }

    #[test]
    fn alt_nfa() {
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let nfa = Nfa::build(&Regex::alt(Regex::field("L"), Regex::field("R")));
        assert!(accepts(&nfa, &[l]));
        assert!(accepts(&nfa, &[r]));
        assert!(!accepts(&nfa, &[l, r]));
    }
}
