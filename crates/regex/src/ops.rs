//! Language-level decision procedures.
//!
//! These are the operations §4.1 of the paper relies on: the axiom
//! applicability check is a *subset* question (`S_p ⊆ RE1`), answered per
//! \[HU79\] as `M1 ∩ complement(M2) = ∅` over a common alphabet. Inclusion
//! over the union of the two expressions' alphabets coincides with inclusion
//! over any larger alphabet, so no "universe" alphabet is needed.

use crate::dfa::Dfa;
use crate::{Regex, Symbol};

fn union_alphabet(a: &Regex, b: &Regex) -> Vec<Symbol> {
    let mut syms = a.symbols();
    syms.extend(b.symbols());
    syms.sort_unstable();
    syms.dedup();
    syms
}

/// `L(a) ⊆ L(b)`.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use apt_regex::{ops, parse};
/// assert!(ops::is_subset(&parse("L.L")?, &parse("L+")?));
/// assert!(!ops::is_subset(&parse("L+")?, &parse("L.L")?));
/// # Ok(())
/// # }
/// ```
pub fn is_subset(a: &Regex, b: &Regex) -> bool {
    if a.is_empty_language() {
        return true;
    }
    let alpha = union_alphabet(a, b);
    let da = Dfa::build(a, &alpha);
    let db = Dfa::build(b, &alpha);
    da.intersect(&db.complement()).is_empty()
}

/// `L(a) ∩ L(b) = ∅`.
pub fn is_disjoint(a: &Regex, b: &Regex) -> bool {
    let alpha = union_alphabet(a, b);
    Dfa::build(a, &alpha)
        .intersect(&Dfa::build(b, &alpha))
        .is_empty()
}

/// `L(a) = L(b)`.
pub fn equivalent(a: &Regex, b: &Regex) -> bool {
    is_subset(a, b) && is_subset(b, a)
}

/// A shortest word in `L(a) ∩ L(b)`, if any — a concrete witness that two
/// path sets can denote the same vertex, used in diagnostics.
pub fn intersection_witness(a: &Regex, b: &Regex) -> Option<Vec<Symbol>> {
    let alpha = union_alphabet(a, b);
    Dfa::build(a, &alpha)
        .intersect(&Dfa::build(b, &alpha))
        .shortest_word()
}

/// Whether `L(a)` is empty.
pub fn is_empty(a: &Regex) -> bool {
    let alpha = a.symbols();
    Dfa::build(a, &alpha).is_empty()
}

/// Whether `L(a)` contains exactly one word.
///
/// This implements the cardinality-one check of `deptest` (§4.1): a definite
/// dependence needs `Path_p = Path_q` **and** `|Path_p| = 1`.
pub fn is_singleton(a: &Regex) -> bool {
    let alpha = a.symbols();
    let dfa = Dfa::build(a, &alpha);
    let Some(w) = dfa.shortest_word() else {
        return false;
    };
    // The language is a singleton iff removing the shortest word empties it.
    // Build "alphabet* minus {w}" as complement of the literal word DFA.
    let word_re = Regex::word(w);
    let alpha2 = union_alphabet(a, &word_re);
    let da = Dfa::build(a, &alpha2);
    let dw = Dfa::build(&word_re, &alpha2);
    da.intersect(&dw.complement()).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn subset_basic() {
        assert!(is_subset(&parse("L").unwrap(), &parse("L|R").unwrap()));
        assert!(!is_subset(&parse("L|R").unwrap(), &parse("L").unwrap()));
        assert!(is_subset(&parse("L.L.L").unwrap(), &parse("L*").unwrap()));
        assert!(is_subset(&Regex::empty(), &parse("L").unwrap()));
        assert!(is_subset(&parse("eps").unwrap(), &parse("L*").unwrap()));
        assert!(!is_subset(&parse("eps").unwrap(), &parse("L+").unwrap()));
    }

    #[test]
    fn subset_with_disjoint_alphabets() {
        assert!(!is_subset(&parse("L").unwrap(), &parse("R").unwrap()));
        assert!(is_subset(
            &parse("ncolE+").unwrap(),
            &parse("(ncolE|nrowE)+").unwrap()
        ));
    }

    #[test]
    fn disjointness() {
        assert!(is_disjoint(&parse("L+").unwrap(), &parse("R+").unwrap()));
        assert!(!is_disjoint(
            &parse("(L|R)+").unwrap(),
            &parse("L+").unwrap()
        ));
        // The paper's leaf-linked example: exact languages ARE disjoint...
        assert!(is_disjoint(
            &parse("L.L.N").unwrap(),
            &parse("L.R.N").unwrap()
        ));
        // ...but the conservative mappings are not (§2.4).
        assert!(!is_disjoint(
            &parse("(L|R)+.N+").unwrap(),
            &parse("(L|R)+.N+").unwrap()
        ));
    }

    #[test]
    fn equivalence() {
        assert!(equivalent(&parse("L.L*").unwrap(), &parse("L+").unwrap()));
        assert!(equivalent(
            &parse("(L|R)*").unwrap(),
            &parse("(R|L)*").unwrap()
        ));
        assert!(!equivalent(&parse("L*").unwrap(), &parse("L+").unwrap()));
    }

    #[test]
    fn witness_of_overlap() {
        let w = intersection_witness(&parse("L+.N").unwrap(), &parse("(L|N)+").unwrap());
        let w = w.expect("languages overlap");
        assert!(parse("L+.N").unwrap().matches(&w));
        assert!(parse("(L|N)+").unwrap().matches(&w));
        assert_eq!(
            intersection_witness(&parse("L").unwrap(), &parse("R").unwrap()),
            None
        );
    }

    #[test]
    fn emptiness() {
        assert!(is_empty(&Regex::empty()));
        assert!(!is_empty(&parse("eps").unwrap()));
        assert!(!is_empty(&parse("L*").unwrap()));
    }

    #[test]
    fn singleton_cardinality() {
        assert!(is_singleton(&parse("L.L.N").unwrap()));
        assert!(is_singleton(&parse("eps").unwrap()));
        assert!(!is_singleton(&parse("L|R").unwrap()));
        assert!(!is_singleton(&parse("L*").unwrap()));
        assert!(!is_singleton(&Regex::empty()));
        // alternation of identical branches collapses to a singleton
        assert!(is_singleton(&parse("L|L").unwrap()));
    }
}
