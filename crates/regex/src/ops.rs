//! Language-level decision procedures.
//!
//! These are the operations §4.1 of the paper relies on: the axiom
//! applicability check is a *subset* question (`S_p ⊆ RE1`), answered per
//! \[HU79\] as `M1 ∩ complement(M2) = ∅` over a common alphabet. Inclusion
//! over the union of the two expressions' alphabets coincides with inclusion
//! over any larger alphabet, so no "universe" alphabet is needed.

use crate::cache::DfaCache;
use crate::dfa::Dfa;
use crate::intern::RegexId;
use crate::limits::{LimitExceeded, Limits};
use crate::{Regex, Symbol};
use std::sync::Arc;

fn union_alphabet(a: &Regex, b: &Regex) -> Vec<Symbol> {
    let mut syms = a.symbols();
    syms.extend(b.symbols());
    syms.sort_unstable();
    syms.dedup();
    syms
}

/// `L(a) ⊆ L(b)`.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use apt_regex::{ops, parse};
/// assert!(ops::is_subset(&parse("L.L")?, &parse("L+")?));
/// assert!(!ops::is_subset(&parse("L+")?, &parse("L.L")?));
/// # Ok(())
/// # }
/// ```
pub fn is_subset(a: &Regex, b: &Regex) -> bool {
    match try_is_subset(a, b, &Limits::none()) {
        Ok(v) => v,
        Err(e) => unreachable!("unbounded subset test cannot trip a limit: {e}"),
    }
}

/// `L(a) ⊆ L(b)` under resource [`Limits`]: the DFA constructions stop at
/// the state budget / deadline / cancellation instead of blowing up.
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered. An `Err` means the
/// question was *not decided* — callers must treat it as "unknown", never
/// as `false`.
pub fn try_is_subset(a: &Regex, b: &Regex, limits: &Limits) -> Result<bool, LimitExceeded> {
    if a.is_empty_language() {
        return Ok(true);
    }
    let alpha = union_alphabet(a, b);
    let da = Dfa::try_build(a, &alpha, limits)?;
    let db = Dfa::try_build(b, &alpha, limits)?;
    da.try_subset_of(&db, limits)
}

/// `L(a) ⊆ L(b)` by the pre-arena kernel: build both DFAs, materialize the
/// complement and the full product, then ask emptiness.
///
/// Kept as an independent reference implementation for cross-validation
/// (the property suite pits [`try_is_subset`]'s early-exit walk against
/// it) and as the baseline the `subset_latency` benchmark measures.
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered (question undecided).
pub fn try_is_subset_materializing(
    a: &Regex,
    b: &Regex,
    limits: &Limits,
) -> Result<bool, LimitExceeded> {
    if a.is_empty_language() {
        return Ok(true);
    }
    let alpha = union_alphabet(a, b);
    let da = Dfa::try_build(a, &alpha, limits)?;
    let db = Dfa::try_build(b, &alpha, limits)?;
    Ok(da.try_intersect(&db.complement(), limits)?.is_empty())
}

/// `L(a) ⊆ L(b)` for interned expressions, under [`Limits`], reusing DFAs
/// from `cache` when one is provided.
///
/// This is the prover's hot path: the ids arrive pre-interned (axiom sides
/// are interned once per axiom set), structural equality is an integer
/// compare, and the DFA interner keys on `(RegexId, alphabet)` — no
/// `Display`-formatted string is ever built.
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered; the question is then
/// undecided and the caller must treat it as "unknown".
pub fn try_is_subset_ids(
    a: RegexId,
    b: RegexId,
    limits: &Limits,
    cache: Option<&DfaCache>,
) -> Result<bool, LimitExceeded> {
    if a.is_empty_language() || a == b {
        // Hash-consing makes structural equality O(1); equal expressions
        // denote equal languages.
        return Ok(true);
    }
    let ra = a.to_regex();
    let rb = b.to_regex();
    try_is_subset_interned(a, &ra, b, &rb, limits, cache)
}

/// As [`try_is_subset_ids`], for callers that already hold the trees next
/// to the ids (the prover keeps both), so no arena round-trip is needed:
/// `a_id`/`b_id` must be the interned forms of `a`/`b`.
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered (question undecided).
pub fn try_is_subset_interned(
    a_id: RegexId,
    a: &Regex,
    b_id: RegexId,
    b: &Regex,
    limits: &Limits,
    cache: Option<&DfaCache>,
) -> Result<bool, LimitExceeded> {
    if a_id.is_empty_language() || a_id == b_id {
        return Ok(true);
    }
    let alpha = union_alphabet(a, b);
    // With an interner available, walk the *minimized* automata: the lazy
    // product's pair-state frontier is bounded by the product of minimal
    // state counts, and the quotients are interned once per (id, alphabet).
    // Minimization preserves the language, so the verdict is identical.
    let (da, db) = match cache {
        Some(cache) => (
            cache.get_or_build_min_id(a_id, a, &alpha, limits)?,
            cache.get_or_build_min_id(b_id, b, &alpha, limits)?,
        ),
        None => (
            Arc::new(Dfa::try_build(a, &alpha, limits)?),
            Arc::new(Dfa::try_build(b, &alpha, limits)?),
        ),
    };
    da.try_subset_of(&db, limits)
}

/// `L(a) ⊆ L(b)` under [`Limits`], reusing interned DFAs from `cache` when
/// one is provided.
///
/// Semantically identical to [`try_is_subset`]: the cache only memoizes the
/// regex→DFA conversions (the dominant cost per §4.2 of the paper), never
/// the subset answer itself, and failed constructions are never interned.
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered; the question is then
/// undecided and the caller must treat it as "unknown".
pub fn try_is_subset_with(
    a: &Regex,
    b: &Regex,
    limits: &Limits,
    cache: Option<&DfaCache>,
) -> Result<bool, LimitExceeded> {
    let Some(cache) = cache else {
        return try_is_subset(a, b, limits);
    };
    if a.is_empty_language() {
        return Ok(true);
    }
    let alpha = union_alphabet(a, b);
    let da = cache.get_or_build(a, &alpha, limits)?;
    let db = cache.get_or_build(b, &alpha, limits)?;
    da.try_subset_of(&db, limits)
}

/// `L(a) ∩ L(b) = ∅`.
pub fn is_disjoint(a: &Regex, b: &Regex) -> bool {
    match try_is_disjoint(a, b, &Limits::none()) {
        Ok(v) => v,
        Err(e) => unreachable!("unbounded disjointness test cannot trip a limit: {e}"),
    }
}

/// `L(a) ∩ L(b) = ∅` under resource [`Limits`].
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered (the question is then
/// undecided).
pub fn try_is_disjoint(a: &Regex, b: &Regex, limits: &Limits) -> Result<bool, LimitExceeded> {
    let alpha = union_alphabet(a, b);
    let da = Dfa::try_build(a, &alpha, limits)?;
    let db = Dfa::try_build(b, &alpha, limits)?;
    Ok(!da.try_intersects(&db, limits)?)
}

/// `L(a) = L(b)`.
pub fn equivalent(a: &Regex, b: &Regex) -> bool {
    is_subset(a, b) && is_subset(b, a)
}

/// `L(a) = L(b)` under resource [`Limits`].
///
/// # Errors
///
/// Returns the first [`LimitExceeded`] encountered (the question is then
/// undecided).
pub fn try_equivalent(a: &Regex, b: &Regex, limits: &Limits) -> Result<bool, LimitExceeded> {
    Ok(try_is_subset(a, b, limits)? && try_is_subset(b, a, limits)?)
}

/// A shortest word in `L(a) ∩ L(b)`, if any — a concrete witness that two
/// path sets can denote the same vertex, used in diagnostics.
pub fn intersection_witness(a: &Regex, b: &Regex) -> Option<Vec<Symbol>> {
    let alpha = union_alphabet(a, b);
    Dfa::build(a, &alpha)
        .intersect(&Dfa::build(b, &alpha))
        .shortest_word()
}

/// Whether `L(a)` is empty.
pub fn is_empty(a: &Regex) -> bool {
    let alpha = a.symbols();
    Dfa::build(a, &alpha).is_empty()
}

/// Whether `L(a)` contains exactly one word.
///
/// This implements the cardinality-one check of `deptest` (§4.1): a definite
/// dependence needs `Path_p = Path_q` **and** `|Path_p| = 1`.
pub fn is_singleton(a: &Regex) -> bool {
    let alpha = a.symbols();
    let dfa = Dfa::build(a, &alpha);
    let Some(w) = dfa.shortest_word() else {
        return false;
    };
    // The language is a singleton iff removing the shortest word empties it.
    // Build "alphabet* minus {w}" as complement of the literal word DFA.
    let word_re = Regex::word(w);
    let alpha2 = union_alphabet(a, &word_re);
    let da = Dfa::build(a, &alpha2);
    let dw = Dfa::build(&word_re, &alpha2);
    da.intersect(&dw.complement()).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn subset_basic() {
        assert!(is_subset(&parse("L").unwrap(), &parse("L|R").unwrap()));
        assert!(!is_subset(&parse("L|R").unwrap(), &parse("L").unwrap()));
        assert!(is_subset(&parse("L.L.L").unwrap(), &parse("L*").unwrap()));
        assert!(is_subset(&Regex::empty(), &parse("L").unwrap()));
        assert!(is_subset(&parse("eps").unwrap(), &parse("L*").unwrap()));
        assert!(!is_subset(&parse("eps").unwrap(), &parse("L+").unwrap()));
    }

    #[test]
    fn subset_with_disjoint_alphabets() {
        assert!(!is_subset(&parse("L").unwrap(), &parse("R").unwrap()));
        assert!(is_subset(
            &parse("ncolE+").unwrap(),
            &parse("(ncolE|nrowE)+").unwrap()
        ));
    }

    #[test]
    fn disjointness() {
        assert!(is_disjoint(&parse("L+").unwrap(), &parse("R+").unwrap()));
        assert!(!is_disjoint(
            &parse("(L|R)+").unwrap(),
            &parse("L+").unwrap()
        ));
        // The paper's leaf-linked example: exact languages ARE disjoint...
        assert!(is_disjoint(
            &parse("L.L.N").unwrap(),
            &parse("L.R.N").unwrap()
        ));
        // ...but the conservative mappings are not (§2.4).
        assert!(!is_disjoint(
            &parse("(L|R)+.N+").unwrap(),
            &parse("(L|R)+.N+").unwrap()
        ));
    }

    #[test]
    fn equivalence() {
        assert!(equivalent(&parse("L.L*").unwrap(), &parse("L+").unwrap()));
        assert!(equivalent(
            &parse("(L|R)*").unwrap(),
            &parse("(R|L)*").unwrap()
        ));
        assert!(!equivalent(&parse("L*").unwrap(), &parse("L+").unwrap()));
    }

    #[test]
    fn witness_of_overlap() {
        let w = intersection_witness(&parse("L+.N").unwrap(), &parse("(L|N)+").unwrap());
        let w = w.expect("languages overlap");
        assert!(parse("L+.N").unwrap().matches(&w));
        assert!(parse("(L|N)+").unwrap().matches(&w));
        assert_eq!(
            intersection_witness(&parse("L").unwrap(), &parse("R").unwrap()),
            None
        );
    }

    #[test]
    fn emptiness() {
        assert!(is_empty(&Regex::empty()));
        assert!(!is_empty(&parse("eps").unwrap()));
        assert!(!is_empty(&parse("L*").unwrap()));
    }

    #[test]
    fn bounded_subset_degrades_instead_of_blowing_up() {
        // (a|b)*.a.(a|b)^n needs 2^n DFA states: the classic subset
        // construction bomb. A small state budget must stop it cleanly.
        let n = 18;
        let bomb = format!("(a|b)*.a{}", ".(a|b)".repeat(n));
        let a = parse(&bomb).unwrap();
        let b = parse("c").unwrap();
        let limits = Limits::none().with_max_states(500);
        assert_eq!(
            try_is_subset(&a, &b, &limits),
            Err(LimitExceeded::States { budget: 500 })
        );
        // With no limits the same query still decides (on a smaller bomb).
        let small = parse("(a|b)*.a.(a|b).(a|b)").unwrap();
        assert!(!is_subset(&small, &b));
        assert!(try_is_subset(&small, &b, &Limits::none().with_max_states(100_000)) == Ok(false));
    }

    #[test]
    fn bounded_ops_agree_with_unbounded_when_within_budget() {
        let roomy = Limits::none().with_max_states(10_000);
        let cases = [
            ("L.L", "L+"),
            ("L+", "L.L"),
            ("L|R", "L"),
            ("ncolE+", "(ncolE|nrowE)+"),
        ];
        for (x, y) in cases {
            let (rx, ry) = (parse(x).unwrap(), parse(y).unwrap());
            assert_eq!(try_is_subset(&rx, &ry, &roomy), Ok(is_subset(&rx, &ry)));
            assert_eq!(try_is_disjoint(&rx, &ry, &roomy), Ok(is_disjoint(&rx, &ry)));
            assert_eq!(try_equivalent(&rx, &ry, &roomy), Ok(equivalent(&rx, &ry)));
        }
    }

    #[test]
    fn cached_subset_agrees_with_uncached() {
        let cache = DfaCache::new();
        let cases = [
            ("L.L", "L+"),
            ("L+", "L.L"),
            ("L|R", "L"),
            ("ncolE+", "(ncolE|nrowE)+"),
            ("eps", "L*"),
        ];
        for (x, y) in cases {
            let (rx, ry) = (parse(x).unwrap(), parse(y).unwrap());
            let plain = is_subset(&rx, &ry);
            // Twice: once to populate, once to hit.
            for _ in 0..2 {
                assert_eq!(
                    try_is_subset_with(&rx, &ry, &Limits::none(), Some(&cache)),
                    Ok(plain)
                );
            }
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn lazy_and_materializing_kernels_agree() {
        let cases = [
            ("L.L", "L+"),
            ("L+", "L.L"),
            ("L|R", "L"),
            ("ncolE+", "(ncolE|nrowE)+"),
            ("eps", "L*"),
            ("eps", "L+"),
            ("(L|R)+.N+", "(L|R|N)+"),
        ];
        for (x, y) in cases {
            let (rx, ry) = (parse(x).unwrap(), parse(y).unwrap());
            assert_eq!(
                try_is_subset(&rx, &ry, &Limits::none()),
                try_is_subset_materializing(&rx, &ry, &Limits::none()),
                "{x} ⊆ {y}"
            );
        }
    }

    #[test]
    fn interned_subset_agrees_with_tree_subset() {
        let cache = DfaCache::new();
        let cases = [("L.L", "L+"), ("L+", "L.L"), ("empty", "L"), ("L*", "L*")];
        for (x, y) in cases {
            let (rx, ry) = (parse(x).unwrap(), parse(y).unwrap());
            let (ix, iy) = (RegexId::intern(&rx), RegexId::intern(&ry));
            let expect = Ok(is_subset(&rx, &ry));
            assert_eq!(try_is_subset_ids(ix, iy, &Limits::none(), None), expect);
            // Twice with the cache: populate, then hit.
            for _ in 0..2 {
                assert_eq!(
                    try_is_subset_ids(ix, iy, &Limits::none(), Some(&cache)),
                    expect,
                    "{x} ⊆ {y}"
                );
            }
        }
    }

    #[test]
    fn singleton_cardinality() {
        assert!(is_singleton(&parse("L.L.N").unwrap()));
        assert!(is_singleton(&parse("eps").unwrap()));
        assert!(!is_singleton(&parse("L|R").unwrap()));
        assert!(!is_singleton(&parse("L*").unwrap()));
        assert!(!is_singleton(&Regex::empty()));
        // alternation of identical branches collapses to a singleton
        assert!(is_singleton(&parse("L|L").unwrap()));
    }
}
