//! Deterministic finite automata over a fixed field alphabet.
//!
//! Built from [`crate::nfa::Nfa`] by subset construction. DFAs here are
//! *complete*: every state has a transition on every alphabet symbol (a dead
//! state is added when needed), which makes complementation a matter of
//! flipping accept bits — exactly the construction the paper cites (\[HU79\])
//! for the subset test.

use crate::limits::{LimitExceeded, Limits, Meter};
use crate::nfa::Nfa;
use crate::{Regex, Symbol};
use std::collections::HashMap;

/// A complete DFA over an explicit alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<Symbol>,
    /// `trans[state][alphabet_index]` — always present (complete DFA).
    trans: Vec<Vec<usize>>,
    accept: Vec<bool>,
    start: usize,
}

impl Dfa {
    /// Builds the DFA for `re` over `alphabet` (subset construction).
    ///
    /// The alphabet must cover every symbol of `re`; symbols of the alphabet
    /// not used by `re` simply lead to the dead state.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn build(re: &Regex, alphabet: &[Symbol]) -> Dfa {
        match Dfa::try_build(re, alphabet, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded subset construction cannot trip a limit: {e}"),
        }
    }

    /// Builds the DFA for `re` over `alphabet` under resource [`Limits`]:
    /// the subset construction stops as soon as it would exceed the state
    /// budget, pass the deadline, or observe cancellation.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn try_build(
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Dfa, LimitExceeded> {
        for s in re.symbols() {
            assert!(
                alphabet.contains(&s),
                "alphabet must cover regex symbols: missing {s}"
            );
        }
        let nfa = Nfa::build(re);
        let alphabet = alphabet.to_vec();
        let mut meter = Meter::new(limits)?;

        let mut states: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist: Vec<Vec<usize>> = Vec::new();

        let start_set = nfa.epsilon_closure(&[nfa.start()]);
        meter.add_state()?;
        states.insert(start_set.clone(), 0);
        trans.push(vec![usize::MAX; alphabet.len()]);
        accept.push(start_set.contains(&nfa.accept()));
        worklist.push(start_set);

        while let Some(set) = worklist.pop() {
            let id = states[&set];
            for (ai, &sym) in alphabet.iter().enumerate() {
                let moved = nfa.step(&set, sym);
                let next = nfa.epsilon_closure(&moved);
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = trans.len();
                        states.insert(next.clone(), i);
                        trans.push(vec![usize::MAX; alphabet.len()]);
                        accept.push(next.contains(&nfa.accept()));
                        worklist.push(next);
                        i
                    }
                };
                trans[id][ai] = next_id;
            }
        }
        debug_assert!(trans.iter().all(|row| row.iter().all(|&t| t != usize::MAX)));
        Ok(Dfa {
            alphabet,
            trans,
            accept,
            start: 0,
        })
    }

    /// The alphabet this DFA is complete over.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// Number of states (including any dead state).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Start state id.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accept[state]
    }

    /// The successor of `state` on `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not in the alphabet.
    pub fn next_state(&self, state: usize, sym: Symbol) -> usize {
        let ai = self
            .alphabet
            .iter()
            .position(|&a| a == sym)
            .expect("symbol not in DFA alphabet");
        self.trans[state][ai]
    }

    /// Runs the DFA on `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next_state(s, sym);
        }
        self.accept[s]
    }

    /// The complement DFA (same alphabet).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// The product DFA accepting the intersection of the two languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        match self.try_intersect(other, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded product construction cannot trip a limit: {e}"),
        }
    }

    /// The product DFA under resource [`Limits`] (see [`Dfa::try_build`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_intersect(&self, other: &Dfa, limits: &Limits) -> Result<Dfa, LimitExceeded> {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let mut meter = Meter::new(limits)?;
        let mut states: HashMap<(usize, usize), usize> = HashMap::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist = vec![(self.start, other.start)];
        meter.add_state()?;
        states.insert((self.start, other.start), 0);
        trans.push(vec![usize::MAX; self.alphabet.len()]);
        accept.push(self.accept[self.start] && other.accept[other.start]);

        while let Some((p, q)) = worklist.pop() {
            let id = states[&(p, q)];
            for ai in 0..self.alphabet.len() {
                let np = self.trans[p][ai];
                let nq = other.trans[q][ai];
                let next_id = match states.get(&(np, nq)) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = trans.len();
                        states.insert((np, nq), i);
                        trans.push(vec![usize::MAX; self.alphabet.len()]);
                        accept.push(self.accept[np] && other.accept[nq]);
                        worklist.push((np, nq));
                        i
                    }
                };
                trans[id][ai] = next_id;
            }
        }
        Ok(Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            accept,
            start: 0,
        })
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.trans.len()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accept[s] {
                return false;
            }
            for &t in &self.trans[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if the language is nonempty (BFS witness).
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        let mut prev: Vec<Option<(usize, Symbol)>> = vec![None; self.trans.len()];
        let mut seen = vec![false; self.trans.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.start);
        seen[self.start] = true;
        let mut found = None;
        if self.accept[self.start] {
            found = Some(self.start);
        }
        while found.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for (ai, &t) in self.trans[s].iter().enumerate() {
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((s, self.alphabet[ai]));
                    if self.accept[t] {
                        found = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = found?;
        let mut word = Vec::new();
        while let Some((p, sym)) = prev[cur] {
            word.push(sym);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Hopcroft minimization: an equivalent DFA with the minimum number of
    /// states (up to isomorphism).
    pub fn minimize(&self) -> Dfa {
        let n = self.trans.len();
        let k = self.alphabet.len();
        if n == 0 {
            return self.clone();
        }
        // Initial partition: accepting / non-accepting.
        let mut block_of: Vec<usize> = self.accept.iter().map(|&a| if a { 0 } else { 1 }).collect();
        let mut block_count = if self.accept.iter().all(|&a| a == self.accept[0]) {
            // Collapse to a single block when uniform.
            block_of.fill(0);
            1
        } else {
            2
        };

        // Iterative refinement (Moore's algorithm — simpler than full
        // Hopcroft and more than fast enough at our DFA sizes).
        loop {
            let mut sig_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut new_block_of = vec![0usize; n];
            let mut new_count = 0;
            for s in 0..n {
                let sig: Vec<usize> = (0..k).map(|ai| block_of[self.trans[s][ai]]).collect();
                let key = (block_of[s], sig);
                let b = *sig_to_block.entry(key).or_insert_with(|| {
                    let b = new_count;
                    new_count += 1;
                    b
                });
                new_block_of[s] = b;
            }
            if new_count == block_count {
                break;
            }
            block_of = new_block_of;
            block_count = new_count;
        }

        // Build the quotient automaton (restricted to reachable blocks).
        let mut trans = vec![vec![usize::MAX; k]; block_count];
        let mut accept = vec![false; block_count];
        for s in 0..n {
            let b = block_of[s];
            accept[b] = accept[b] || self.accept[s];
            for ai in 0..k {
                trans[b][ai] = block_of[self.trans[s][ai]];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            accept,
            start: block_of[self.start],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn dfa_agrees_with_matches_on_examples() {
        let alpha = syms(&["L", "R", "N"]);
        let cases = [
            "L.L.N",
            "(L|R)+.N+",
            "N*",
            "L.(R|N)*",
            "eps",
            "empty",
            "(L|R)*.N",
        ];
        let words: Vec<Vec<Symbol>> = {
            let mut w = vec![vec![]];
            for len in 1..=3usize {
                let mut next = Vec::new();
                for base in w.iter().filter(|v: &&Vec<Symbol>| v.len() == len - 1) {
                    for &s in &alpha {
                        let mut v = base.clone();
                        v.push(s);
                        next.push(v);
                    }
                }
                w.extend(next);
            }
            w
        };
        for case in cases {
            let re = crate::parse(case).unwrap();
            let dfa = Dfa::build(&re, &alpha);
            for word in &words {
                assert_eq!(
                    dfa.accepts(word),
                    re.matches(word),
                    "mismatch on regex {case} word {word:?}"
                );
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let alpha = syms(&["L", "R"]);
        let re = crate::parse("L+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let comp = dfa.complement();
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        assert!(dfa.accepts(&[l]));
        assert!(!comp.accepts(&[l]));
        assert!(!dfa.accepts(&[r]));
        assert!(comp.accepts(&[r]));
        assert!(comp.accepts(&[]));
    }

    #[test]
    fn intersect_and_emptiness() {
        let alpha = syms(&["L", "R"]);
        let a = Dfa::build(&crate::parse("L+").unwrap(), &alpha);
        let b = Dfa::build(&crate::parse("R+").unwrap(), &alpha);
        assert!(a.intersect(&b).is_empty());
        let c = Dfa::build(&crate::parse("(L|R)+").unwrap(), &alpha);
        assert!(!a.intersect(&c).is_empty());
    }

    #[test]
    fn shortest_word_witness() {
        let alpha = syms(&["L", "N"]);
        let re = crate::parse("L.L.N").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let w = dfa.shortest_word().unwrap();
        assert_eq!(w.len(), 3);
        assert!(dfa.accepts(&w));
        let empty = Dfa::build(&Regex::empty(), &alpha);
        assert_eq!(empty.shortest_word(), None);
    }

    #[test]
    fn minimize_preserves_language() {
        let alpha = syms(&["L", "R", "N"]);
        let re = crate::parse("(L|R)+.N+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let min = dfa.minimize();
        assert!(min.state_count() <= dfa.state_count());
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let n = Symbol::intern("N");
        for word in [
            vec![],
            vec![l, n],
            vec![r, n, n],
            vec![l, r, n],
            vec![n],
            vec![l, r],
            vec![l, n, r],
        ] {
            assert_eq!(dfa.accepts(&word), min.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn try_build_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let re = crate::parse("(a|b)*.a.(a|b).(a|b).(a|b).(a|b).(a|b).(a|b)").unwrap();
        // Unbounded: fine (2^7-ish states). Budget of 4: must trip.
        let full = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        assert!(full.state_count() > 4);
        assert_eq!(
            Dfa::try_build(&re, &alpha, &Limits::none().with_max_states(4)).err(),
            Some(LimitExceeded::States { budget: 4 })
        );
    }

    #[test]
    fn try_intersect_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let x = Dfa::build(&crate::parse("(a|b)*.a.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        let y = Dfa::build(&crate::parse("(a|b)*.b.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        assert!(x.try_intersect(&y, &Limits::none()).is_ok());
        assert_eq!(
            x.try_intersect(&y, &Limits::none().with_max_states(2))
                .err(),
            Some(LimitExceeded::States { budget: 2 })
        );
    }

    #[test]
    #[should_panic(expected = "alphabet must cover")]
    fn build_panics_on_uncovered_symbol() {
        let alpha = syms(&["L"]);
        let _ = Dfa::build(&crate::parse("L.R").unwrap(), &alpha);
    }
}
