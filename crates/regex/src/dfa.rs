//! Deterministic finite automata over a fixed field alphabet.
//!
//! Built from [`crate::nfa::Nfa`] by subset construction. DFAs here are
//! *complete*: every state has a transition on every alphabet symbol (a dead
//! state is added when needed), which makes complementation a matter of
//! flipping accept bits — exactly the construction the paper cites (\[HU79\])
//! for the subset test.
//!
//! # Memory layout
//!
//! The transition function is a single contiguous row-major table of dense
//! `u32` state ids: the successor of `state` on alphabet symbol index `ai`
//! lives at `trans[state * alphabet_len + ai]`. One heap allocation per
//! automaton (instead of one `Vec` per state), and every walk — product
//! exploration, emptiness, minimization — streams rows the prefetcher can
//! see coming. Pair-state visited sets in the lazy product walks are dense
//! bitmaps over `n1 × n2` when that fits, falling back to a hash set for
//! outsized products.

use crate::bitset::BitSet;
use crate::fx::{FxHashMap, FxHashSet};
use crate::limits::{LimitExceeded, Limits, Meter};
use crate::nfa::Nfa;
use crate::{Regex, Symbol};
use std::collections::HashSet;

/// Largest `n1 * n2` product for which the lazy walks allocate a dense
/// visited bitmap up front (in bits; 1 Mbit = 128 KiB). Bigger products —
/// only reachable under generous state budgets — use a hash set sized by
/// what the walk actually visits.
const DENSE_PAIR_BITS: usize = 1 << 20;

/// A complete DFA over an explicit alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<Symbol>,
    /// Flat row-major transition table: `trans[state * alphabet_len + ai]`
    /// — always present (complete DFA), dense `u32` state ids.
    trans: Box<[u32]>,
    accept: Vec<bool>,
    start: usize,
}

/// Visited-set for the lazy product walks: dense bitmap when `n1 * n2`
/// is small enough to zero cheaply, hash set otherwise. Insertion order
/// semantics are identical either way (test-and-set membership).
enum PairSeen {
    Dense { bits: Vec<u64>, n2: usize },
    Sparse(FxHashSet<(u32, u32)>),
}

impl PairSeen {
    fn new(n1: usize, n2: usize) -> PairSeen {
        match n1.checked_mul(n2) {
            Some(total) if total <= DENSE_PAIR_BITS => PairSeen::Dense {
                bits: vec![0u64; total.div_ceil(64)],
                n2,
            },
            _ => PairSeen::Sparse(FxHashSet::default()),
        }
    }

    /// Inserts `(p, q)`, returning `true` if it was not already present.
    #[inline]
    fn insert(&mut self, p: u32, q: u32) -> bool {
        match self {
            PairSeen::Dense { bits, n2 } => {
                let i = p as usize * *n2 + q as usize;
                let mask = 1u64 << (i % 64);
                let block = &mut bits[i / 64];
                let fresh = *block & mask == 0;
                *block |= mask;
                fresh
            }
            PairSeen::Sparse(set) => set.insert((p, q)),
        }
    }
}

impl Dfa {
    /// Builds the DFA for `re` over `alphabet` (subset construction).
    ///
    /// The alphabet must cover every symbol of `re`; symbols of the alphabet
    /// not used by `re` simply lead to the dead state.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn build(re: &Regex, alphabet: &[Symbol]) -> Dfa {
        match Dfa::try_build(re, alphabet, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded subset construction cannot trip a limit: {e}"),
        }
    }

    /// Builds the DFA for `re` over `alphabet` under resource [`Limits`]:
    /// the subset construction stops as soon as it would exceed the state
    /// budget, pass the deadline, or observe cancellation.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn try_build(
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Dfa, LimitExceeded> {
        let covered: HashSet<Symbol> = alphabet.iter().copied().collect();
        for s in re.symbols() {
            assert!(
                covered.contains(&s),
                "alphabet must cover regex symbols: missing {s}"
            );
        }
        let nfa = Nfa::build(re);
        let alphabet = alphabet.to_vec();
        let k = alphabet.len();
        let mut meter = Meter::new(limits)?;

        // Bitset-backed subset construction: DFA states are ε-closed NFA
        // state sets stored as dense bit vectors, hashed word-wise.
        let n = nfa.state_count();
        let closures = nfa.epsilon_closures();
        let mut states: FxHashMap<BitSet, u32> = FxHashMap::default();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist: Vec<(u32, BitSet)> = Vec::new();

        let start_set = closures[nfa.start()].clone();
        meter.add_state()?;
        states.insert(start_set.clone(), 0);
        trans.resize(k, u32::MAX);
        accept.push(start_set.contains(nfa.accept()));
        worklist.push((0, start_set));

        while let Some((id, set)) = worklist.pop() {
            let row = id as usize * k;
            for (ai, &sym) in alphabet.iter().enumerate() {
                let mut next = BitSet::new(n);
                nfa.step_closure_into(&set, sym, &closures, &mut next);
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = u32::try_from(accept.len()).expect("DFA state id overflow");
                        states.insert(next.clone(), i);
                        trans.resize(trans.len() + k, u32::MAX);
                        accept.push(next.contains(nfa.accept()));
                        worklist.push((i, next));
                        i
                    }
                };
                trans[row + ai] = next_id;
            }
        }
        debug_assert!(trans.iter().all(|&t| t != u32::MAX));
        Ok(Dfa {
            alphabet,
            trans: trans.into_boxed_slice(),
            accept,
            start: 0,
        })
    }

    /// The alphabet this DFA is complete over.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// Number of states (including any dead state).
    pub fn state_count(&self) -> usize {
        self.accept.len()
    }

    /// Start state id.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accept[state]
    }

    /// The flat transition row of `state`: successor ids in alphabet order.
    #[inline]
    fn row(&self, state: usize) -> &[u32] {
        let k = self.alphabet.len();
        &self.trans[state * k..state * k + k]
    }

    /// The successor of `state` on `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not in the alphabet.
    pub fn next_state(&self, state: usize, sym: Symbol) -> usize {
        let ai = self
            .alphabet
            .iter()
            .position(|&a| a == sym)
            .expect("symbol not in DFA alphabet");
        self.trans[state * self.alphabet.len() + ai] as usize
    }

    /// Runs the DFA on `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next_state(s, sym);
        }
        self.accept[s]
    }

    /// The complement DFA (same alphabet).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// The product DFA accepting the intersection of the two languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        match self.try_intersect(other, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded product construction cannot trip a limit: {e}"),
        }
    }

    /// The product DFA under resource [`Limits`] (see [`Dfa::try_build`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_intersect(&self, other: &Dfa, limits: &Limits) -> Result<Dfa, LimitExceeded> {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut meter = Meter::new(limits)?;
        let mut states: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let start = (self.start as u32, other.start as u32);
        let mut worklist = vec![start];
        meter.add_state()?;
        states.insert(start, 0);
        trans.resize(k, u32::MAX);
        accept.push(self.accept[self.start] && other.accept[other.start]);

        while let Some((p, q)) = worklist.pop() {
            let id = states[&(p, q)];
            let prow = self.row(p as usize);
            let qrow = other.row(q as usize);
            let row = id as usize * k;
            for ai in 0..k {
                let np = prow[ai];
                let nq = qrow[ai];
                let next_id = match states.get(&(np, nq)) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = u32::try_from(accept.len()).expect("DFA state id overflow");
                        states.insert((np, nq), i);
                        trans.resize(trans.len() + k, u32::MAX);
                        accept.push(self.accept[np as usize] && other.accept[nq as usize]);
                        worklist.push((np, nq));
                        i
                    }
                };
                trans[row + ai] = next_id;
            }
        }
        Ok(Dfa {
            alphabet: self.alphabet.clone(),
            trans: trans.into_boxed_slice(),
            accept,
            start: 0,
        })
    }

    /// Searches the product automaton on the fly for a reachable pair
    /// `(p, q)` satisfying `want(accept_a(p), accept_b(q))`, without
    /// materializing any transition table. Discovery order and metering
    /// match [`Dfa::try_intersect`] pair-for-pair (the same depth-first
    /// worklist, pairs metered as discovered), so a limit that trips here
    /// would also have tripped the materializing construction.
    fn try_find_product_pair<F: Fn(bool, bool) -> bool>(
        &self,
        other: &Dfa,
        limits: &Limits,
        want: F,
    ) -> Result<bool, LimitExceeded> {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut meter = Meter::new(limits)?;
        let mut seen = PairSeen::new(self.state_count(), other.state_count());
        let start = (self.start as u32, other.start as u32);
        meter.add_state()?;
        seen.insert(start.0, start.1);
        if want(self.accept[self.start], other.accept[other.start]) {
            return Ok(true);
        }
        let mut stack = vec![start];
        while let Some((p, q)) = stack.pop() {
            let prow = self.row(p as usize);
            let qrow = other.row(q as usize);
            for ai in 0..k {
                let np = prow[ai];
                let nq = qrow[ai];
                if seen.insert(np, nq) {
                    meter.add_state()?;
                    if want(self.accept[np as usize], other.accept[nq as usize]) {
                        return Ok(true);
                    }
                    stack.push((np, nq));
                }
            }
        }
        Ok(false)
    }

    /// `L(self) ⊆ L(other)`, decided by lazily walking
    /// `self × other` for a pair that accepts in `self` but not in
    /// `other` — a counterexample word. No complement or product DFA is
    /// built; the walk stops at the first bad pair.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] hit while exploring pair-states
    /// (each explored pair is metered exactly like a materialized product
    /// state). The question is then undecided.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_subset_of(&self, other: &Dfa, limits: &Limits) -> Result<bool, LimitExceeded> {
        Ok(!self.try_find_product_pair(other, limits, |pa, qa| pa && !qa)?)
    }

    /// `L(self) ∩ L(other) ≠ ∅`, decided by lazily walking the product for
    /// a pair accepting on both sides.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] hit while exploring pair-states.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_intersects(&self, other: &Dfa, limits: &Limits) -> Result<bool, LimitExceeded> {
        self.try_find_product_pair(other, limits, |pa, qa| pa && qa)
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let n = self.state_count();
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accept[s] {
                return false;
            }
            for &t in self.row(s) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t as usize);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if the language is nonempty (BFS witness).
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        let n = self.state_count();
        let mut prev: Vec<Option<(usize, Symbol)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.start);
        seen[self.start] = true;
        let mut found = None;
        if self.accept[self.start] {
            found = Some(self.start);
        }
        while found.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for (ai, &t) in self.row(s).iter().enumerate() {
                let t = t as usize;
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((s, self.alphabet[ai]));
                    if self.accept[t] {
                        found = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = found?;
        let mut word = Vec::new();
        while let Some((p, sym)) = prev[cur] {
            word.push(sym);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Minimization: an equivalent DFA with the minimum number of states
    /// (up to isomorphism), by Moore-style iterative partition refinement.
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        let k = self.alphabet.len();
        if n == 0 {
            return self.clone();
        }
        // Initial partition: accepting / non-accepting.
        let mut block_of: Vec<u32> = self.accept.iter().map(|&a| u32::from(!a)).collect();
        let mut block_count: u32 = if self.accept.iter().all(|&a| a == self.accept[0]) {
            // Collapse to a single block when uniform.
            block_of.fill(0);
            1
        } else {
            2
        };

        // Iterative refinement (Moore's algorithm — simpler than full
        // Hopcroft and more than fast enough at our DFA sizes). One
        // scratch signature buffer keyed straight off the flat table is
        // reused across all states and passes; a fresh signature is
        // allocated only when a state founds a new block.
        let mut sig_to_block: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
        let mut scratch: Vec<u32> = Vec::with_capacity(k + 1);
        let mut new_block_of: Vec<u32> = vec![0; n];
        loop {
            sig_to_block.clear();
            let mut new_count: u32 = 0;
            for s in 0..n {
                scratch.clear();
                scratch.push(block_of[s]);
                scratch.extend(self.row(s).iter().map(|&t| block_of[t as usize]));
                let b = match sig_to_block.get(scratch.as_slice()) {
                    Some(&b) => b,
                    None => {
                        let b = new_count;
                        new_count += 1;
                        sig_to_block.insert(scratch.as_slice().into(), b);
                        b
                    }
                };
                new_block_of[s] = b;
            }
            if new_count == block_count {
                break;
            }
            std::mem::swap(&mut block_of, &mut new_block_of);
            block_count = new_count;
        }

        // Build the quotient automaton.
        let bc = block_count as usize;
        let mut trans = vec![u32::MAX; bc * k];
        let mut accept = vec![false; bc];
        for s in 0..n {
            let b = block_of[s] as usize;
            accept[b] = accept[b] || self.accept[s];
            let row = self.row(s);
            for ai in 0..k {
                trans[b * k + ai] = block_of[row[ai] as usize];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans: trans.into_boxed_slice(),
            accept,
            start: block_of[self.start] as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn dfa_agrees_with_matches_on_examples() {
        let alpha = syms(&["L", "R", "N"]);
        let cases = [
            "L.L.N",
            "(L|R)+.N+",
            "N*",
            "L.(R|N)*",
            "eps",
            "empty",
            "(L|R)*.N",
        ];
        let words: Vec<Vec<Symbol>> = {
            let mut w = vec![vec![]];
            for len in 1..=3usize {
                let mut next = Vec::new();
                for base in w.iter().filter(|v: &&Vec<Symbol>| v.len() == len - 1) {
                    for &s in &alpha {
                        let mut v = base.clone();
                        v.push(s);
                        next.push(v);
                    }
                }
                w.extend(next);
            }
            w
        };
        for case in cases {
            let re = crate::parse(case).unwrap();
            let dfa = Dfa::build(&re, &alpha);
            for word in &words {
                assert_eq!(
                    dfa.accepts(word),
                    re.matches(word),
                    "mismatch on regex {case} word {word:?}"
                );
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let alpha = syms(&["L", "R"]);
        let re = crate::parse("L+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let comp = dfa.complement();
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        assert!(dfa.accepts(&[l]));
        assert!(!comp.accepts(&[l]));
        assert!(!dfa.accepts(&[r]));
        assert!(comp.accepts(&[r]));
        assert!(comp.accepts(&[]));
    }

    #[test]
    fn intersect_and_emptiness() {
        let alpha = syms(&["L", "R"]);
        let a = Dfa::build(&crate::parse("L+").unwrap(), &alpha);
        let b = Dfa::build(&crate::parse("R+").unwrap(), &alpha);
        assert!(a.intersect(&b).is_empty());
        let c = Dfa::build(&crate::parse("(L|R)+").unwrap(), &alpha);
        assert!(!a.intersect(&c).is_empty());
    }

    #[test]
    fn shortest_word_witness() {
        let alpha = syms(&["L", "N"]);
        let re = crate::parse("L.L.N").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let w = dfa.shortest_word().unwrap();
        assert_eq!(w.len(), 3);
        assert!(dfa.accepts(&w));
        let empty = Dfa::build(&Regex::empty(), &alpha);
        assert_eq!(empty.shortest_word(), None);
    }

    #[test]
    fn minimize_preserves_language() {
        let alpha = syms(&["L", "R", "N"]);
        let re = crate::parse("(L|R)+.N+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let min = dfa.minimize();
        assert!(min.state_count() <= dfa.state_count());
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let n = Symbol::intern("N");
        for word in [
            vec![],
            vec![l, n],
            vec![r, n, n],
            vec![l, r, n],
            vec![n],
            vec![l, r],
            vec![l, n, r],
        ] {
            assert_eq!(dfa.accepts(&word), min.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn try_build_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let re = crate::parse("(a|b)*.a.(a|b).(a|b).(a|b).(a|b).(a|b).(a|b)").unwrap();
        // Unbounded: fine (2^7-ish states). Budget of 4: must trip.
        let full = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        assert!(full.state_count() > 4);
        assert_eq!(
            Dfa::try_build(&re, &alpha, &Limits::none().with_max_states(4)).err(),
            Some(LimitExceeded::States { budget: 4 })
        );
    }

    #[test]
    fn try_intersect_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let x = Dfa::build(&crate::parse("(a|b)*.a.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        let y = Dfa::build(&crate::parse("(a|b)*.b.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        assert!(x.try_intersect(&y, &Limits::none()).is_ok());
        assert_eq!(
            x.try_intersect(&y, &Limits::none().with_max_states(2))
                .err(),
            Some(LimitExceeded::States { budget: 2 })
        );
    }

    #[test]
    fn lazy_subset_walk_agrees_with_materializing_check() {
        let alpha = syms(&["L", "R", "N"]);
        let cases = [
            ("L.L", "L*", true),
            ("L*", "L.L", false),
            ("(L|R)+.N", "(L|R|N)+", true),
            ("N*", "N+", false),
            ("empty", "L", true),
        ];
        for (x, y, expect) in cases {
            let a = Dfa::build(&crate::parse(x).unwrap(), &alpha);
            let b = Dfa::build(&crate::parse(y).unwrap(), &alpha);
            assert_eq!(
                a.try_subset_of(&b, &Limits::none()),
                Ok(expect),
                "{x} ⊆ {y}"
            );
            // Reference: the materializing complement/product/emptiness.
            assert_eq!(
                a.intersect(&b.complement()).is_empty(),
                expect,
                "materializing {x} ⊆ {y}"
            );
        }
    }

    #[test]
    fn lazy_intersects_agrees_with_product_emptiness() {
        let alpha = syms(&["L", "R"]);
        let a = Dfa::build(&crate::parse("L+").unwrap(), &alpha);
        let b = Dfa::build(&crate::parse("R+").unwrap(), &alpha);
        let c = Dfa::build(&crate::parse("(L|R)+").unwrap(), &alpha);
        assert_eq!(a.try_intersects(&b, &Limits::none()), Ok(false));
        assert_eq!(a.try_intersects(&c, &Limits::none()), Ok(true));
    }

    #[test]
    fn lazy_walk_meters_pair_states() {
        let alpha = syms(&["a", "b"]);
        let x = Dfa::build(&crate::parse("(a|b)*.a.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        let y = Dfa::build(&crate::parse("(a|b)*.b.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        // Subset here is false and the counterexample pair is found well
        // within even a small budget — early exit decides what the
        // materializing product could not afford.
        let tight = Limits::none().with_max_states(2);
        assert!(x.try_intersect(&y, &tight).is_err());
        // With both sides forced to stay disjoint in accepts, the walk
        // must visit every reachable pair and trip the same budget.
        let never = Dfa::build(&Regex::empty(), &alpha);
        assert_eq!(
            x.try_intersects(&never, &tight).err(),
            Some(LimitExceeded::States { budget: 2 })
        );
    }

    #[test]
    fn flat_table_rows_are_contiguous_and_complete() {
        let alpha = syms(&["L", "R", "N"]);
        let dfa = Dfa::build(&crate::parse("(L|R)+.N").unwrap(), &alpha);
        let n = dfa.state_count();
        let k = dfa.alphabet().len();
        assert_eq!(dfa.trans.len(), n * k, "one row of k successors per state");
        for s in 0..n {
            for (ai, &sym) in alpha.iter().enumerate() {
                assert_eq!(
                    dfa.trans[s * k + ai] as usize,
                    dfa.next_state(s, sym),
                    "row-major indexing must match next_state"
                );
                assert!((dfa.trans[s * k + ai] as usize) < n, "complete DFA");
            }
        }
    }

    #[test]
    #[should_panic(expected = "alphabet must cover")]
    fn build_panics_on_uncovered_symbol() {
        let alpha = syms(&["L"]);
        let _ = Dfa::build(&crate::parse("L.R").unwrap(), &alpha);
    }
}
