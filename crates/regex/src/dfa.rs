//! Deterministic finite automata over a fixed field alphabet.
//!
//! Built from [`crate::nfa::Nfa`] by subset construction. DFAs here are
//! *complete*: every state has a transition on every alphabet symbol (a dead
//! state is added when needed), which makes complementation a matter of
//! flipping accept bits — exactly the construction the paper cites (\[HU79\])
//! for the subset test.

use crate::bitset::BitSet;
use crate::limits::{LimitExceeded, Limits, Meter};
use crate::nfa::Nfa;
use crate::{Regex, Symbol};
use std::collections::{HashMap, HashSet};

/// A complete DFA over an explicit alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Vec<Symbol>,
    /// `trans[state][alphabet_index]` — always present (complete DFA).
    trans: Vec<Vec<usize>>,
    accept: Vec<bool>,
    start: usize,
}

impl Dfa {
    /// Builds the DFA for `re` over `alphabet` (subset construction).
    ///
    /// The alphabet must cover every symbol of `re`; symbols of the alphabet
    /// not used by `re` simply lead to the dead state.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn build(re: &Regex, alphabet: &[Symbol]) -> Dfa {
        match Dfa::try_build(re, alphabet, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded subset construction cannot trip a limit: {e}"),
        }
    }

    /// Builds the DFA for `re` over `alphabet` under resource [`Limits`]:
    /// the subset construction stops as soon as it would exceed the state
    /// budget, pass the deadline, or observe cancellation.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if `re` mentions a symbol missing from `alphabet`.
    pub fn try_build(
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Dfa, LimitExceeded> {
        let covered: HashSet<Symbol> = alphabet.iter().copied().collect();
        for s in re.symbols() {
            assert!(
                covered.contains(&s),
                "alphabet must cover regex symbols: missing {s}"
            );
        }
        let nfa = Nfa::build(re);
        let alphabet = alphabet.to_vec();
        let mut meter = Meter::new(limits)?;

        // Bitset-backed subset construction: DFA states are ε-closed NFA
        // state sets stored as dense bit vectors, hashed word-wise.
        let n = nfa.state_count();
        let closures = nfa.epsilon_closures();
        let mut states: HashMap<BitSet, usize> = HashMap::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist: Vec<(usize, BitSet)> = Vec::new();

        let start_set = closures[nfa.start()].clone();
        meter.add_state()?;
        states.insert(start_set.clone(), 0);
        trans.push(vec![usize::MAX; alphabet.len()]);
        accept.push(start_set.contains(nfa.accept()));
        worklist.push((0, start_set));

        while let Some((id, set)) = worklist.pop() {
            for (ai, &sym) in alphabet.iter().enumerate() {
                let mut next = BitSet::new(n);
                nfa.step_closure_into(&set, sym, &closures, &mut next);
                let next_id = match states.get(&next) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = trans.len();
                        states.insert(next.clone(), i);
                        trans.push(vec![usize::MAX; alphabet.len()]);
                        accept.push(next.contains(nfa.accept()));
                        worklist.push((i, next));
                        i
                    }
                };
                trans[id][ai] = next_id;
            }
        }
        debug_assert!(trans.iter().all(|row| row.iter().all(|&t| t != usize::MAX)));
        Ok(Dfa {
            alphabet,
            trans,
            accept,
            start: 0,
        })
    }

    /// The alphabet this DFA is complete over.
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    /// Number of states (including any dead state).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Start state id.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accept[state]
    }

    /// The successor of `state` on `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not in the alphabet.
    pub fn next_state(&self, state: usize, sym: Symbol) -> usize {
        let ai = self
            .alphabet
            .iter()
            .position(|&a| a == sym)
            .expect("symbol not in DFA alphabet");
        self.trans[state][ai]
    }

    /// Runs the DFA on `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut s = self.start;
        for &sym in word {
            s = self.next_state(s, sym);
        }
        self.accept[s]
    }

    /// The complement DFA (same alphabet).
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accept {
            *a = !*a;
        }
        out
    }

    /// The product DFA accepting the intersection of the two languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        match self.try_intersect(other, &Limits::none()) {
            Ok(dfa) => dfa,
            Err(e) => unreachable!("unbounded product construction cannot trip a limit: {e}"),
        }
    }

    /// The product DFA under resource [`Limits`] (see [`Dfa::try_build`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] encountered.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_intersect(&self, other: &Dfa, limits: &Limits) -> Result<Dfa, LimitExceeded> {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let mut meter = Meter::new(limits)?;
        let mut states: HashMap<(usize, usize), usize> = HashMap::new();
        let mut trans: Vec<Vec<usize>> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let mut worklist = vec![(self.start, other.start)];
        meter.add_state()?;
        states.insert((self.start, other.start), 0);
        trans.push(vec![usize::MAX; self.alphabet.len()]);
        accept.push(self.accept[self.start] && other.accept[other.start]);

        while let Some((p, q)) = worklist.pop() {
            let id = states[&(p, q)];
            for ai in 0..self.alphabet.len() {
                let np = self.trans[p][ai];
                let nq = other.trans[q][ai];
                let next_id = match states.get(&(np, nq)) {
                    Some(&i) => i,
                    None => {
                        meter.add_state()?;
                        let i = trans.len();
                        states.insert((np, nq), i);
                        trans.push(vec![usize::MAX; self.alphabet.len()]);
                        accept.push(self.accept[np] && other.accept[nq]);
                        worklist.push((np, nq));
                        i
                    }
                };
                trans[id][ai] = next_id;
            }
        }
        Ok(Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            accept,
            start: 0,
        })
    }

    /// Searches the product automaton on the fly for a reachable pair
    /// `(p, q)` satisfying `want(accept_a(p), accept_b(q))`, without
    /// materializing any transition table. Discovery order and metering
    /// match [`Dfa::try_intersect`] pair-for-pair (the same depth-first
    /// worklist, pairs metered as discovered), so a limit that trips here
    /// would also have tripped the materializing construction.
    fn try_find_product_pair<F: Fn(bool, bool) -> bool>(
        &self,
        other: &Dfa,
        limits: &Limits,
        want: F,
    ) -> Result<bool, LimitExceeded> {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let mut meter = Meter::new(limits)?;
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        let start = (self.start, other.start);
        meter.add_state()?;
        seen.insert(start);
        if want(self.accept[start.0], other.accept[start.1]) {
            return Ok(true);
        }
        let mut stack = vec![start];
        while let Some((p, q)) = stack.pop() {
            for ai in 0..self.alphabet.len() {
                let np = self.trans[p][ai];
                let nq = other.trans[q][ai];
                if seen.insert((np, nq)) {
                    meter.add_state()?;
                    if want(self.accept[np], other.accept[nq]) {
                        return Ok(true);
                    }
                    stack.push((np, nq));
                }
            }
        }
        Ok(false)
    }

    /// `L(self) ⊆ L(other)`, decided by lazily walking
    /// `self × other` for a pair that accepts in `self` but not in
    /// `other` — a counterexample word. No complement or product DFA is
    /// built; the walk stops at the first bad pair.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] hit while exploring pair-states
    /// (each explored pair is metered exactly like a materialized product
    /// state). The question is then undecided.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_subset_of(&self, other: &Dfa, limits: &Limits) -> Result<bool, LimitExceeded> {
        Ok(!self.try_find_product_pair(other, limits, |pa, qa| pa && !qa)?)
    }

    /// `L(self) ∩ L(other) ≠ ∅`, decided by lazily walking the product for
    /// a pair accepting on both sides.
    ///
    /// # Errors
    ///
    /// Returns the first [`LimitExceeded`] hit while exploring pair-states.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn try_intersects(&self, other: &Dfa, limits: &Limits) -> Result<bool, LimitExceeded> {
        self.try_find_product_pair(other, limits, |pa, qa| pa && qa)
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.trans.len()];
        let mut stack = vec![self.start];
        seen[self.start] = true;
        while let Some(s) = stack.pop() {
            if self.accept[s] {
                return false;
            }
            for &t in &self.trans[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if the language is nonempty (BFS witness).
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        let mut prev: Vec<Option<(usize, Symbol)>> = vec![None; self.trans.len()];
        let mut seen = vec![false; self.trans.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.start);
        seen[self.start] = true;
        let mut found = None;
        if self.accept[self.start] {
            found = Some(self.start);
        }
        while found.is_none() {
            let Some(s) = queue.pop_front() else { break };
            for (ai, &t) in self.trans[s].iter().enumerate() {
                if !seen[t] {
                    seen[t] = true;
                    prev[t] = Some((s, self.alphabet[ai]));
                    if self.accept[t] {
                        found = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = found?;
        let mut word = Vec::new();
        while let Some((p, sym)) = prev[cur] {
            word.push(sym);
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Hopcroft minimization: an equivalent DFA with the minimum number of
    /// states (up to isomorphism).
    pub fn minimize(&self) -> Dfa {
        let n = self.trans.len();
        let k = self.alphabet.len();
        if n == 0 {
            return self.clone();
        }
        // Initial partition: accepting / non-accepting.
        let mut block_of: Vec<usize> = self.accept.iter().map(|&a| if a { 0 } else { 1 }).collect();
        let mut block_count = if self.accept.iter().all(|&a| a == self.accept[0]) {
            // Collapse to a single block when uniform.
            block_of.fill(0);
            1
        } else {
            2
        };

        // Iterative refinement (Moore's algorithm — simpler than full
        // Hopcroft and more than fast enough at our DFA sizes).
        loop {
            let mut sig_to_block: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut new_block_of = vec![0usize; n];
            let mut new_count = 0;
            for s in 0..n {
                let sig: Vec<usize> = (0..k).map(|ai| block_of[self.trans[s][ai]]).collect();
                let key = (block_of[s], sig);
                let b = *sig_to_block.entry(key).or_insert_with(|| {
                    let b = new_count;
                    new_count += 1;
                    b
                });
                new_block_of[s] = b;
            }
            if new_count == block_count {
                break;
            }
            block_of = new_block_of;
            block_count = new_count;
        }

        // Build the quotient automaton (restricted to reachable blocks).
        let mut trans = vec![vec![usize::MAX; k]; block_count];
        let mut accept = vec![false; block_count];
        for s in 0..n {
            let b = block_of[s];
            accept[b] = accept[b] || self.accept[s];
            for ai in 0..k {
                trans[b][ai] = block_of[self.trans[s][ai]];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            trans,
            accept,
            start: block_of[self.start],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| Symbol::intern(n)).collect()
    }

    #[test]
    fn dfa_agrees_with_matches_on_examples() {
        let alpha = syms(&["L", "R", "N"]);
        let cases = [
            "L.L.N",
            "(L|R)+.N+",
            "N*",
            "L.(R|N)*",
            "eps",
            "empty",
            "(L|R)*.N",
        ];
        let words: Vec<Vec<Symbol>> = {
            let mut w = vec![vec![]];
            for len in 1..=3usize {
                let mut next = Vec::new();
                for base in w.iter().filter(|v: &&Vec<Symbol>| v.len() == len - 1) {
                    for &s in &alpha {
                        let mut v = base.clone();
                        v.push(s);
                        next.push(v);
                    }
                }
                w.extend(next);
            }
            w
        };
        for case in cases {
            let re = crate::parse(case).unwrap();
            let dfa = Dfa::build(&re, &alpha);
            for word in &words {
                assert_eq!(
                    dfa.accepts(word),
                    re.matches(word),
                    "mismatch on regex {case} word {word:?}"
                );
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let alpha = syms(&["L", "R"]);
        let re = crate::parse("L+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let comp = dfa.complement();
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        assert!(dfa.accepts(&[l]));
        assert!(!comp.accepts(&[l]));
        assert!(!dfa.accepts(&[r]));
        assert!(comp.accepts(&[r]));
        assert!(comp.accepts(&[]));
    }

    #[test]
    fn intersect_and_emptiness() {
        let alpha = syms(&["L", "R"]);
        let a = Dfa::build(&crate::parse("L+").unwrap(), &alpha);
        let b = Dfa::build(&crate::parse("R+").unwrap(), &alpha);
        assert!(a.intersect(&b).is_empty());
        let c = Dfa::build(&crate::parse("(L|R)+").unwrap(), &alpha);
        assert!(!a.intersect(&c).is_empty());
    }

    #[test]
    fn shortest_word_witness() {
        let alpha = syms(&["L", "N"]);
        let re = crate::parse("L.L.N").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let w = dfa.shortest_word().unwrap();
        assert_eq!(w.len(), 3);
        assert!(dfa.accepts(&w));
        let empty = Dfa::build(&Regex::empty(), &alpha);
        assert_eq!(empty.shortest_word(), None);
    }

    #[test]
    fn minimize_preserves_language() {
        let alpha = syms(&["L", "R", "N"]);
        let re = crate::parse("(L|R)+.N+").unwrap();
        let dfa = Dfa::build(&re, &alpha);
        let min = dfa.minimize();
        assert!(min.state_count() <= dfa.state_count());
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let n = Symbol::intern("N");
        for word in [
            vec![],
            vec![l, n],
            vec![r, n, n],
            vec![l, r, n],
            vec![n],
            vec![l, r],
            vec![l, n, r],
        ] {
            assert_eq!(dfa.accepts(&word), min.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn try_build_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let re = crate::parse("(a|b)*.a.(a|b).(a|b).(a|b).(a|b).(a|b).(a|b)").unwrap();
        // Unbounded: fine (2^7-ish states). Budget of 4: must trip.
        let full = Dfa::try_build(&re, &alpha, &Limits::none()).unwrap();
        assert!(full.state_count() > 4);
        assert_eq!(
            Dfa::try_build(&re, &alpha, &Limits::none().with_max_states(4)).err(),
            Some(LimitExceeded::States { budget: 4 })
        );
    }

    #[test]
    fn try_intersect_respects_state_budget() {
        let alpha = syms(&["a", "b"]);
        let x = Dfa::build(&crate::parse("(a|b)*.a.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        let y = Dfa::build(&crate::parse("(a|b)*.b.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        assert!(x.try_intersect(&y, &Limits::none()).is_ok());
        assert_eq!(
            x.try_intersect(&y, &Limits::none().with_max_states(2))
                .err(),
            Some(LimitExceeded::States { budget: 2 })
        );
    }

    #[test]
    fn lazy_subset_walk_agrees_with_materializing_check() {
        let alpha = syms(&["L", "R", "N"]);
        let cases = [
            ("L.L", "L*", true),
            ("L*", "L.L", false),
            ("(L|R)+.N", "(L|R|N)+", true),
            ("N*", "N+", false),
            ("empty", "L", true),
        ];
        for (x, y, expect) in cases {
            let a = Dfa::build(&crate::parse(x).unwrap(), &alpha);
            let b = Dfa::build(&crate::parse(y).unwrap(), &alpha);
            assert_eq!(
                a.try_subset_of(&b, &Limits::none()),
                Ok(expect),
                "{x} ⊆ {y}"
            );
            // Reference: the materializing complement/product/emptiness.
            assert_eq!(
                a.intersect(&b.complement()).is_empty(),
                expect,
                "materializing {x} ⊆ {y}"
            );
        }
    }

    #[test]
    fn lazy_intersects_agrees_with_product_emptiness() {
        let alpha = syms(&["L", "R"]);
        let a = Dfa::build(&crate::parse("L+").unwrap(), &alpha);
        let b = Dfa::build(&crate::parse("R+").unwrap(), &alpha);
        let c = Dfa::build(&crate::parse("(L|R)+").unwrap(), &alpha);
        assert_eq!(a.try_intersects(&b, &Limits::none()), Ok(false));
        assert_eq!(a.try_intersects(&c, &Limits::none()), Ok(true));
    }

    #[test]
    fn lazy_walk_meters_pair_states() {
        let alpha = syms(&["a", "b"]);
        let x = Dfa::build(&crate::parse("(a|b)*.a.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        let y = Dfa::build(&crate::parse("(a|b)*.b.(a|b).(a|b).(a|b)").unwrap(), &alpha);
        // Subset here is false and the counterexample pair is found well
        // within even a small budget — early exit decides what the
        // materializing product could not afford.
        let tight = Limits::none().with_max_states(2);
        assert!(x.try_intersect(&y, &tight).is_err());
        // With both sides forced to stay disjoint in accepts, the walk
        // must visit every reachable pair and trip the same budget.
        let never = Dfa::build(&Regex::empty(), &alpha);
        assert_eq!(
            x.try_intersects(&never, &tight).err(),
            Some(LimitExceeded::States { budget: 2 })
        );
    }

    #[test]
    #[should_panic(expected = "alphabet must cover")]
    fn build_panics_on_uncovered_symbol() {
        let alpha = syms(&["L"]);
        let _ = Dfa::build(&crate::parse("L.R").unwrap(), &alpha);
    }
}
