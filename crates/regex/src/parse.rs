//! A parser for the paper's concrete regular-expression syntax.
//!
//! Grammar (whitespace insignificant except as a field-name separator):
//!
//! ```text
//! alt     := cat ('|' cat)*
//! cat     := postfix (('.')? postfix)*        -- '.' optional between atoms
//! postfix := atom ('*' | '+')*
//! atom    := field | 'eps' | 'empty' | '(' alt ')'
//! field   := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Multi-letter field names such as `ncolE` are single atoms, so the paper's
//! `LLN` must be written `L.L.N` or `L L N`.

use crate::{Regex, Symbol};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// Error produced by [`parse`] / `Regex::from_str`, with a byte offset into
/// the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset where the error was detected.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl Error for ParseRegexError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Eps,
    Empty,
    Dot,
    Pipe,
    Star,
    Plus,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<(usize, Token)>, ParseRegexError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '.' => {
                tokens.push((i, Token::Dot));
                i += 1;
            }
            '|' => {
                tokens.push((i, Token::Pipe));
                i += 1;
            }
            '*' => {
                tokens.push((i, Token::Star));
                i += 1;
            }
            '+' => {
                tokens.push((i, Token::Plus));
                i += 1;
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let tok = match word {
                    "eps" | "epsilon" => Token::Eps,
                    "empty" => Token::Empty,
                    _ => Token::Ident(word.to_owned()),
                };
                tokens.push((start, tok));
            }
            other => {
                return Err(ParseRegexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(p, _)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseRegexError {
        ParseRegexError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseRegexError> {
        let mut acc = self.parse_cat()?;
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            let rhs = self.parse_cat()?;
            acc = Regex::alt(acc, rhs);
        }
        Ok(acc)
    }

    fn starts_atom(tok: &Token) -> bool {
        matches!(
            tok,
            Token::Ident(_) | Token::Eps | Token::Empty | Token::LParen
        )
    }

    fn parse_cat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut acc = self.parse_postfix()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.bump();
                    let rhs = self.parse_postfix()?;
                    acc = Regex::concat(acc, rhs);
                }
                Some(tok) if Self::starts_atom(tok) => {
                    let rhs = self.parse_postfix()?;
                    acc = Regex::concat(acc, rhs);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseRegexError> {
        let mut acc = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    acc = Regex::star(acc);
                }
                Some(Token::Plus) => {
                    self.bump();
                    acc = Regex::plus(acc);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseRegexError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(Regex::field(Symbol::intern(&name))),
            Some(Token::Eps) => Ok(Regex::epsilon()),
            Some(Token::Empty) => Ok(Regex::empty()),
            Some(Token::LParen) => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.err("expected ')'")),
                }
            }
            Some(tok) => Err(self.err(format!("unexpected token {tok:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses the paper's concrete syntax into a [`Regex`].
///
/// # Errors
///
/// Returns [`ParseRegexError`] on malformed input, with the byte position of
/// the first offending token.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r = apt_regex::parse("(ncolE|nrowE)+")?;
/// assert_eq!(r.to_string(), "(ncolE|nrowE)+");
/// # Ok(())
/// # }
/// ```
pub fn parse(input: &str) -> Result<Regex, ParseRegexError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    if p.peek().is_none() {
        return Err(p.err("empty input (write 'eps' for the empty path)"));
    }
    let re = p.parse_alt()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(re)
}

impl FromStr for Regex {
    type Err = ParseRegexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        parse(s).expect("parse").to_string()
    }

    #[test]
    fn parses_fields_and_concat() {
        assert_eq!(roundtrip("L.L.N"), "L.L.N");
        assert_eq!(roundtrip("L L N"), "L.L.N");
    }

    #[test]
    fn parses_alternation_and_closure() {
        assert_eq!(roundtrip("(L|R)+ N+"), "(L|R)+.N+");
        assert_eq!(roundtrip("ncolE*"), "ncolE*");
    }

    #[test]
    fn parses_eps_and_empty() {
        assert_eq!(parse("eps").unwrap(), Regex::Epsilon);
        assert_eq!(parse("empty").unwrap(), Regex::Empty);
        // ε is a concat unit:
        assert_eq!(roundtrip("eps.L"), "L");
    }

    #[test]
    fn parses_nested_groups() {
        assert_eq!(
            roundtrip("((rows|cols).(relem|celem)*)"),
            "(rows|cols).(relem|celem)*"
        );
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat() {
        let r = parse("L.R*").unwrap();
        assert_eq!(r.to_string(), "L.R*");
        let l = Symbol::intern("L");
        assert!(r.matches(&[l]));
    }

    #[test]
    fn precedence_concat_binds_tighter_than_alt() {
        let r = parse("L.N|R").unwrap();
        let rr = Symbol::intern("R");
        assert!(r.matches(&[rr]));
    }

    #[test]
    fn error_on_garbage() {
        let e = parse("L.$").unwrap_err();
        assert_eq!(e.position, 2);
    }

    #[test]
    fn error_on_unbalanced_paren() {
        assert!(parse("(L|R").is_err());
        assert!(parse("L)").is_err());
    }

    #[test]
    fn error_on_empty() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn error_on_dangling_operator() {
        assert!(parse("L|").is_err());
        assert!(parse("*L").is_err());
    }

    #[test]
    fn from_str_works() {
        let r: Regex = "nrowE+.ncolE+".parse().unwrap();
        assert_eq!(r.to_string(), "nrowE+.ncolE+");
    }
}
