//! Fixed-capacity bit sets over `u64` blocks.
//!
//! The subset construction identifies each DFA state with a *set* of NFA
//! states. Hashing and comparing those sets dominates the construction, so
//! they are stored as dense bit vectors: membership is one shift-and-mask,
//! union is a word-wise `|=`, and equality/hashing touch `⌈n/64⌉` words
//! instead of walking a sorted `Vec<usize>`.
//!
//! The three kernels the construction hammers — union, equality, hashing —
//! run over explicit 4×u64 chunks: four independent lanes per loop
//! iteration that the compiler turns into straight-line vector code, with
//! a scalar tail for the last `len % 4` blocks. Hashing additionally folds
//! the whole set into four accumulator lanes *before* touching the
//! `Hasher`, so a map probe feeds the hasher five words regardless of
//! capacity instead of one word per block.

use std::fmt;
use std::hash::{Hash, Hasher};

const BITS: usize = u64::BITS as usize;

/// Blocks per wide chunk in the u64×4 kernels.
const LANES: usize = 4;

/// A set of small integers (`0..capacity`) backed by `u64` blocks.
///
/// Two sets built with the same capacity compare equal iff they contain the
/// same elements, so a `BitSet` is a valid hash-map key for subset
/// construction.
///
/// ```
/// use apt_regex::bitset::BitSet;
/// let mut s = BitSet::new(130);
/// assert!(s.insert(0));
/// assert!(s.insert(129));
/// assert!(!s.insert(129)); // already present
/// assert!(s.contains(129));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Clone)]
pub struct BitSet {
    blocks: Box<[u64]>,
}

impl PartialEq for BitSet {
    fn eq(&self, other: &BitSet) -> bool {
        if self.blocks.len() != other.blocks.len() {
            return false;
        }
        // Wide compare: OR the per-lane XORs so the loop body is four
        // independent ops, then one scalar tail; no early exit per block
        // (sets compared here are nearly always equal-length and short).
        let mut a = self.blocks.chunks_exact(LANES);
        let mut b = other.blocks.chunks_exact(LANES);
        let mut diff = 0u64;
        for (x, y) in (&mut a).zip(&mut b) {
            diff |= (x[0] ^ y[0]) | (x[1] ^ y[1]) | (x[2] ^ y[2]) | (x[3] ^ y[3]);
        }
        for (x, y) in a.remainder().iter().zip(b.remainder()) {
            diff |= x ^ y;
        }
        diff == 0
    }
}

impl Eq for BitSet {}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Fold the blocks into four accumulator lanes (position-dependent:
        // rotate-xor-multiply per step), then write length + lanes. Equal
        // sets have equal block vectors, hence equal folds; the hasher
        // sees 5 words total instead of one per block.
        const MIX: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut lanes = [0u64; LANES];
        let mut chunks = self.blocks.chunks_exact(LANES);
        for c in &mut chunks {
            for i in 0..LANES {
                lanes[i] = (lanes[i].rotate_left(5) ^ c[i]).wrapping_mul(MIX);
            }
        }
        for (i, &b) in chunks.remainder().iter().enumerate() {
            lanes[i] = (lanes[i].rotate_left(5) ^ b).wrapping_mul(MIX);
        }
        state.write_usize(self.blocks.len());
        for lane in lanes {
            state.write_u64(lane);
        }
    }
}

impl BitSet {
    /// An empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            blocks: vec![0u64; capacity.div_ceil(BITS)].into_boxed_slice(),
        }
    }

    /// Inserts `i`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the capacity the set was created with.
    pub fn insert(&mut self, i: usize) -> bool {
        let mask = 1u64 << (i % BITS);
        let block = &mut self.blocks[i / BITS];
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.blocks
            .get(i / BITS)
            .is_some_and(|b| b & (1u64 << (i % BITS)) != 0)
    }

    /// Adds every element of `other` (capacities must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` was created with a larger capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(other.blocks.len() <= self.blocks.len());
        let dst = &mut self.blocks[..other.blocks.len()];
        let mut d = dst.chunks_exact_mut(LANES);
        let mut s = other.blocks.chunks_exact(LANES);
        for (x, y) in (&mut d).zip(&mut s) {
            x[0] |= y[0];
            x[1] |= y[1];
            x[2] |= y[2];
            x[3] |= y[3];
        }
        for (x, y) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *x |= y;
        }
    }

    /// Whether the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// The elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(bi * BITS + tz)
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_contains_iter() {
        let mut s = BitSet::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(s.insert(i));
            assert!(!s.insert(i));
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 199]
        );
        assert_eq!(s.len(), 8);
        assert!(!s.contains(2));
        assert!(!s.is_empty());
    }

    #[test]
    fn union_and_equality() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        a.union_with(&b);
        assert!(a.contains(3) && a.contains(70));
        let mut c = BitSet::new(100);
        c.insert(70);
        c.insert(3);
        assert_eq!(a, c);
    }

    #[test]
    fn works_as_hash_key() {
        let mut seen: HashSet<BitSet> = HashSet::new();
        let mut a = BitSet::new(80);
        a.insert(5);
        let mut b = BitSet::new(80);
        b.insert(5);
        assert!(seen.insert(a));
        assert!(!seen.insert(b));
    }

    #[test]
    fn wide_kernels_agree_across_chunk_boundaries() {
        // Capacities straddling the 4-block chunk width: 256 bits = 4
        // blocks exactly, 300 = 4 blocks + tail, 520 = 8 blocks + tail.
        for cap in [60, 256, 300, 520] {
            let mut a = BitSet::new(cap);
            let mut b = BitSet::new(cap);
            for i in (0..cap).step_by(7) {
                a.insert(i);
            }
            for i in (0..cap).step_by(11) {
                b.insert(i);
            }
            let mut u = a.clone();
            u.union_with(&b);
            for i in 0..cap {
                assert_eq!(u.contains(i), a.contains(i) || b.contains(i), "bit {i}");
            }
            // Equality + hash consistency (Eq ⇒ equal hashes).
            let mut c = BitSet::new(cap);
            for i in (0..cap).step_by(7) {
                c.insert(i);
            }
            assert_eq!(a, c);
            assert_ne!(a, b);
            let hash = |s: &BitSet| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                s.hash(&mut h);
                std::hash::Hasher::finish(&h)
            };
            assert_eq!(hash(&a), hash(&c), "equal sets must hash equal");
        }
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }
}
