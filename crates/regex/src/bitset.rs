//! Fixed-capacity bit sets over `u64` blocks.
//!
//! The subset construction identifies each DFA state with a *set* of NFA
//! states. Hashing and comparing those sets dominates the construction, so
//! they are stored as dense bit vectors: membership is one shift-and-mask,
//! union is a word-wise `|=`, and equality/hashing touch `⌈n/64⌉` words
//! instead of walking a sorted `Vec<usize>`.

use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A set of small integers (`0..capacity`) backed by `u64` blocks.
///
/// Two sets built with the same capacity compare equal iff they contain the
/// same elements, so a `BitSet` is a valid hash-map key for subset
/// construction.
///
/// ```
/// use apt_regex::bitset::BitSet;
/// let mut s = BitSet::new(130);
/// assert!(s.insert(0));
/// assert!(s.insert(129));
/// assert!(!s.insert(129)); // already present
/// assert!(s.contains(129));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Box<[u64]>,
}

impl BitSet {
    /// An empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet {
            blocks: vec![0u64; capacity.div_ceil(BITS)].into_boxed_slice(),
        }
    }

    /// Inserts `i`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the capacity the set was created with.
    pub fn insert(&mut self, i: usize) -> bool {
        let mask = 1u64 << (i % BITS);
        let block = &mut self.blocks[i / BITS];
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.blocks
            .get(i / BITS)
            .is_some_and(|b| b & (1u64 << (i % BITS)) != 0)
    }

    /// Adds every element of `other` (capacities must match).
    ///
    /// # Panics
    ///
    /// Panics if `other` was created with a larger capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        assert!(other.blocks.len() <= self.blocks.len());
        for (dst, src) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *dst |= src;
        }
    }

    /// Whether the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// The elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(bi * BITS + tz)
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_contains_iter() {
        let mut s = BitSet::new(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(s.insert(i));
            assert!(!s.insert(i));
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 199]
        );
        assert_eq!(s.len(), 8);
        assert!(!s.contains(2));
        assert!(!s.is_empty());
    }

    #[test]
    fn union_and_equality() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        a.union_with(&b);
        assert!(a.contains(3) && a.contains(70));
        let mut c = BitSet::new(100);
        c.insert(70);
        c.insert(3);
        assert_eq!(a, c);
    }

    #[test]
    fn works_as_hash_key() {
        let mut seen: HashSet<BitSet> = HashSet::new();
        let mut a = BitSet::new(80);
        a.insert(5);
        let mut b = BitSet::new(80);
        b.insert(5);
        assert!(seen.insert(a));
        assert!(!seen.insert(b));
    }

    #[test]
    fn empty_set() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }
}
