//! Finite language enumeration.
//!
//! Axiom model-checking (the `apt-axioms` heap checker) and the soundness
//! property tests need the *set of concrete paths* denoted by a regular
//! expression up to a length bound. This module enumerates it from the DFA.

use crate::dfa::Dfa;
use crate::{Regex, Symbol};

/// All words of `L(re)` with length ≤ `max_len`, in length-lexicographic
/// order of the given alphabet extension.
///
/// The enumeration explores `|Σ|^max_len` candidate prefixes in the worst
/// case but prunes through dead DFA states, so it is cheap for the sparse
/// languages that arise from access paths.
///
/// ```
/// use apt_regex::{sample::words_up_to, parse, Symbol};
/// let words = words_up_to(&parse("N+").unwrap(), 3);
/// assert_eq!(words.len(), 3); // N, NN, NNN
/// ```
pub fn words_up_to(re: &Regex, max_len: usize) -> Vec<Vec<Symbol>> {
    let alpha = re.symbols();
    if alpha.is_empty() {
        // Language is ∅ or {ε}.
        return if re.is_nullable() {
            vec![vec![]]
        } else {
            vec![]
        };
    }
    let dfa = Dfa::build(re, &alpha);
    let mut out = Vec::new();
    let mut word = Vec::new();
    enumerate(&dfa, &alpha, dfa.start(), max_len, &mut word, &mut out);
    out
}

fn enumerate(
    dfa: &Dfa,
    alpha: &[Symbol],
    state: usize,
    budget: usize,
    word: &mut Vec<Symbol>,
    out: &mut Vec<Vec<Symbol>>,
) {
    if dfa.is_accepting(state) {
        out.push(word.clone());
    }
    if budget == 0 {
        return;
    }
    for &sym in alpha {
        let next = dfa.next_state(state, sym);
        // Prune if no accepting state is reachable from `next` at all.
        if reachable_accepting(dfa, next) {
            word.push(sym);
            enumerate(dfa, alpha, next, budget - 1, word, out);
            word.pop();
        }
    }
}

fn reachable_accepting(dfa: &Dfa, from: usize) -> bool {
    let mut seen = vec![false; dfa.state_count()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(s) = stack.pop() {
        if dfa.is_accepting(s) {
            return true;
        }
        for &sym in dfa.alphabet() {
            let t = dfa.next_state(s, sym);
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    false
}

/// Whether `L(re)` is finite.
///
/// Infinite languages have a DFA cycle on a path from the start state to an
/// accepting state.
pub fn is_finite(re: &Regex) -> bool {
    let alpha = re.symbols();
    if alpha.is_empty() {
        return true;
    }
    let dfa = Dfa::build(re, &alpha).minimize();
    // In the minimized DFA, every state except the (unique) dead state is
    // live. The language is infinite iff some live state lies on a cycle of
    // live states.
    let n = dfa.state_count();
    let live: Vec<bool> = (0..n).map(|s| reachable_accepting(&dfa, s)).collect();
    // Detect a cycle within live states reachable from start.
    let mut color = vec![0u8; n]; // 0=white 1=grey 2=black
    fn dfs(dfa: &Dfa, live: &[bool], color: &mut [u8], s: usize) -> bool {
        color[s] = 1;
        for &sym in dfa.alphabet() {
            let t = dfa.next_state(s, sym);
            if !live[t] {
                continue;
            }
            if color[t] == 1 {
                return true;
            }
            if color[t] == 0 && dfs(dfa, live, color, t) {
                return true;
            }
        }
        color[s] = 2;
        false
    }
    if !live[dfa.start()] {
        return true;
    }
    !dfs(&dfa, &live, &mut color, dfa.start())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn enumerates_finite_language_exactly() {
        let words = words_up_to(&parse("L.(R|N)").unwrap(), 5);
        assert_eq!(words.len(), 2);
        for w in &words {
            assert_eq!(w.len(), 2);
        }
    }

    #[test]
    fn enumerates_star_up_to_bound() {
        let words = words_up_to(&parse("N*").unwrap(), 4);
        assert_eq!(words.len(), 5); // ε, N, NN, NNN, NNNN
        assert!(words.contains(&vec![]));
    }

    #[test]
    fn empty_language_has_no_words() {
        assert!(words_up_to(&Regex::empty(), 3).is_empty());
        assert_eq!(words_up_to(&Regex::epsilon(), 3), vec![Vec::new()]);
    }

    #[test]
    fn all_words_match_source_regex() {
        let re = parse("(L|R)+.N+").unwrap();
        let words = words_up_to(&re, 4);
        assert!(!words.is_empty());
        for w in &words {
            assert!(re.matches(w), "enumerated word must match: {w:?}");
        }
    }

    #[test]
    fn finiteness() {
        assert!(is_finite(&parse("L.L.N").unwrap()));
        assert!(is_finite(&parse("L|R.N").unwrap()));
        assert!(is_finite(&Regex::empty()));
        assert!(is_finite(&Regex::epsilon()));
        assert!(!is_finite(&parse("L*").unwrap()));
        assert!(!is_finite(&parse("L.N+").unwrap()));
    }
}
