//! Interned pointer-field names.
//!
//! Every pointer field that appears in a type declaration, an axiom, or an
//! access path is interned into a [`Symbol`] — a small copyable integer id.
//! Regular expressions and automata operate on symbols, which keeps DFA
//! alphabets dense, and the interner is process-global so symbols can be
//! displayed without threading a table through every API.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned pointer-field name (e.g. `L`, `R`, `ncolE`).
///
/// Symbols are cheap to copy and compare; two symbols are equal iff their
/// names are equal. Obtain one with [`Symbol::intern`].
///
/// ```
/// use apt_regex::Symbol;
/// let l = Symbol::intern("L");
/// assert_eq!(l, Symbol::intern("L"));
/// assert_ne!(l, Symbol::intern("R"));
/// assert_eq!(l.as_str(), "L");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    lookup: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            lookup: std::collections::HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical [`Symbol`].
    ///
    /// Interning the same string twice returns the same symbol.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty — the empty path is represented by
    /// `ε`, not by an empty field name.
    pub fn intern(name: &str) -> Symbol {
        assert!(!name.is_empty(), "field names must be non-empty");
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.lookup.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.lookup.insert(leaked, id);
        Symbol(id)
    }

    /// The interned name.
    ///
    /// ```
    /// # use apt_regex::Symbol;
    /// assert_eq!(Symbol::intern("nrowE").as_str(), "nrowE");
    /// ```
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw interner index. Useful as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Self {
        Symbol::intern(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo_sym_test");
        let b = Symbol::intern("foo_sym_test");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("aaa_sym"), Symbol::intern("bbb_sym"));
    }

    #[test]
    fn roundtrips_name() {
        assert_eq!(Symbol::intern("ncolE").as_str(), "ncolE");
    }

    #[test]
    fn display_is_name() {
        assert_eq!(Symbol::intern("left").to_string(), "left");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_name_panics() {
        let _ = Symbol::intern("");
    }

    #[test]
    fn from_str_interns() {
        let s: Symbol = "zzz_sym".into();
        assert_eq!(s, Symbol::intern("zzz_sym"));
    }
}
