//! Regular expressions over pointer-field alphabets.
//!
//! The paper describes both aliasing axioms and access paths with regular
//! expressions whose alphabet is the set of pointer-field names of a data
//! structure. This module provides the expression tree ([`Regex`]) together
//! with *smart constructors* that perform the obvious simplifications
//! (`∅·r = ∅`, `ε·r = r`, `(r*)* = r*`, …) so that downstream automata stay
//! small.

use crate::Symbol;
use std::fmt;
use std::sync::Arc;

/// A regular expression over field names.
///
/// `Plus` is kept as a distinct constructor (rather than desugaring to
/// `a·a*`) because the paper's axioms and proof traces are written with `+`
/// and readability of traces matters; all semantic operations treat
/// `a+ ≡ a·a*`.
///
/// Construct via the associated functions, which simplify eagerly:
///
/// ```
/// use apt_regex::Regex;
/// let l = Regex::field("L");
/// let eps = Regex::epsilon();
/// assert_eq!(Regex::concat(eps, l.clone()), l);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅` (no paths at all).
    Empty,
    /// The empty path `ε`.
    Epsilon,
    /// A single pointer-field traversal.
    Field(Symbol),
    /// Concatenation `r₁ · r₂`.
    Concat(Arc<Regex>, Arc<Regex>),
    /// Alternation `r₁ | r₂`.
    Alt(Arc<Regex>, Arc<Regex>),
    /// Kleene star `r*`.
    Star(Arc<Regex>),
    /// Kleene plus `r+` (≡ `r · r*`).
    Plus(Arc<Regex>),
}

impl Regex {
    /// The empty language `∅`.
    pub fn empty() -> Regex {
        Regex::Empty
    }

    /// The empty path `ε`.
    pub fn epsilon() -> Regex {
        Regex::Epsilon
    }

    /// A single field traversal.
    ///
    /// ```
    /// # use apt_regex::Regex;
    /// assert_eq!(Regex::field("N").to_string(), "N");
    /// ```
    pub fn field(name: impl Into<Symbol>) -> Regex {
        Regex::Field(name.into())
    }

    /// Concatenation, simplifying `∅` and `ε` units.
    pub fn concat(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Arc::new(a), Arc::new(b)),
        }
    }

    /// Concatenation of an arbitrary sequence.
    ///
    /// Returns `ε` for an empty sequence.
    pub fn concat_all<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts.into_iter().fold(Regex::Epsilon, Regex::concat)
    }

    /// Alternation, simplifying `∅` units and idempotence.
    pub fn alt(a: Regex, b: Regex) -> Regex {
        match (a, b) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) if a == b => a,
            (a, b) => Regex::Alt(Arc::new(a), Arc::new(b)),
        }
    }

    /// Alternation of an arbitrary sequence.
    ///
    /// Returns `∅` for an empty sequence.
    pub fn alt_all<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts.into_iter().fold(Regex::Empty, Regex::alt)
    }

    /// Kleene star, simplifying `∅* = ε* = ε`, `(r*)* = r*`, `(r+)* = r*`.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(_) => r,
            Regex::Plus(inner) => Regex::Star(inner),
            r => Regex::Star(Arc::new(r)),
        }
    }

    /// Kleene plus, simplifying `∅+ = ∅`, `ε+ = ε`, `(r*)+ = r*`, `(r+)+ = r+`.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(_) | Regex::Plus(_) => r,
            r => Regex::Plus(Arc::new(r)),
        }
    }

    /// A literal word: the concatenation of the given field names.
    ///
    /// ```
    /// # use apt_regex::Regex;
    /// let r = Regex::word(["L", "L", "N"]);
    /// assert_eq!(r.to_string(), "L.L.N");
    /// ```
    pub fn word<I, S>(fields: I) -> Regex
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Regex::concat_all(fields.into_iter().map(Regex::field))
    }

    /// Whether the language contains `ε`.
    ///
    /// ```
    /// # use apt_regex::Regex;
    /// assert!(Regex::star(Regex::field("L")).is_nullable());
    /// assert!(!Regex::plus(Regex::field("L")).is_nullable());
    /// ```
    pub fn is_nullable(&self) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => true,
            Regex::Field(_) => false,
            Regex::Concat(a, b) => a.is_nullable() && b.is_nullable(),
            Regex::Alt(a, b) => a.is_nullable() || b.is_nullable(),
            Regex::Star(_) => true,
            Regex::Plus(a) => a.is_nullable(),
        }
    }

    /// Whether the language is syntactically empty (`∅`).
    ///
    /// This is exact because the smart constructors never build composite
    /// nodes with `∅` children.
    pub fn is_empty_language(&self) -> bool {
        matches!(self, Regex::Empty)
    }

    /// Whether this expression is exactly `ε`.
    pub fn is_epsilon(&self) -> bool {
        matches!(self, Regex::Epsilon)
    }

    /// Collects every field symbol mentioned in the expression.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Field(s) => out.push(*s),
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(a) | Regex::Plus(a) => a.collect_symbols(out),
        }
    }

    /// The set of field symbols that can begin a word of the language
    /// (sorted, deduplicated). `ε` contributes nothing — nullability is a
    /// separate question ([`Regex::is_nullable`]).
    ///
    /// First sets give a *necessary* condition for language inclusion:
    /// `L(a) ⊆ L(b)` requires `first(a) ⊆ first(b)`, which the prover's
    /// axiom dispatch uses to skip axioms that cannot possibly cover a
    /// goal side.
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use apt_regex::parse;
    /// let firsts = parse("(L|R)*.N")?.first_symbols();
    /// let mut names: Vec<&str> = firsts.iter().map(|s| s.as_str()).collect();
    /// names.sort_unstable(); // Symbol's Ord is intern order, not lexical
    /// assert_eq!(names, ["L", "N", "R"]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn first_symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_first(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_first(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Field(s) => out.push(*s),
            Regex::Concat(a, b) => {
                a.collect_first(out);
                if a.is_nullable() {
                    b.collect_first(out);
                }
            }
            Regex::Alt(a, b) => {
                a.collect_first(out);
                b.collect_first(out);
            }
            Regex::Star(a) | Regex::Plus(a) => a.collect_first(out),
        }
    }

    /// The set of field symbols that can end a word of the language
    /// (sorted, deduplicated) — the mirror of [`Regex::first_symbols`].
    pub fn last_symbols(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_last(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_last(&self, out: &mut Vec<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Field(s) => out.push(*s),
            Regex::Concat(a, b) => {
                b.collect_last(out);
                if b.is_nullable() {
                    a.collect_last(out);
                }
            }
            Regex::Alt(a, b) => {
                a.collect_last(out);
                b.collect_last(out);
            }
            Regex::Star(a) | Regex::Plus(a) => a.collect_last(out),
        }
    }

    /// The number of AST nodes; a rough size measure used by the prover's
    /// fuel accounting.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Field(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) | Regex::Plus(a) => 1 + a.size(),
        }
    }

    /// Tests whether a concrete word (sequence of fields) is in the language.
    ///
    /// Implemented with Brzozowski derivatives; linear in `word.len()` times
    /// the derivative sizes, which is fine for the short paths that occur in
    /// practice (§4.2 of the paper: `n` on the order of ten).
    ///
    /// ```
    /// # use apt_regex::{Regex, Symbol};
    /// let r = Regex::plus(Regex::field("N"));
    /// let n = Symbol::intern("N");
    /// assert!(r.matches(&[n, n]));
    /// assert!(!r.matches(&[]));
    /// ```
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut cur = self.clone();
        for &sym in word {
            cur = crate::derivative::derive(&cur, sym);
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.is_nullable()
    }
}

fn precedence(r: &Regex) -> u8 {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Field(_) => 3,
        Regex::Star(_) | Regex::Plus(_) => 3,
        Regex::Concat(_, _) => 2,
        Regex::Alt(_, _) => 1,
    }
}

fn fmt_child(r: &Regex, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if precedence(r) < parent_prec {
        write!(f, "({r})")
    } else {
        write!(f, "{r}")
    }
}

impl fmt::Display for Regex {
    /// Renders in the paper's concrete syntax: `.` for concatenation,
    /// `|` for alternation, postfix `*` and `+`, `eps` for ε.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "empty"),
            Regex::Epsilon => write!(f, "eps"),
            Regex::Field(s) => write!(f, "{s}"),
            Regex::Concat(a, b) => {
                fmt_child(a, 2, f)?;
                write!(f, ".")?;
                fmt_child(b, 2, f)
            }
            Regex::Alt(a, b) => {
                fmt_child(a, 1, f)?;
                write!(f, "|")?;
                fmt_child(b, 1, f)
            }
            Regex::Star(a) => {
                fmt_child(a, 3, f)?;
                write!(f, "*")
            }
            Regex::Plus(a) => {
                fmt_child(a, 3, f)?;
                write!(f, "+")
            }
        }
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str) -> Regex {
        Regex::field(name)
    }

    #[test]
    fn concat_units() {
        assert_eq!(Regex::concat(Regex::Epsilon, f("L")), f("L"));
        assert_eq!(Regex::concat(f("L"), Regex::Epsilon), f("L"));
        assert_eq!(Regex::concat(Regex::Empty, f("L")), Regex::Empty);
        assert_eq!(Regex::concat(f("L"), Regex::Empty), Regex::Empty);
    }

    #[test]
    fn alt_units_and_idempotence() {
        assert_eq!(Regex::alt(Regex::Empty, f("L")), f("L"));
        assert_eq!(Regex::alt(f("L"), f("L")), f("L"));
    }

    #[test]
    fn star_simplifications() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        let ls = Regex::star(f("L"));
        assert_eq!(Regex::star(ls.clone()), ls);
        assert_eq!(Regex::star(Regex::plus(f("L"))), ls);
    }

    #[test]
    fn plus_simplifications() {
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::plus(Regex::Epsilon), Regex::Epsilon);
        let lp = Regex::plus(f("L"));
        assert_eq!(Regex::plus(lp.clone()), lp);
        let ls = Regex::star(f("L"));
        assert_eq!(Regex::plus(ls.clone()), ls);
    }

    #[test]
    fn nullability() {
        assert!(!Regex::Empty.is_nullable());
        assert!(Regex::Epsilon.is_nullable());
        assert!(!f("L").is_nullable());
        assert!(Regex::star(f("L")).is_nullable());
        assert!(!Regex::plus(f("L")).is_nullable());
        assert!(Regex::alt(Regex::Epsilon, f("L")).is_nullable());
        assert!(!Regex::concat(f("L"), Regex::star(f("R"))).is_nullable());
    }

    #[test]
    fn display_paper_syntax() {
        let r = Regex::concat(Regex::plus(Regex::alt(f("L"), f("R"))), Regex::plus(f("N")));
        assert_eq!(r.to_string(), "(L|R)+.N+");
    }

    #[test]
    fn word_builder() {
        let r = Regex::word(["L", "R", "N"]);
        assert_eq!(r.to_string(), "L.R.N");
        assert_eq!(r.size(), 5);
    }

    #[test]
    fn matches_simple() {
        let l = Symbol::intern("L");
        let r = Symbol::intern("R");
        let re = Regex::concat(Regex::star(f("L")), f("R"));
        assert!(re.matches(&[r]));
        assert!(re.matches(&[l, l, r]));
        assert!(!re.matches(&[l, l]));
        assert!(!re.matches(&[r, l]));
    }

    #[test]
    fn symbols_dedup_sorted() {
        let re = Regex::concat(f("L"), Regex::alt(f("L"), f("R")));
        let syms = re.symbols();
        assert_eq!(syms.len(), 2);
    }
}
