//! Component-structured access paths.
//!
//! §4.1 of the paper treats a regular expression as a *sequence of
//! components*, where each component is ε, a field name, an alternation
//! `a|b`, a Kleene star `a*`, or a parenthesized component `(a)`. The
//! prover's suffix-generation scheme peels components off the ends of such
//! sequences, so the prover works on this representation rather than on the
//! raw [`Regex`] tree.
//!
//! ε never appears as an explicit component here: the empty path is the
//! empty component sequence, matching the paper's `ε` suffix arguments.

use crate::{Regex, Symbol};
use std::cmp::Ordering;
use std::fmt;

/// One component of an access path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Component {
    /// A single field traversal.
    Field(Symbol),
    /// An alternation of two whole paths, `a|b`.
    Alt(Path, Path),
    /// A starred path, `a*`.
    Star(Path),
    /// A plussed path, `a+` (≡ `a·a*`).
    Plus(Path),
}

impl Component {
    /// The regular expression this component denotes.
    pub fn to_regex(&self) -> Regex {
        match self {
            Component::Field(s) => Regex::field(*s),
            Component::Alt(a, b) => Regex::alt(a.to_regex(), b.to_regex()),
            Component::Star(a) => Regex::star(a.to_regex()),
            Component::Plus(a) => Regex::plus(a.to_regex()),
        }
    }

    /// Rough node-count size of this component.
    pub fn size(&self) -> usize {
        match self {
            Component::Field(_) => 1,
            Component::Alt(a, b) => 1 + a.size() + b.size(),
            Component::Star(a) | Component::Plus(a) => 1 + a.size(),
        }
    }
}

impl Ord for Component {
    /// A total structural order, comparing field components by *name* (not
    /// by interner id, which depends on interning order and would differ
    /// between runs). Deterministic for the same input on every run, which
    /// is what symmetric-goal canonicalization needs.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(c: &Component) -> u8 {
            match c {
                Component::Field(_) => 0,
                Component::Alt(_, _) => 1,
                Component::Star(_) => 2,
                Component::Plus(_) => 3,
            }
        }
        match (self, other) {
            (Component::Field(a), Component::Field(b)) => a.as_str().cmp(b.as_str()),
            (Component::Alt(a1, b1), Component::Alt(a2, b2)) => a1.cmp(a2).then_with(|| b1.cmp(b2)),
            (Component::Star(a), Component::Star(b)) | (Component::Plus(a), Component::Plus(b)) => {
                a.cmp(b)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Component {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Field(s) => write!(f, "{s}"),
            Component::Alt(a, b) => {
                // Flatten nested alternations for readability:
                // ((Ly|Ry)|Ny) renders as (Ly|Ry|Ny).
                let mut alts = Vec::new();
                collect_alternatives(a, &mut alts);
                collect_alternatives(b, &mut alts);
                write!(f, "({})", alts.join("|"))
            }
            Component::Star(a) => {
                if self_delimiting(a) {
                    write!(f, "{a}*")
                } else {
                    write!(f, "({a})*")
                }
            }
            Component::Plus(a) => {
                if self_delimiting(a) {
                    write!(f, "{a}+")
                } else {
                    write!(f, "({a})+")
                }
            }
        }
    }
}

/// Renders a path into the flattened alternative list of an enclosing
/// alternation display.
fn collect_alternatives(p: &Path, out: &mut Vec<String>) {
    if let [Component::Alt(a, b)] = p.components() {
        collect_alternatives(a, out);
        collect_alternatives(b, out);
    } else {
        out.push(p.to_string());
    }
}

/// Whether a path renders as a single token that needs no extra
/// parentheses under a postfix `*`/`+` (a lone field, or a lone
/// alternation, which prints its own parentheses).
fn self_delimiting(p: &Path) -> bool {
    matches!(
        p.components(),
        [Component::Field(_)] | [Component::Alt(_, _)]
    )
}

/// A sequence of components; the empty sequence is ε.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    components: Vec<Component>,
}

impl Path {
    /// The empty path ε.
    pub fn epsilon() -> Path {
        Path::default()
    }

    /// A path of the given components.
    pub fn new(components: Vec<Component>) -> Path {
        Path { components }
    }

    /// A literal field sequence.
    ///
    /// ```
    /// use apt_regex::path::Path;
    /// let p = Path::fields(["L", "L", "N"]);
    /// assert_eq!(p.to_string(), "L.L.N");
    /// ```
    pub fn fields<I, S>(fields: I) -> Path
    where
        I: IntoIterator<Item = S>,
        S: Into<Symbol>,
    {
        Path {
            components: fields
                .into_iter()
                .map(|s| Component::Field(s.into()))
                .collect(),
        }
    }

    /// Parses the paper's concrete syntax into a path.
    ///
    /// # Errors
    ///
    /// Returns the underlying regex [`crate::ParseRegexError`] on malformed
    /// input, or if the expression denotes the empty language (∅ is not a
    /// path).
    pub fn parse(input: &str) -> Result<Path, crate::ParseRegexError> {
        let re = crate::parse(input)?;
        Path::try_from(&re).map_err(|msg| crate::ParseRegexError {
            position: 0,
            message: msg,
        })
    }

    /// The component sequence.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Whether this is ε.
    pub fn is_epsilon(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of components (the `n` of the paper's complexity discussion).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no components (same as [`Path::is_epsilon`]).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Total AST size across components.
    pub fn size(&self) -> usize {
        self.components.iter().map(Component::size).sum()
    }

    /// Appends a component.
    pub fn push(&mut self, c: Component) {
        self.components.push(c);
    }

    /// `self · other`.
    #[must_use]
    pub fn concat(&self, other: &Path) -> Path {
        let mut components = self.components.clone();
        components.extend(other.components.iter().cloned());
        Path { components }
    }

    /// Splits off the last component: `(prefix, last)`.
    pub fn split_last(&self) -> Option<(Path, &Component)> {
        let (last, init) = self.components.split_last()?;
        Some((
            Path {
                components: init.to_vec(),
            },
            last,
        ))
    }

    /// Splits off the first component: `(first, suffix)`.
    pub fn split_first(&self) -> Option<(&Component, Path)> {
        let (first, rest) = self.components.split_first()?;
        Some((
            first,
            Path {
                components: rest.to_vec(),
            },
        ))
    }

    /// The suffix consisting of the last `k` components (`k ≤ len`).
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    pub fn suffix(&self, k: usize) -> Path {
        assert!(k <= self.components.len());
        Path {
            components: self.components[self.components.len() - k..].to_vec(),
        }
    }

    /// The prefix dropping the last `k` components.
    ///
    /// # Panics
    ///
    /// Panics if `k > self.len()`.
    pub fn prefix(&self, k: usize) -> Path {
        assert!(k <= self.components.len());
        Path {
            components: self.components[..self.components.len() - k].to_vec(),
        }
    }

    /// The regular expression this path denotes.
    pub fn to_regex(&self) -> Regex {
        Regex::concat_all(self.components.iter().map(Component::to_regex))
    }

    /// Whether the denoted set of paths is exactly one concrete path
    /// (cardinality 1) — every component is a plain field.
    pub fn is_definite(&self) -> bool {
        self.components
            .iter()
            .all(|c| matches!(c, Component::Field(_)))
    }
}

impl Ord for Path {
    /// Lexicographic over components (see [`Component`]'s order): a
    /// process-stable total order used to canonicalize symmetric pairs
    /// without formatting either path.
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "eps");
        }
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl TryFrom<&Regex> for Path {
    type Error = String;

    /// Converts a regex into component form. The concatenation spine becomes
    /// the component sequence; `∅` is rejected (it denotes no path at all).
    fn try_from(re: &Regex) -> Result<Path, String> {
        let mut components = Vec::new();
        flatten(re, &mut components)?;
        Ok(Path { components })
    }
}

fn flatten(re: &Regex, out: &mut Vec<Component>) -> Result<(), String> {
    match re {
        Regex::Empty => Err("the empty language is not an access path".to_owned()),
        Regex::Epsilon => Ok(()),
        Regex::Field(s) => {
            out.push(Component::Field(*s));
            Ok(())
        }
        Regex::Concat(a, b) => {
            flatten(a, out)?;
            flatten(b, out)
        }
        Regex::Alt(a, b) => {
            out.push(Component::Alt(Path::try_from(&**a)?, Path::try_from(&**b)?));
            Ok(())
        }
        Regex::Star(a) => {
            out.push(Component::Star(Path::try_from(&**a)?));
            Ok(())
        }
        Regex::Plus(a) => {
            out.push(Component::Plus(Path::try_from(&**a)?));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let p = Path::parse("L.L.N").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "L.L.N");
        assert!(p.is_definite());
    }

    #[test]
    fn epsilon_path() {
        let p = Path::parse("eps").unwrap();
        assert!(p.is_epsilon());
        assert_eq!(p.to_string(), "eps");
        assert!(p.is_definite());
    }

    #[test]
    fn component_structure_of_paper_path() {
        // hr.(nrowE)+ · ncolE · (ncolE)*  has three components
        let p = Path::parse("nrowE+ . ncolE . ncolE*").unwrap();
        assert_eq!(p.len(), 3);
        assert!(matches!(p.components()[0], Component::Plus(_)));
        assert!(matches!(p.components()[1], Component::Field(_)));
        assert!(matches!(p.components()[2], Component::Star(_)));
        assert!(!p.is_definite());
    }

    #[test]
    fn alt_component() {
        let p = Path::parse("(L|R).N").unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(p.components()[0], Component::Alt(_, _)));
    }

    #[test]
    fn empty_language_rejected() {
        assert!(Path::parse("empty").is_err());
    }

    #[test]
    fn splits_and_affixes() {
        let p = Path::parse("L.R.N").unwrap();
        let (prefix, last) = p.split_last().unwrap();
        assert_eq!(prefix.to_string(), "L.R");
        assert_eq!(last.to_string(), "N");
        assert_eq!(p.suffix(2).to_string(), "R.N");
        assert_eq!(p.prefix(2).to_string(), "L");
        assert_eq!(p.suffix(0).to_string(), "eps");
        assert_eq!(p.prefix(0), p);
    }

    #[test]
    fn concat_paths() {
        let a = Path::parse("L").unwrap();
        let b = Path::parse("R.N").unwrap();
        assert_eq!(a.concat(&b).to_string(), "L.R.N");
        assert_eq!(Path::epsilon().concat(&a), a);
    }

    #[test]
    fn to_regex_round_trip_language() {
        let p = Path::parse("(L|R)+.N").unwrap();
        let re = p.to_regex();
        let q = Path::try_from(&re).unwrap();
        assert!(crate::ops::equivalent(&re, &q.to_regex()));
    }

    #[test]
    fn display_star_grouping() {
        let p = Path::parse("(L.R)*").unwrap();
        assert_eq!(p.to_string(), "(L.R)*");
        let q = Path::parse("N*").unwrap();
        assert_eq!(q.to_string(), "N*");
    }
}
