//! Resource limits for the automaton constructions.
//!
//! Subset construction and the product automaton are worst-case exponential
//! in the regex size (`(a|b)*.a.(a|b)^n` needs `2^n` DFA states), so a
//! caller that accepts adversarial axiom sets must be able to bound them.
//! [`Limits`] carries three independent brakes:
//!
//! * a **state budget** — the constructions count every materialized state
//!   and stop with [`LimitExceeded::States`] once the budget is crossed;
//! * a **deadline** — an absolute [`Instant`] checked periodically;
//! * a **cancellation flag** — a shared [`AtomicBool`] a supervising
//!   thread may set at any time; the constructions poll it cooperatively.
//!
//! All checks are cheap (a counter compare on the hot path; `Instant::now`
//! only every [`TIME_CHECK_INTERVAL`] states) and the default
//! [`Limits::none`] is free. Exceeding a limit is an explicit, recoverable
//! error — never a panic, never an unbounded allocation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many state expansions may pass between deadline/cancellation polls.
pub const TIME_CHECK_INTERVAL: u32 = 64;

/// Resource bounds for one automaton construction or language query.
#[derive(Debug, Clone, Default)]
pub struct Limits {
    /// Maximum number of DFA states any single construction may create.
    pub max_states: Option<usize>,
    /// Absolute wall-clock cutoff.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag (set by another thread).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Limits {
    /// No limits: constructions behave exactly as the unbounded versions.
    pub fn none() -> Limits {
        Limits::default()
    }

    /// Bounds the number of states per construction.
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Limits {
        self.max_states = Some(max_states);
        self
    }

    /// Sets an absolute wall-clock cutoff.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Limits {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Limits {
        self.cancel = Some(cancel);
        self
    }

    /// Whether any limit is configured at all.
    pub fn is_none(&self) -> bool {
        self.max_states.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Checks deadline and cancellation (not the state budget).
    ///
    /// # Errors
    ///
    /// [`LimitExceeded::Deadline`] past the deadline,
    /// [`LimitExceeded::Cancelled`] when the flag is set.
    pub fn check_time(&self) -> Result<(), LimitExceeded> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(LimitExceeded::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(LimitExceeded::Deadline);
            }
        }
        Ok(())
    }

    /// Checks the state budget against `states_used`.
    ///
    /// # Errors
    ///
    /// [`LimitExceeded::States`] when `states_used` exceeds the budget.
    pub fn check_states(&self, states_used: usize) -> Result<(), LimitExceeded> {
        match self.max_states {
            Some(budget) if states_used > budget => Err(LimitExceeded::States { budget }),
            _ => Ok(()),
        }
    }
}

/// A resource limit was crossed; the construction stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitExceeded {
    /// The construction needed more than `budget` states.
    States {
        /// The configured per-construction state budget.
        budget: usize,
    },
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation flag was set.
    Cancelled,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitExceeded::States { budget } => {
                write!(f, "DFA state budget exhausted (limit {budget})")
            }
            LimitExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
            LimitExceeded::Cancelled => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for LimitExceeded {}

/// Internal helper: counts construction work and polls the limits.
#[derive(Debug)]
pub(crate) struct Meter<'a> {
    limits: &'a Limits,
    states: usize,
    since_time_check: u32,
}

impl<'a> Meter<'a> {
    pub(crate) fn new(limits: &'a Limits) -> Result<Meter<'a>, LimitExceeded> {
        limits.check_time()?;
        Ok(Meter {
            limits,
            states: 0,
            since_time_check: 0,
        })
    }

    /// Records one materialized state; polls time every
    /// [`TIME_CHECK_INTERVAL`] states.
    pub(crate) fn add_state(&mut self) -> Result<(), LimitExceeded> {
        self.states += 1;
        self.limits.check_states(self.states)?;
        self.since_time_check += 1;
        if self.since_time_check >= TIME_CHECK_INTERVAL {
            self.since_time_check = 0;
            self.limits.check_time()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_limits_never_trip() {
        let limits = Limits::none();
        assert!(limits.check_time().is_ok());
        assert!(limits.check_states(usize::MAX).is_ok());
        let mut meter = Meter::new(&limits).unwrap();
        for _ in 0..10_000 {
            meter.add_state().unwrap();
        }
    }

    #[test]
    fn state_budget_trips_exactly() {
        let limits = Limits::none().with_max_states(3);
        let mut meter = Meter::new(&limits).unwrap();
        assert!(meter.add_state().is_ok());
        assert!(meter.add_state().is_ok());
        assert!(meter.add_state().is_ok());
        assert_eq!(meter.add_state(), Err(LimitExceeded::States { budget: 3 }));
    }

    #[test]
    fn past_deadline_trips_immediately() {
        // A deadline of "now" is already unreachable: the check uses `>=`.
        let limits = Limits::none().with_deadline(Instant::now());
        assert_eq!(limits.check_time(), Err(LimitExceeded::Deadline));
        assert!(Meter::new(&limits).is_err());
    }

    #[test]
    fn cancellation_flag_trips() {
        let flag = Arc::new(AtomicBool::new(false));
        let limits = Limits::none().with_cancel(Arc::clone(&flag));
        assert!(limits.check_time().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(limits.check_time(), Err(LimitExceeded::Cancelled));
    }
}
