//! Hash-consed regular expressions.
//!
//! Every subset test the prover issues starts by asking "have I seen this
//! `(a, b)` pair before?". Keying those caches on `Display`-formatted
//! strings means two allocations and a full tree walk per lookup;
//! [`RegexId`] replaces that with a process-global hash-consing arena in
//! the style of [`crate::Symbol`]: structurally equal regexes intern to the
//! same small integer id, so cache keys are `(u32, u32)` pairs and
//! structural equality is one integer compare.
//!
//! The arena is append-only and lives for the process (ids are never
//! freed), which is exactly the lifetime the caches need: an id minted in
//! one query remains valid for every later query and thread. Interning a
//! regex of `n` nodes costs `n` hash-map probes under one lock — paid once
//! per distinct expression; every later intern of an equal tree stops at
//! the same ids.

use crate::{Regex, Symbol};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned, hash-consed regular expression.
///
/// Two ids are equal iff the regexes are structurally equal (after the
/// smart-constructor simplifications already applied when the trees were
/// built). The derived `Ord` is the arena insertion order — stable for the
/// process, but arbitrary; use it for dense keys, not for canonicalization.
///
/// ```
/// use apt_regex::{parse, RegexId};
/// let a = RegexId::intern(&parse("(L|R)+.N").unwrap());
/// let b = RegexId::intern(&parse("(L|R)+.N").unwrap());
/// assert_eq!(a, b); // O(1) structural equality
/// assert_eq!(a.to_regex().to_string(), "(L|R)+.N");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegexId(u32);

/// One arena node, with children already interned. Hash-consing works on
/// this shallow shape: deep equality of trees reduces to shallow equality
/// of nodes over child ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Empty,
    Epsilon,
    Field(Symbol),
    Concat(RegexId, RegexId),
    Alt(RegexId, RegexId),
    Star(RegexId),
    Plus(RegexId),
}

struct Entry {
    /// The denoted tree, kept so `to_regex` is a clone of an `Arc`-shared
    /// top node rather than a rebuild.
    regex: Regex,
    nullable: bool,
    /// Symbols that can begin a word of the language (sorted, deduped).
    first: Box<[Symbol]>,
    /// Symbols that can end a word of the language (sorted, deduped).
    last: Box<[Symbol]>,
    /// Every symbol mentioned in the expression (sorted, deduped).
    symbols: Box<[Symbol]>,
}

struct Arena {
    entries: Vec<Entry>,
    lookup: HashMap<Node, u32>,
}

/// Sorted-set union of two symbol slices.
fn union_syms(a: &[Symbol], b: &[Symbol]) -> Box<[Symbol]> {
    let mut out: Vec<Symbol> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out.into_boxed_slice()
}

impl Arena {
    fn insert(&mut self, node: Node, regex: Regex) -> RegexId {
        if let Some(&id) = self.lookup.get(&node) {
            return RegexId(id);
        }
        let id = u32::try_from(self.entries.len()).expect("regex interner overflow");
        let nullable = regex.is_nullable();
        // First/last/alphabet sets are assembled shallowly from the already
        // interned children — each node's sets are computed exactly once
        // for the process, whatever the tree sharing looks like.
        let (first, last, symbols) = match node {
            Node::Empty | Node::Epsilon => {
                (Box::default(), Box::default(), Box::<[Symbol]>::default())
            }
            Node::Field(s) => {
                let one: Box<[Symbol]> = Box::new([s]);
                (one.clone(), one.clone(), one)
            }
            Node::Concat(a, b) => {
                let (ea, eb) = (&self.entries[a.index()], &self.entries[b.index()]);
                let first = if ea.nullable {
                    union_syms(&ea.first, &eb.first)
                } else {
                    ea.first.clone()
                };
                let last = if eb.nullable {
                    union_syms(&eb.last, &ea.last)
                } else {
                    eb.last.clone()
                };
                (first, last, union_syms(&ea.symbols, &eb.symbols))
            }
            Node::Alt(a, b) => {
                let (ea, eb) = (&self.entries[a.index()], &self.entries[b.index()]);
                (
                    union_syms(&ea.first, &eb.first),
                    union_syms(&ea.last, &eb.last),
                    union_syms(&ea.symbols, &eb.symbols),
                )
            }
            Node::Star(a) | Node::Plus(a) => {
                let ea = &self.entries[a.index()];
                (ea.first.clone(), ea.last.clone(), ea.symbols.clone())
            }
        };
        self.entries.push(Entry {
            regex,
            nullable,
            first,
            last,
            symbols,
        });
        self.lookup.insert(node, id);
        RegexId(id)
    }

    fn intern(&mut self, re: &Regex) -> RegexId {
        let node = match re {
            Regex::Empty => Node::Empty,
            Regex::Epsilon => Node::Epsilon,
            Regex::Field(s) => Node::Field(*s),
            Regex::Concat(a, b) => Node::Concat(self.intern(a), self.intern(b)),
            Regex::Alt(a, b) => Node::Alt(self.intern(a), self.intern(b)),
            Regex::Star(a) => Node::Star(self.intern(a)),
            Regex::Plus(a) => Node::Plus(self.intern(a)),
        };
        self.insert(node, re.clone())
    }
}

fn arena() -> &'static Mutex<Arena> {
    static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        let mut arena = Arena {
            entries: Vec::new(),
            lookup: HashMap::new(),
        };
        // Pre-seed the two constants so RegexId::EMPTY / EPSILON are fixed.
        arena.insert(Node::Empty, Regex::Empty);
        arena.insert(Node::Epsilon, Regex::Epsilon);
        Mutex::new(arena)
    })
}

impl RegexId {
    /// The id of the empty language `∅`.
    pub const EMPTY: RegexId = RegexId(0);

    /// The id of the empty path `ε`.
    pub const EPSILON: RegexId = RegexId(1);

    /// Interns `re`, returning its canonical id. Structurally equal trees
    /// (from any allocation) intern to the same id.
    pub fn intern(re: &Regex) -> RegexId {
        arena().lock().expect("regex interner poisoned").intern(re)
    }

    /// The interned expression tree (cheap: clones a shared top node).
    pub fn to_regex(self) -> Regex {
        arena().lock().expect("regex interner poisoned").entries[self.0 as usize]
            .regex
            .clone()
    }

    /// Whether the denoted language is `∅`. O(1): `∅` has a fixed id and
    /// the smart constructors never bury `∅` inside a composite node.
    pub fn is_empty_language(self) -> bool {
        self == RegexId::EMPTY
    }

    /// Whether the language contains ε (memoized at intern time).
    pub fn is_nullable(self) -> bool {
        arena().lock().expect("regex interner poisoned").entries[self.0 as usize].nullable
    }

    /// The symbols that can begin a word of the language (memoized at
    /// intern time; sorted, deduplicated). Matches
    /// [`crate::Regex::first_symbols`].
    pub fn first_symbols(self) -> Vec<Symbol> {
        arena().lock().expect("regex interner poisoned").entries[self.0 as usize]
            .first
            .to_vec()
    }

    /// The symbols that can end a word of the language (memoized at intern
    /// time; sorted, deduplicated). Matches [`crate::Regex::last_symbols`].
    pub fn last_symbols(self) -> Vec<Symbol> {
        arena().lock().expect("regex interner poisoned").entries[self.0 as usize]
            .last
            .to_vec()
    }

    /// Every symbol mentioned in the expression (memoized at intern time;
    /// sorted, deduplicated). Matches [`crate::Regex::symbols`].
    pub fn symbols(self) -> Vec<Symbol> {
        arena().lock().expect("regex interner poisoned").entries[self.0 as usize]
            .symbols
            .to_vec()
    }

    /// One locked probe returning the dispatch profile the prover needs:
    /// `(nullable, first, last, symbols)`.
    pub fn profile(self) -> (bool, Vec<Symbol>, Vec<Symbol>, Vec<Symbol>) {
        let guard = arena().lock().expect("regex interner poisoned");
        let e = &guard.entries[self.0 as usize];
        (
            e.nullable,
            e.first.to_vec(),
            e.last.to_vec(),
            e.symbols.to_vec(),
        )
    }

    /// The raw arena index, useful as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegexId({} = {})", self.0, self.to_regex())
    }
}

impl fmt::Display for RegexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_regex().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn intern_is_idempotent_and_structural() {
        let a = RegexId::intern(&parse("(L|R)+.N+").unwrap());
        let b = RegexId::intern(&parse("(L|R)+.N+").unwrap());
        assert_eq!(a, b);
        // Structurally different expression, even if language-equal:
        let c = RegexId::intern(&parse("(L|R)+.N.N*").unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn constants_are_fixed() {
        assert_eq!(RegexId::intern(&Regex::empty()), RegexId::EMPTY);
        assert_eq!(RegexId::intern(&Regex::epsilon()), RegexId::EPSILON);
        assert!(RegexId::EMPTY.is_empty_language());
        assert!(!RegexId::EPSILON.is_empty_language());
        assert!(RegexId::EPSILON.is_nullable());
        assert!(!RegexId::EMPTY.is_nullable());
    }

    #[test]
    fn round_trips_the_tree() {
        for text in ["L.L.N", "(L|R)+.N+", "N*", "eps", "empty", "(a.b)*|c+"] {
            let re = parse(text).unwrap();
            let id = RegexId::intern(&re);
            assert_eq!(id.to_regex(), re, "{text}");
            assert_eq!(id.to_string(), re.to_string());
            assert_eq!(id.is_nullable(), re.is_nullable());
        }
    }

    #[test]
    fn subterms_share_ids() {
        let whole = parse("(L|R).N").unwrap();
        let part = parse("L|R").unwrap();
        let _ = RegexId::intern(&whole);
        let before = RegexId::intern(&part);
        // Interning the subterm again allocates nothing new.
        assert_eq!(RegexId::intern(&part), before);
    }

    #[test]
    fn concurrent_interning_converges() {
        let re = parse("(x|y)+.z").unwrap();
        let ids: Vec<RegexId> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let re = re.clone();
                    scope.spawn(move || RegexId::intern(&re))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
