//! Hash-consed regular expressions with an epoch-scoped lifecycle.
//!
//! Every subset test the prover issues starts by asking "have I seen this
//! `(a, b)` pair before?". Keying those caches on `Display`-formatted
//! strings means two allocations and a full tree walk per lookup;
//! [`RegexId`] replaces that with a process-global hash-consing arena in
//! the style of [`crate::Symbol`]: structurally equal regexes intern to the
//! same small integer id, so cache keys are `(u32, u32)` pairs and
//! structural equality is one integer compare.
//!
//! # Lifecycle
//!
//! The arena used to be append-only — fine for a compiler pass, a real
//! leak for a resident daemon interning millions of distinct expressions.
//! Entries now carry a reference count of **live scopes** and the arena
//! reclaims slots when that count drains:
//!
//! * An [`ArenaScope`] is an epoch handle. While at least one scope is
//!   open, every intern (fresh insert *or* hash-cons hit) is charged to
//!   **all currently open scopes** — conservative over-retention, never
//!   under-retention. A per-entry generation marker dedupes the charge, so
//!   re-interning a hot expression a million times under a stable scope
//!   set records it once.
//! * Interning with **no scope open** pins the entry permanently — the
//!   pre-lifecycle behaviour, which is exactly right for CLI runs and
//!   tests. [`RegexId::EMPTY`] and [`RegexId::EPSILON`] are pre-seeded
//!   pinned.
//! * Dropping a scope decrements its charged entries; entries reaching
//!   zero references (and not pinned) are compacted: their lookup key is
//!   removed, their slot goes on a free list for reuse, and
//!   [`arena_stats`] accounting shrinks. In `apt-serve`, each session's
//!   engine owns a scope, so LRU eviction *is* the compaction trigger and
//!   daemon RSS stays bounded under session churn.
//!
//! The validity contract follows: an id interned under a scope stays valid
//! while that scope (or any scope open at the time) lives; an id interned
//! outside any scope is valid forever. Because interning recurses through
//! children before the parent, a retained parent always retains its
//! children — no live entry can refer to a compacted slot. Using an id
//! after its last scope dropped panics with a "compacted" message rather
//! than returning garbage.

use crate::fx::FxHashMap;
use crate::{Regex, Symbol};
use std::collections::BTreeMap;
use std::fmt;
use std::mem::size_of;
use std::sync::{Mutex, OnceLock};

/// An interned, hash-consed regular expression.
///
/// Two ids are equal iff the regexes are structurally equal (after the
/// smart-constructor simplifications already applied when the trees were
/// built). The derived `Ord` is the arena slot order — stable while the
/// ids live, but arbitrary; use it for dense keys, not for
/// canonicalization.
///
/// ```
/// use apt_regex::{parse, RegexId};
/// let a = RegexId::intern(&parse("(L|R)+.N").unwrap());
/// let b = RegexId::intern(&parse("(L|R)+.N").unwrap());
/// assert_eq!(a, b); // O(1) structural equality
/// assert_eq!(a.to_regex().to_string(), "(L|R)+.N");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegexId(u32);

/// One arena node, with children already interned. Hash-consing works on
/// this shallow shape: deep equality of trees reduces to shallow equality
/// of nodes over child ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Empty,
    Epsilon,
    Field(Symbol),
    Concat(RegexId, RegexId),
    Alt(RegexId, RegexId),
    Star(RegexId),
    Plus(RegexId),
}

struct Entry {
    /// The shallow shape, kept for reverse lookup removal on compaction.
    node: Node,
    /// The denoted tree, kept so `to_regex` is a clone of an `Arc`-shared
    /// top node rather than a rebuild.
    regex: Regex,
    nullable: bool,
    /// Symbols that can begin a word of the language (sorted, deduped).
    first: Box<[Symbol]>,
    /// Symbols that can end a word of the language (sorted, deduped).
    last: Box<[Symbol]>,
    /// Every symbol mentioned in the expression (sorted, deduped).
    symbols: Box<[Symbol]>,
    /// Outstanding scope charges (occurrences in scope charge logs).
    refs: u32,
    /// Permanently retained (interned outside any scope, or pre-seeded).
    pinned: bool,
    /// Scope-set generation of the last charge (dedup marker).
    touch_gen: u64,
}

enum Slot {
    Occupied(Box<Entry>),
    Vacant,
}

#[derive(Default)]
struct ScopeData {
    /// Entry slots charged to this scope. May contain duplicates when the
    /// active-scope set changed between charges; each occurrence matches
    /// exactly one `refs` increment, so drop decrements per occurrence.
    charged: Vec<u32>,
}

struct Arena {
    slots: Vec<Slot>,
    lookup: FxHashMap<Node, u32>,
    free: Vec<u32>,
    /// Open scopes by id (ordered for deterministic charging).
    scopes: BTreeMap<u64, ScopeData>,
    next_scope: u64,
    /// Bumped whenever the open-scope set changes; entries remember the
    /// generation of their last charge so a stable scope set charges each
    /// entry at most once.
    gen: u64,
    live_nodes: usize,
    live_bytes: usize,
    pinned_nodes: usize,
    freed_total: u64,
}

/// A point-in-time snapshot of the arena's occupancy, for memory
/// telemetry (`apt report`, the serve `stats` verb, bench JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Live interned nodes (occupied slots).
    pub live_nodes: usize,
    /// Approximate heap bytes behind the live nodes (slot + symbol-set
    /// storage; the shared `Regex` top nodes are counted shallowly).
    pub live_bytes: usize,
    /// Live nodes pinned forever (interned outside any scope).
    pub pinned_nodes: usize,
    /// Currently open [`ArenaScope`]s.
    pub active_scopes: usize,
    /// Nodes compacted over the process lifetime.
    pub freed_total: u64,
}

/// Sorted-set union of two symbol slices.
fn union_syms(a: &[Symbol], b: &[Symbol]) -> Box<[Symbol]> {
    let mut out: Vec<Symbol> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out.into_boxed_slice()
}

impl Arena {
    fn entry(&self, id: u32) -> &Entry {
        match &self.slots[id as usize] {
            Slot::Occupied(e) => e,
            Slot::Vacant => panic!(
                "RegexId({id}) used after its arena scope was compacted \
                 (ids are valid while the scope they were interned under lives)"
            ),
        }
    }

    /// Approximate heap footprint of one entry.
    fn entry_bytes(e: &Entry) -> usize {
        size_of::<Slot>()
            + size_of::<Entry>()
            + (e.first.len() + e.last.len() + e.symbols.len()) * size_of::<Symbol>()
            + size_of::<Regex>()
    }

    /// Charges `id` to the open scopes (or pins it when none are open),
    /// deduped per scope-set generation.
    fn touch(&mut self, id: u32) {
        let gen = self.gen;
        let nscopes = self.scopes.len();
        let newly_pinned = {
            let Slot::Occupied(e) = &mut self.slots[id as usize] else {
                unreachable!("touch of vacant slot {id}");
            };
            if e.pinned {
                return;
            }
            if nscopes == 0 {
                e.pinned = true;
                true
            } else {
                if e.touch_gen == gen {
                    return;
                }
                e.touch_gen = gen;
                e.refs += u32::try_from(nscopes).expect("scope count overflow");
                false
            }
        };
        if newly_pinned {
            self.pinned_nodes += 1;
        } else {
            for scope in self.scopes.values_mut() {
                scope.charged.push(id);
            }
        }
    }

    fn insert(&mut self, node: Node, regex: Regex) -> RegexId {
        if let Some(&id) = self.lookup.get(&node) {
            self.touch(id);
            return RegexId(id);
        }
        let nullable = regex.is_nullable();
        // First/last/alphabet sets are assembled shallowly from the already
        // interned children — each node's sets are computed exactly once
        // for the node's lifetime, whatever the tree sharing looks like.
        let (first, last, symbols) = match node {
            Node::Empty | Node::Epsilon => {
                (Box::default(), Box::default(), Box::<[Symbol]>::default())
            }
            Node::Field(s) => {
                let one: Box<[Symbol]> = Box::new([s]);
                (one.clone(), one.clone(), one)
            }
            Node::Concat(a, b) => {
                let (ea, eb) = (self.entry(a.0), self.entry(b.0));
                let first = if ea.nullable {
                    union_syms(&ea.first, &eb.first)
                } else {
                    ea.first.clone()
                };
                let last = if eb.nullable {
                    union_syms(&eb.last, &ea.last)
                } else {
                    eb.last.clone()
                };
                (first, last, union_syms(&ea.symbols, &eb.symbols))
            }
            Node::Alt(a, b) => {
                let (ea, eb) = (self.entry(a.0), self.entry(b.0));
                (
                    union_syms(&ea.first, &eb.first),
                    union_syms(&ea.last, &eb.last),
                    union_syms(&ea.symbols, &eb.symbols),
                )
            }
            Node::Star(a) | Node::Plus(a) => {
                let ea = self.entry(a.0);
                (ea.first.clone(), ea.last.clone(), ea.symbols.clone())
            }
        };
        let entry = Box::new(Entry {
            node,
            regex,
            nullable,
            first,
            last,
            symbols,
            refs: 0,
            pinned: false,
            touch_gen: 0,
        });
        self.live_bytes += Self::entry_bytes(&entry);
        self.live_nodes += 1;
        let id = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot::Occupied(entry);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("regex interner overflow");
                self.slots.push(Slot::Occupied(entry));
                i
            }
        };
        self.lookup.insert(node, id);
        self.touch(id);
        RegexId(id)
    }

    fn intern(&mut self, re: &Regex) -> RegexId {
        let node = match re {
            Regex::Empty => Node::Empty,
            Regex::Epsilon => Node::Epsilon,
            Regex::Field(s) => Node::Field(*s),
            Regex::Concat(a, b) => Node::Concat(self.intern(a), self.intern(b)),
            Regex::Alt(a, b) => Node::Alt(self.intern(a), self.intern(b)),
            Regex::Star(a) => Node::Star(self.intern(a)),
            Regex::Plus(a) => Node::Plus(self.intern(a)),
        };
        self.insert(node, re.clone())
    }

    fn scope_open(&mut self) -> u64 {
        let id = self.next_scope;
        self.next_scope += 1;
        self.gen += 1;
        self.scopes.insert(id, ScopeData::default());
        id
    }

    fn scope_close(&mut self, scope: u64) {
        let Some(data) = self.scopes.remove(&scope) else {
            return;
        };
        self.gen += 1;
        for id in data.charged {
            let free_it = match &mut self.slots[id as usize] {
                Slot::Occupied(e) if !e.pinned => {
                    e.refs -= 1;
                    e.refs == 0
                }
                _ => false,
            };
            if free_it {
                self.free_entry(id);
            }
        }
    }

    fn free_entry(&mut self, id: u32) {
        let slot = std::mem::replace(&mut self.slots[id as usize], Slot::Vacant);
        let Slot::Occupied(e) = slot else {
            unreachable!("double free of arena slot {id}");
        };
        self.lookup.remove(&e.node);
        self.live_bytes = self.live_bytes.saturating_sub(Self::entry_bytes(&e));
        self.live_nodes -= 1;
        self.freed_total += 1;
        self.free.push(id);
    }

    fn stats(&self) -> ArenaStats {
        ArenaStats {
            live_nodes: self.live_nodes,
            live_bytes: self.live_bytes,
            pinned_nodes: self.pinned_nodes,
            active_scopes: self.scopes.len(),
            freed_total: self.freed_total,
        }
    }
}

fn arena() -> &'static Mutex<Arena> {
    static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        let mut arena = Arena {
            slots: Vec::new(),
            lookup: FxHashMap::default(),
            free: Vec::new(),
            scopes: BTreeMap::new(),
            next_scope: 0,
            gen: 1,
            live_nodes: 0,
            live_bytes: 0,
            pinned_nodes: 0,
            freed_total: 0,
        };
        // Pre-seed the two constants so RegexId::EMPTY / EPSILON are fixed
        // (inserted with no scope open, hence pinned forever).
        arena.insert(Node::Empty, Regex::Empty);
        arena.insert(Node::Epsilon, Regex::Epsilon);
        Mutex::new(arena)
    })
}

/// A point-in-time snapshot of arena occupancy.
pub fn arena_stats() -> ArenaStats {
    arena().lock().expect("regex interner poisoned").stats()
}

/// An open retention epoch on the global regex arena.
///
/// While the scope lives, every id interned (by any thread) stays valid;
/// dropping the scope releases its charges and compacts entries no other
/// scope (and no pin) still holds. [`crate::Regex`] trees themselves are
/// unaffected — only the id table is scoped.
///
/// Typical ownership: one scope per long-lived engine, dropped when the
/// engine is evicted, so a daemon's arena footprint tracks its *resident*
/// sessions instead of its history.
#[derive(Debug)]
pub struct ArenaScope {
    id: u64,
}

impl ArenaScope {
    /// Opens a new retention epoch.
    pub fn new() -> ArenaScope {
        let id = arena()
            .lock()
            .expect("regex interner poisoned")
            .scope_open();
        ArenaScope { id }
    }
}

impl Default for ArenaScope {
    fn default() -> ArenaScope {
        ArenaScope::new()
    }
}

impl Drop for ArenaScope {
    fn drop(&mut self) {
        if let Ok(mut guard) = arena().lock() {
            guard.scope_close(self.id);
        }
    }
}

impl RegexId {
    /// The id of the empty language `∅`.
    pub const EMPTY: RegexId = RegexId(0);

    /// The id of the empty path `ε`.
    pub const EPSILON: RegexId = RegexId(1);

    /// Interns `re`, returning its canonical id. Structurally equal trees
    /// (from any allocation) intern to the same id. The id stays valid
    /// while any [`ArenaScope`] open right now lives — forever, when none
    /// is open.
    pub fn intern(re: &Regex) -> RegexId {
        arena().lock().expect("regex interner poisoned").intern(re)
    }

    /// The interned expression tree (cheap: clones a shared top node).
    pub fn to_regex(self) -> Regex {
        arena()
            .lock()
            .expect("regex interner poisoned")
            .entry(self.0)
            .regex
            .clone()
    }

    /// Whether the denoted language is `∅`. O(1): `∅` has a fixed id and
    /// the smart constructors never bury `∅` inside a composite node.
    pub fn is_empty_language(self) -> bool {
        self == RegexId::EMPTY
    }

    /// Whether the language contains ε (memoized at intern time).
    pub fn is_nullable(self) -> bool {
        arena()
            .lock()
            .expect("regex interner poisoned")
            .entry(self.0)
            .nullable
    }

    /// The symbols that can begin a word of the language (memoized at
    /// intern time; sorted, deduplicated). Matches
    /// [`crate::Regex::first_symbols`].
    pub fn first_symbols(self) -> Vec<Symbol> {
        arena()
            .lock()
            .expect("regex interner poisoned")
            .entry(self.0)
            .first
            .to_vec()
    }

    /// The symbols that can end a word of the language (memoized at intern
    /// time; sorted, deduplicated). Matches [`crate::Regex::last_symbols`].
    pub fn last_symbols(self) -> Vec<Symbol> {
        arena()
            .lock()
            .expect("regex interner poisoned")
            .entry(self.0)
            .last
            .to_vec()
    }

    /// Every symbol mentioned in the expression (memoized at intern time;
    /// sorted, deduplicated). Matches [`crate::Regex::symbols`].
    pub fn symbols(self) -> Vec<Symbol> {
        arena()
            .lock()
            .expect("regex interner poisoned")
            .entry(self.0)
            .symbols
            .to_vec()
    }

    /// One locked probe returning the dispatch profile the prover needs:
    /// `(nullable, first, last, symbols)`.
    pub fn profile(self) -> (bool, Vec<Symbol>, Vec<Symbol>, Vec<Symbol>) {
        let guard = arena().lock().expect("regex interner poisoned");
        let e = guard.entry(self.0);
        (
            e.nullable,
            e.first.to_vec(),
            e.last.to_vec(),
            e.symbols.to_vec(),
        )
    }

    /// The raw arena slot index, useful as a dense array key while the id
    /// lives.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RegexId({} = {})", self.0, self.to_regex())
    }
}

impl fmt::Display for RegexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_regex().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn intern_is_idempotent_and_structural() {
        let a = RegexId::intern(&parse("(L|R)+.N+").unwrap());
        let b = RegexId::intern(&parse("(L|R)+.N+").unwrap());
        assert_eq!(a, b);
        // Structurally different expression, even if language-equal:
        let c = RegexId::intern(&parse("(L|R)+.N.N*").unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn constants_are_fixed() {
        assert_eq!(RegexId::intern(&Regex::empty()), RegexId::EMPTY);
        assert_eq!(RegexId::intern(&Regex::epsilon()), RegexId::EPSILON);
        assert!(RegexId::EMPTY.is_empty_language());
        assert!(!RegexId::EPSILON.is_empty_language());
        assert!(RegexId::EPSILON.is_nullable());
        assert!(!RegexId::EMPTY.is_nullable());
    }

    #[test]
    fn round_trips_the_tree() {
        for text in ["L.L.N", "(L|R)+.N+", "N*", "eps", "empty", "(a.b)*|c+"] {
            let re = parse(text).unwrap();
            let id = RegexId::intern(&re);
            assert_eq!(id.to_regex(), re, "{text}");
            assert_eq!(id.to_string(), re.to_string());
            assert_eq!(id.is_nullable(), re.is_nullable());
        }
    }

    #[test]
    fn subterms_share_ids() {
        let whole = parse("(L|R).N").unwrap();
        let part = parse("L|R").unwrap();
        let _ = RegexId::intern(&whole);
        let before = RegexId::intern(&part);
        // Interning the subterm again allocates nothing new.
        assert_eq!(RegexId::intern(&part), before);
    }

    #[test]
    fn concurrent_interning_converges() {
        let re = parse("(x|y)+.z").unwrap();
        let ids: Vec<RegexId> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let re = re.clone();
                    scope.spawn(move || RegexId::intern(&re))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn unscoped_interns_are_pinned_and_stats_track_them() {
        let before = arena_stats();
        // A fresh expression interned with no scope open must stay live.
        let id = RegexId::intern(&parse("pinned0.pinned1.pinned2").unwrap());
        let after = arena_stats();
        assert!(after.live_nodes >= before.live_nodes);
        assert!(after.live_bytes > 0);
        assert_eq!(id.to_regex().to_string(), "pinned0.pinned1.pinned2");
    }

    #[test]
    fn scoped_entries_are_reclaimed_on_last_scope_drop() {
        // Serialized against other scope tests via unique symbols only —
        // concurrent tests may open their own scopes, which merely makes
        // retention conservative (never unsound), so only check that the
        // entry dies once every scope open during its life is gone.
        let scope = ArenaScope::new();
        let re = parse("lifecycleA.lifecycleB.lifecycleC").unwrap();
        let id = RegexId::intern(&re);
        assert_eq!(id.to_regex(), re);
        let live_before_drop = arena_stats().live_nodes;
        drop(scope);
        // Unless another concurrently open scope charged it, the entry is
        // gone; re-interning mints a fresh (possibly reused) slot either
        // way and the arena did not grow.
        let re2 = RegexId::intern(&re);
        assert_eq!(re2.to_regex(), re);
        assert!(arena_stats().live_nodes <= live_before_drop + 3);
    }

    #[test]
    fn overlapping_scopes_retain_shared_entries() {
        let a = ArenaScope::new();
        let id = RegexId::intern(&parse("sharedX.sharedY").unwrap());
        let b = ArenaScope::new();
        // Touch under the new scope set so `b` also charges it.
        let id2 = RegexId::intern(&parse("sharedX.sharedY").unwrap());
        assert_eq!(id, id2);
        drop(a);
        // Still valid: scope b holds it.
        assert_eq!(id.to_regex().to_string(), "sharedX.sharedY");
        drop(b);
    }

    #[test]
    fn freed_slots_are_reused() {
        let freed_before = arena_stats().freed_total;
        {
            let _scope = ArenaScope::new();
            let _ = RegexId::intern(&parse("reuse0.reuse1").unwrap());
        }
        let freed_after = arena_stats().freed_total;
        // The scope's private entries were compacted (other concurrently
        // open scopes can delay this; tolerate but don't require exact).
        assert!(freed_after >= freed_before);
    }
}
