//! A fast, non-cryptographic hasher for the prover's integer-keyed maps.
//!
//! The hot caches key on [`crate::RegexId`] pairs, dense DFA state ids,
//! and small bitset blocks. `std`'s default SipHash is keyed and
//! DoS-resistant, but on two-word keys its per-lookup cost dwarfs the
//! probe itself. [`FxHasher`] is the word-at-a-time multiply-xor fold
//! used by rustc: one rotate, one xor, one multiply per word. None of the
//! maps using it are fed attacker-chosen keys — ids come out of our own
//! arenas — so the DoS resistance being traded away was never load-bearing.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher (rustc's `FxHasher`).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(tail));
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&(3u32, 7u32)), hash_of(&(3u32, 7u32)));
        assert_ne!(hash_of(&(3u32, 7u32)), hash_of(&(7u32, 3u32)));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_ne!(hash_of(&"hello"), hash_of(&"hellp"));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), bool> = FxHashMap::default();
        m.insert((1, 2), true);
        m.insert((2, 1), false);
        assert_eq!(m.get(&(1, 2)), Some(&true));
        assert_eq!(m.get(&(2, 1)), Some(&false));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn byte_writes_distinguish_lengths() {
        // The tail padding must not collapse distinct slices.
        let mut a = FxHasher::default();
        a.write(&[1, 0]);
        let mut b = FxHasher::default();
        b.write(&[1]);
        assert_ne!(a.finish(), b.finish());
    }
}
