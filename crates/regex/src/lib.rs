//! Regular expressions over pointer-field alphabets.
//!
//! This crate is the language-theoretic substrate of the APT reproduction
//! (Hummel, Hendren & Nicolau, *A General Data Dependence Test for Dynamic,
//! Pointer-Based Data Structures*, PLDI 1994). The paper names memory by
//! **access paths** — regular expressions over the pointer-field names of a
//! data structure — and decides axiom applicability with the classic
//! automata constructions (\[HU79\]): subset via `M1 ∩ ¬M2 = ∅`.
//!
//! Provided here:
//!
//! * [`Symbol`] — interned field names.
//! * [`Regex`] — the expression tree with simplifying constructors and a
//!   parser for the paper's concrete syntax ([`parse`]).
//! * [`RegexId`] — hash-consed expression handles with O(1) structural
//!   equality, the key type for every cache on the subset-test hot path.
//! * [`nfa`]/[`dfa`] — Thompson construction and subset construction with
//!   complement, product, emptiness, witnesses, and minimization.
//! * [`ops`] — the decision procedures (`is_subset`, `is_disjoint`,
//!   `equivalent`, `is_singleton`).
//! * [`derivative`] — an independent Brzozowski-derivative engine used for
//!   matching and cross-validation.
//! * [`path`] — the component-sequence view of a regex that the prover's
//!   suffix generation operates on (§4.1 of the paper).
//! * [`sample`] — finite enumeration of a language, used by the axiom
//!   model checker.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use apt_regex::{ops, parse};
//!
//! // The leaf-linked-tree example of the paper, §2.4: the exact access
//! // paths are disjoint...
//! let p = parse("L.L.N")?;
//! let q = parse("L.R.N")?;
//! assert!(ops::is_disjoint(&p, &q));
//!
//! // ...and both lie inside the conservative path expression that a
//! // Larus-style analysis must map them to.
//! let conservative = parse("(L|R)+.N+")?;
//! assert!(ops::is_subset(&p, &conservative));
//! assert!(ops::is_subset(&q, &conservative));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod bitset;
pub mod cache;
pub mod derivative;
pub mod dfa;
pub mod fx;
pub mod intern;
pub mod limits;
pub mod nfa;
pub mod ops;
mod parse;
pub mod path;
pub mod sample;
mod symbol;

pub use ast::Regex;
pub use cache::DfaCache;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::{arena_stats, ArenaScope, ArenaStats, RegexId};
pub use limits::{LimitExceeded, Limits};
pub use parse::{parse, ParseRegexError};
pub use path::{Component, Path};
pub use symbol::Symbol;
