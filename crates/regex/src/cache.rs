//! A thread-safe, shard-locked DFA interner.
//!
//! Converting a regex to a DFA dominates the prover's running time (§4.2 of
//! the paper), and a batch of dependence queries over one axiom set keeps
//! asking for the same handful of automata — every applicability check pits
//! a query path against the same axiom-side expressions. [`DfaCache`]
//! memoizes `(regex, alphabet) → Dfa` behind sharded mutexes so concurrent
//! workers can share the conversions without serializing on one lock.
//!
//! Caching discipline mirrors the prover's soundness rule: only *successful*
//! constructions are interned. A build that tripped a [`LimitExceeded`]
//! proves nothing about the automaton and is never recorded, so a cache
//! shared across differently-budgeted queries can never launder a resource
//! failure into a wrong answer.
//!
//! Shards are capacity-bounded; once a shard is full, new entries are simply
//! not recorded (the build still succeeds). That keeps the cache's memory
//! finite without an eviction order that would make concurrent runs
//! nondeterministic.

use std::hash::BuildHasher;
use std::sync::{Arc, Mutex};

use crate::dfa::Dfa;
use crate::fx::{FxBuildHasher, FxHashMap};
use crate::intern::RegexId;
use crate::limits::{LimitExceeded, Limits};
use crate::{Regex, Symbol};

/// Number of independent lock shards.
const SHARDS: usize = 16;

/// Maximum interned automata per shard.
const SHARD_CAPACITY: usize = 512;

/// Cache key: hash-consed expression id plus the DFA's alphabet. The id
/// replaces the `Display`-formatted regex string the cache used to key on —
/// lookups hash two machine words instead of formatting a tree.
type Key = (RegexId, Vec<Symbol>);

/// A sharded `(regex, alphabet) → Arc<Dfa>` interner, safe to share across
/// worker threads.
#[derive(Debug)]
pub struct DfaCache {
    shards: Vec<Mutex<FxHashMap<Key, Arc<Dfa>>>>,
    /// `RegexId → minimized DFA` slot: the Hopcroft-style quotient of the
    /// raw subset-construction automaton, interned separately so the lazy
    /// product walks (`try_subset_of` / `try_intersects`) explore the
    /// smallest pair-state frontier available. Minimization preserves the
    /// language exactly, so a minimized hit answers the same question.
    min_shards: Vec<Mutex<FxHashMap<Key, Arc<Dfa>>>>,
}

impl Default for DfaCache {
    fn default() -> Self {
        DfaCache::new()
    }
}

impl DfaCache {
    /// An empty cache.
    pub fn new() -> DfaCache {
        DfaCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            min_shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard_of<'a>(
        shards: &'a [Mutex<FxHashMap<Key, Arc<Dfa>>>],
        key: &Key,
    ) -> &'a Mutex<FxHashMap<Key, Arc<Dfa>>> {
        let h = FxBuildHasher::default().hash_one(key);
        &shards[(h as usize) % SHARDS]
    }

    fn shard(&self, key: &Key) -> &Mutex<FxHashMap<Key, Arc<Dfa>>> {
        DfaCache::shard_of(&self.shards, key)
    }

    /// Number of interned raw automata across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Number of interned minimized automata across all shards.
    pub fn len_minimized(&self) -> usize {
        self.min_shards
            .iter()
            .map(|s| s.lock().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Total states across `(raw, minimized)` interned automata — the
    /// observability counter behind the `apt report` / `apt batch`
    /// minimized-vs-raw lines.
    pub fn state_totals(&self) -> (usize, usize) {
        let sum = |shards: &[Mutex<FxHashMap<Key, Arc<Dfa>>>]| {
            shards
                .iter()
                .map(|s| {
                    s.lock()
                        .map(|g| g.values().map(|d| d.state_count()).sum::<usize>())
                        .unwrap_or(0)
                })
                .sum::<usize>()
        };
        (sum(&self.shards), sum(&self.min_shards))
    }

    /// Whether the cache holds no automata.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.len_minimized() == 0
    }

    /// Returns the DFA for `re` over `alphabet`, building it under `limits`
    /// on a miss.
    ///
    /// The construction runs *outside* the shard lock, so a slow build never
    /// blocks other workers; two threads racing on the same key may both
    /// build, and the first insert wins.
    ///
    /// # Errors
    ///
    /// Propagates [`LimitExceeded`] from the construction. Failed builds are
    /// never cached.
    pub fn get_or_build(
        &self,
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Arc<Dfa>, LimitExceeded> {
        self.get_or_build_id(RegexId::intern(re), re, alphabet, limits)
    }

    /// [`DfaCache::get_or_build`] for a pre-interned expression: `id` must
    /// be the interned form of `re` (callers on the hot path already hold
    /// both, so no re-interning and no formatting happens here).
    ///
    /// # Errors
    ///
    /// Propagates [`LimitExceeded`] from the construction. Failed builds
    /// are never cached.
    pub fn get_or_build_id(
        &self,
        id: RegexId,
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Arc<Dfa>, LimitExceeded> {
        debug_assert_eq!(RegexId::intern(re), id, "id must intern the given regex");
        let key: Key = (id, alphabet.to_vec());
        let shard = self.shard(&key);
        if let Ok(guard) = shard.lock() {
            if let Some(dfa) = guard.get(&key) {
                return Ok(Arc::clone(dfa));
            }
        }
        let built = Arc::new(Dfa::try_build(re, alphabet, limits)?);
        if let Ok(mut guard) = shard.lock() {
            if let Some(existing) = guard.get(&key) {
                return Ok(Arc::clone(existing));
            }
            if guard.len() < SHARD_CAPACITY {
                guard.insert(key, Arc::clone(&built));
            }
        }
        Ok(built)
    }

    /// The smallest DFA this cache can currently offer for a pre-interned
    /// expression: the minimized automaton when one is interned, otherwise
    /// the raw one — minimizing *lazily*, on the second use of a key.
    ///
    /// Minimization preserves the language, so every decision procedure may
    /// substitute the minimized automaton freely; the lazy product walks get
    /// a pair-state frontier bounded by the *minimal* state counts, which is
    /// what shrinks the Kleene-heavy Appendix A explorations. But Hopcroft's
    /// partition refinement is not free, and a one-shot expression never
    /// earns it back — so the first request for a key builds (and returns)
    /// only the raw automaton, exactly as [`DfaCache::get_or_build_id`], and
    /// the quotient is computed once a request finds the raw DFA already
    /// interned. Cold single-query cost is unchanged; repeat customers (an
    /// axiom side, a loop-carried goal re-asked across a batch) get the
    /// minimal frontier from their second check on.
    ///
    /// # Errors
    ///
    /// Propagates [`LimitExceeded`] from the raw construction (metered
    /// exactly as [`DfaCache::get_or_build_id`]; minimization itself only
    /// shrinks and is not metered). Failed builds are never cached.
    pub fn get_or_build_min_id(
        &self,
        id: RegexId,
        re: &Regex,
        alphabet: &[Symbol],
        limits: &Limits,
    ) -> Result<Arc<Dfa>, LimitExceeded> {
        let key: Key = (id, alphabet.to_vec());
        let min_shard = DfaCache::shard_of(&self.min_shards, &key);
        if let Ok(guard) = min_shard.lock() {
            if let Some(dfa) = guard.get(&key) {
                return Ok(Arc::clone(dfa));
            }
        }
        // First use of this key: build and return the raw automaton only.
        let raw_cached = self
            .shard(&key)
            .lock()
            .map(|g| g.contains_key(&key))
            .unwrap_or(false);
        let raw = self.get_or_build_id(id, re, alphabet, limits)?;
        if !raw_cached {
            return Ok(raw);
        }
        let minimized = Arc::new(raw.minimize());
        if let Ok(mut guard) = min_shard.lock() {
            if let Some(existing) = guard.get(&key) {
                return Ok(Arc::clone(existing));
            }
            if guard.len() < SHARD_CAPACITY {
                guard.insert(key, Arc::clone(&minimized));
            }
        }
        Ok(minimized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn hit_returns_same_automaton() {
        let cache = DfaCache::new();
        let re = parse("L+.N").unwrap();
        let alpha = re.symbols();
        let a = cache.get_or_build(&re, &alpha, &Limits::none()).unwrap();
        let b = cache.get_or_build(&re, &alpha, &Limits::none()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_alphabets_are_distinct_entries() {
        let cache = DfaCache::new();
        let re = parse("L").unwrap();
        let a1 = re.symbols();
        let mut a2 = a1.clone();
        a2.extend(parse("R").unwrap().symbols());
        a2.sort_unstable();
        a2.dedup();
        cache.get_or_build(&re, &a1, &Limits::none()).unwrap();
        cache.get_or_build(&re, &a2, &Limits::none()).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let cache = DfaCache::new();
        let n = 18;
        let bomb = parse(&format!("(a|b)*.a{}", ".(a|b)".repeat(n))).unwrap();
        let alpha = bomb.symbols();
        let tight = Limits::none().with_max_states(100);
        assert!(cache.get_or_build(&bomb, &alpha, &tight).is_err());
        assert!(cache.is_empty());
        // The same key still builds fine under a roomier budget.
        let roomy = Limits::none().with_max_states(5_000_000);
        assert!(cache.get_or_build(&bomb, &alpha, &roomy).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn minimization_is_lazy_and_idempotent() {
        let cache = DfaCache::new();
        let re = parse("(L|R)+.N.N*").unwrap();
        let alpha = re.symbols();
        let id = RegexId::intern(&re);
        // First use: raw only — no minimization work for one-shot keys.
        let first = cache
            .get_or_build_min_id(id, &re, &alpha, &Limits::none())
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.len_minimized(), 0);
        // Second use: the quotient is built, interned, and no larger.
        let second = cache
            .get_or_build_min_id(id, &re, &alpha, &Limits::none())
            .unwrap();
        assert_eq!(cache.len_minimized(), 1);
        assert!(second.state_count() <= first.state_count());
        // Third use: the interned quotient is served as-is.
        let third = cache
            .get_or_build_min_id(id, &re, &alpha, &Limits::none())
            .unwrap();
        assert!(Arc::ptr_eq(&second, &third));
        let (raw_states, min_states) = cache.state_totals();
        assert!(min_states <= raw_states);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(DfaCache::new());
        let res: Vec<Regex> = ["L+", "R+", "(L|R)+.N", "L.L.N"]
            .iter()
            .map(|s| parse(s).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let res = res.clone();
                scope.spawn(move || {
                    for re in &res {
                        let alpha = re.symbols();
                        cache.get_or_build(re, &alpha, &Limits::none()).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), res.len());
    }
}
