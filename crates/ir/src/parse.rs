//! A front-end for the mini pointer language.
//!
//! The concrete syntax mirrors the paper's C fragments:
//!
//! ```text
//! type LLBinaryTree {
//!     ptr L: LLBinaryTree;
//!     ptr R: LLBinaryTree;
//!     ptr N: LLBinaryTree;
//!     data d;
//!     axiom A1: forall p, p.L <> p.R;
//! }
//!
//! proc subr(root: LLBinaryTree) {
//!     root = root->L;
//!     p = root->L;
//!     p = p->N;
//! S:  p->d = 100;
//!     loop { p = p->N; }
//! }
//! ```
//!
//! Multi-field pointer expressions (`p = q->L->N`) are normalized during
//! parsing into the single-field form §4.1 assumes, by loading into the
//! destination first and then self-loading (`p = q->L; p = p->N;`) or via
//! fresh temporaries for scalar reads.
//!
//! Comments run from `//` to end of line. Loop and `if` conditions are
//! opaque (the analysis does not interpret them), so the syntax omits them.

use crate::ast::{Block, Expr, Proc, Program, Stmt, StmtKind};
use crate::types::{PointerField, StructDecl};
use apt_regex::Symbol;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error from parsing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Arrow,
    Assign,
    Semi,
    Colon,
    Comma,
    LBrace,
    RBrace,
    LParen,
    RParen,
    /// Raw axiom text captured after the `axiom` keyword, up to `;`.
    AxiomText(String),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.src.as_bytes()
    }

    fn skip_ws(&mut self) {
        loop {
            let b = self.bytes();
            // Byte-level tests only: `b as char` would classify UTF-8
            // continuation bytes (0x85, 0xA0) as whitespace and strand
            // `pos` inside a multi-byte character.
            while self.pos < b.len() && b[self.pos].is_ascii_whitespace() {
                if b[self.pos] == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
            if self.pos + 1 < b.len() && b[self.pos] == b'/' && b[self.pos + 1] == b'/' {
                while self.pos < b.len() && b[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    /// Captures raw text up to the next `;` (used for axiom bodies, whose
    /// own syntax contains tokens the statement lexer would mangle).
    fn capture_until_semi(&mut self) -> Result<String, ParseProgramError> {
        let start = self.pos;
        let b = self.bytes();
        while self.pos < b.len() && b[self.pos] != b';' {
            if b[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        if self.pos >= b.len() {
            return Err(ParseProgramError {
                line: self.line,
                message: "unterminated axiom (expected ';')".into(),
            });
        }
        let text = self.src[start..self.pos].trim().to_owned();
        self.pos += 1; // consume ';'
        Ok(text)
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, ParseProgramError> {
        self.skip_ws();
        let b = self.bytes();
        if self.pos >= b.len() {
            return Ok(None);
        }
        let line = self.line;
        let c = b[self.pos] as char;
        let tok = match c {
            ';' => {
                self.pos += 1;
                Tok::Semi
            }
            ':' => {
                self.pos += 1;
                Tok::Colon
            }
            ',' => {
                self.pos += 1;
                Tok::Comma
            }
            '{' => {
                self.pos += 1;
                Tok::LBrace
            }
            '}' => {
                self.pos += 1;
                Tok::RBrace
            }
            '(' => {
                self.pos += 1;
                Tok::LParen
            }
            ')' => {
                self.pos += 1;
                Tok::RParen
            }
            '=' => {
                self.pos += 1;
                Tok::Assign
            }
            '-' if self.pos + 1 < b.len() && b[self.pos + 1] == b'>' => {
                self.pos += 2;
                Tok::Arrow
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && self.pos + 1 < b.len()
                    && (b[self.pos + 1] as char).is_ascii_digit()) =>
            {
                let start = self.pos;
                self.pos += 1;
                while self.pos < b.len() && (b[self.pos] as char).is_ascii_digit() {
                    self.pos += 1;
                }
                let text = &self.src[start..self.pos];
                Tok::Int(text.parse().map_err(|_| ParseProgramError {
                    line,
                    message: format!("bad integer literal {text:?}"),
                })?)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = self.pos;
                while self.pos < b.len()
                    && ((b[self.pos] as char).is_ascii_alphanumeric() || b[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let word = self.src[start..self.pos].to_owned();
                if word == "axiom" {
                    let text = self.capture_until_semi()?;
                    Tok::AxiomText(text)
                } else {
                    Tok::Ident(word)
                }
            }
            other => {
                return Err(ParseProgramError {
                    line,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        Ok(Some((line, tok)))
    }
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    /// Pointer-variable types in the current procedure.
    var_types: HashMap<String, String>,
    /// Type declarations seen so far (for field classification).
    types: Vec<StructDecl>,
    temp_counter: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseProgramError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l);
        ParseProgramError {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|(_, t)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseProgramError> {
        match self.bump() {
            Some(t) if t == *want => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseProgramError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseProgramError> {
        let mut prog = Program::new();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(kw) if kw == "type" => {
                    self.bump();
                    let decl = self.parse_type_decl()?;
                    self.types.push(decl.clone());
                    prog.types.push(decl);
                }
                Tok::Ident(kw) if kw == "proc" => {
                    self.bump();
                    let p = self.parse_proc()?;
                    prog.procs.push(p);
                }
                other => {
                    return Err(self.err(format!("expected 'type' or 'proc', found {other:?}")))
                }
            }
        }
        Ok(prog)
    }

    fn parse_type_decl(&mut self) -> Result<StructDecl, ParseProgramError> {
        let name = self.expect_ident("type name")?;
        let mut decl = StructDecl::new(&name);
        self.expect(&Tok::LBrace, "'{'")?;
        let mut axiom_lines = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::RBrace) => break,
                Some(Tok::Ident(kw)) if kw == "ptr" => {
                    let fname = self.expect_ident("field name")?;
                    self.expect(&Tok::Colon, "':'")?;
                    let target = self.expect_ident("target type")?;
                    self.expect(&Tok::Semi, "';'")?;
                    decl.pointers.push(PointerField {
                        name: Symbol::intern(&fname),
                        target,
                    });
                }
                Some(Tok::Ident(kw)) if kw == "data" => {
                    let fname = self.expect_ident("field name")?;
                    self.expect(&Tok::Semi, "';'")?;
                    decl.scalars.push(Symbol::intern(&fname));
                }
                Some(Tok::AxiomText(text)) => axiom_lines.push(text),
                other => {
                    return Err(self.err(format!(
                        "expected 'ptr', 'data', 'axiom' or '}}' in type body, found {other:?}"
                    )))
                }
            }
        }
        decl.axioms = apt_axioms::AxiomSet::parse(&axiom_lines.join("\n"))
            .map_err(|e| self.err(format!("in axioms of type {name}: {e}")))?;
        Ok(decl)
    }

    fn parse_proc(&mut self) -> Result<Proc, ParseProgramError> {
        let name = self.expect_ident("procedure name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        self.var_types.clear();
        self.temp_counter = 0;
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let var = self.expect_ident("parameter name")?;
                self.expect(&Tok::Colon, "':'")?;
                let ty = self.expect_ident("parameter type")?;
                self.var_types.insert(var.clone(), ty.clone());
                params.push((var, ty));
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        let body = self.parse_block()?;
        Ok(Proc { name, params, body })
    }

    fn parse_block(&mut self) -> Result<Block, ParseProgramError> {
        self.expect(&Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            self.parse_stmt_into(&mut stmts)?;
        }
        self.bump(); // '}'
        Ok(Block { stmts })
    }

    /// Parses one source statement, which may normalize into several IR
    /// statements.
    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseProgramError> {
        // Optional label: `ident ':'` where the following token starts a
        // statement (not an assignment to the label itself).
        let mut label = None;
        if let (Some(Tok::Ident(_)), Some(Tok::Colon)) = (self.peek(), self.peek2()) {
            if let Some(Tok::Ident(l)) = self.bump() {
                label = Some(l);
            }
            self.bump(); // ':'
        }

        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "loop" => {
                self.bump();
                let body = self.parse_block()?;
                out.push(Stmt {
                    label,
                    kind: StmtKind::Loop { body },
                });
                return Ok(());
            }
            Some(Tok::Ident(kw)) if kw == "reassert" => {
                self.bump();
                self.expect(&Tok::Semi, "';'")?;
                out.push(Stmt {
                    label,
                    kind: StmtKind::Reassert,
                });
                return Ok(());
            }
            Some(Tok::Ident(kw)) if kw == "call" => {
                self.bump();
                let callee = self.expect_ident("callee name")?;
                self.expect(&Tok::LParen, "'('")?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        let arg = self.expect_ident("argument")?;
                        if self.var_type(&arg).is_none() {
                            return Err(
                                self.err(format!("{arg:?} is not a known pointer variable"))
                            );
                        }
                        args.push(arg);
                        match self.peek() {
                            Some(Tok::Comma) => {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                }
                self.expect(&Tok::RParen, "')'")?;
                self.expect(&Tok::Semi, "';'")?;
                out.push(Stmt {
                    label,
                    kind: StmtKind::Call { callee, args },
                });
                return Ok(());
            }
            Some(Tok::Ident(kw)) if kw == "if" => {
                self.bump();
                let then_branch = self.parse_block()?;
                let else_branch = if matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "else") {
                    self.bump();
                    self.parse_block()?
                } else {
                    Block::new()
                };
                out.push(Stmt {
                    label,
                    kind: StmtKind::If {
                        then_branch,
                        else_branch,
                    },
                });
                return Ok(());
            }
            _ => {}
        }

        // Assignment statement: lhs = rhs ;
        let lhs_var = self.expect_ident("variable")?;
        let lhs_field = if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            Some(self.expect_ident("field name")?)
        } else {
            None
        };
        self.expect(&Tok::Assign, "'='")?;

        let stmts_before = out.len();
        match lhs_field {
            None => self.parse_var_assign(&lhs_var, out)?,
            Some(field) => self.parse_store(&lhs_var, &field, out)?,
        }
        self.expect(&Tok::Semi, "';'")?;
        // Attach the label to the *last* generated statement (the one that
        // performs the source-level effect).
        if let Some(l) = label {
            let idx = stmts_before.max(out.len().saturating_sub(1));
            if let Some(last) = out.get_mut(idx) {
                last.label = Some(l);
            }
        }
        Ok(())
    }

    fn lookup_type(&self, name: &str) -> Option<&StructDecl> {
        self.types.iter().find(|t| t.name == name)
    }

    fn field_is_pointer(&self, ty: &str, field: &str) -> Result<bool, ParseProgramError> {
        let decl = self
            .lookup_type(ty)
            .ok_or_else(|| self.err(format!("unknown type {ty:?}")))?;
        let sym = Symbol::intern(field);
        if decl.is_pointer_field(sym) {
            Ok(true)
        } else if decl.is_scalar_field(sym) {
            Ok(false)
        } else {
            Err(self.err(format!("type {ty} has no field {field:?}")))
        }
    }

    fn var_type(&self, var: &str) -> Option<&str> {
        self.var_types.get(var).map(String::as_str)
    }

    fn fresh_temp(&mut self) -> String {
        let t = format!("__t{}", self.temp_counter);
        self.temp_counter += 1;
        t
    }

    /// `lhs = rhs;` with a plain variable destination.
    fn parse_var_assign(
        &mut self,
        dst: &str,
        out: &mut Vec<Stmt>,
    ) -> Result<(), ParseProgramError> {
        match self.bump() {
            Some(Tok::Int(i)) => {
                out.push(Stmt::new(StmtKind::ScalarAssign {
                    var: dst.to_owned(),
                    value: Expr::Int(i),
                }));
                Ok(())
            }
            Some(Tok::Ident(name)) if name == "null" => {
                self.var_types.remove(dst);
                out.push(Stmt::new(StmtKind::PtrNull {
                    dst: dst.to_owned(),
                }));
                Ok(())
            }
            Some(Tok::Ident(name)) if name == "malloc" => {
                self.expect(&Tok::LParen, "'('")?;
                let ty = self.expect_ident("type name")?;
                self.expect(&Tok::RParen, "')'")?;
                if self.lookup_type(&ty).is_none() {
                    return Err(self.err(format!("malloc of unknown type {ty:?}")));
                }
                self.var_types.insert(dst.to_owned(), ty.clone());
                out.push(Stmt::new(StmtKind::PtrNew {
                    dst: dst.to_owned(),
                    ty,
                }));
                Ok(())
            }
            Some(Tok::Ident(src)) => {
                if self.peek() == Some(&Tok::LParen) {
                    // Opaque call.
                    self.bump();
                    self.expect(&Tok::RParen, "')'")?;
                    out.push(Stmt::new(StmtKind::ScalarAssign {
                        var: dst.to_owned(),
                        value: Expr::Call(src),
                    }));
                    return Ok(());
                }
                if self.peek() == Some(&Tok::Arrow) {
                    // Field chain: src->f1->f2->…
                    return self.parse_field_chain(dst, &src, out);
                }
                // Plain variable copy: pointer if src has a pointer type.
                if let Some(ty) = self.var_type(&src).map(str::to_owned) {
                    self.var_types.insert(dst.to_owned(), ty);
                    out.push(Stmt::new(StmtKind::PtrCopy {
                        dst: dst.to_owned(),
                        src,
                    }));
                } else {
                    out.push(Stmt::new(StmtKind::ScalarAssign {
                        var: dst.to_owned(),
                        value: Expr::Var(src),
                    }));
                }
                Ok(())
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    /// `dst = src->f1->f2…;` — normalizes a chain into single-field loads.
    fn parse_field_chain(
        &mut self,
        dst: &str,
        src: &str,
        out: &mut Vec<Stmt>,
    ) -> Result<(), ParseProgramError> {
        let mut fields = Vec::new();
        while self.peek() == Some(&Tok::Arrow) {
            self.bump();
            fields.push(self.expect_ident("field name")?);
        }
        let mut cur_ty = self
            .var_type(src)
            .map(str::to_owned)
            .ok_or_else(|| self.err(format!("{src:?} is not a known pointer variable")))?;
        let mut cur_var = src.to_owned();
        for (i, field) in fields.iter().enumerate() {
            let last = i + 1 == fields.len();
            let is_ptr = self.field_is_pointer(&cur_ty, field)?;
            if is_ptr {
                let target = self
                    .lookup_type(&cur_ty)
                    .and_then(|d| d.pointer_target(Symbol::intern(field)))
                    .expect("pointer field has a target")
                    .to_owned();
                // Load into the destination as early as possible so that
                // subsequent hops are self-relative (no fresh handles, per
                // §3.3's induction-variable exception).
                let hop_dst = dst.to_owned();
                out.push(Stmt::new(StmtKind::PtrLoad {
                    dst: hop_dst.clone(),
                    src: cur_var.clone(),
                    field: Symbol::intern(field),
                }));
                self.var_types.insert(hop_dst.clone(), target.clone());
                cur_var = hop_dst;
                cur_ty = target;
            } else {
                // Scalar field: must be the last hop.
                if !last {
                    return Err(self.err(format!(
                        "scalar field {field:?} dereferenced in the middle of a chain"
                    )));
                }
                out.push(Stmt::new(StmtKind::ScalarRead {
                    var: dst.to_owned(),
                    ptr: cur_var.clone(),
                    field: Symbol::intern(field),
                }));
                return Ok(());
            }
        }
        Ok(())
    }

    /// `ptr->field = rhs;`
    fn parse_store(
        &mut self,
        ptr: &str,
        field: &str,
        out: &mut Vec<Stmt>,
    ) -> Result<(), ParseProgramError> {
        let ty = self
            .var_type(ptr)
            .map(str::to_owned)
            .ok_or_else(|| self.err(format!("{ptr:?} is not a known pointer variable")))?;
        let is_ptr_field = self.field_is_pointer(&ty, field)?;
        let fsym = Symbol::intern(field);
        match self.bump() {
            Some(Tok::Int(i)) => {
                if is_ptr_field {
                    return Err(self.err(format!(
                        "cannot store an integer into pointer field {field:?}"
                    )));
                }
                out.push(Stmt::new(StmtKind::ScalarWrite {
                    ptr: ptr.to_owned(),
                    field: fsym,
                    value: Expr::Int(i),
                }));
                Ok(())
            }
            Some(Tok::Ident(name)) if name == "null" => {
                if !is_ptr_field {
                    return Err(self.err("cannot store null into a scalar field"));
                }
                out.push(Stmt::new(StmtKind::PtrStore {
                    ptr: ptr.to_owned(),
                    field: fsym,
                    src: None,
                }));
                Ok(())
            }
            Some(Tok::Ident(src)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    self.expect(&Tok::RParen, "')'")?;
                    if is_ptr_field {
                        return Err(self.err("cannot store a call result into a pointer field"));
                    }
                    out.push(Stmt::new(StmtKind::ScalarWrite {
                        ptr: ptr.to_owned(),
                        field: fsym,
                        value: Expr::Call(src),
                    }));
                    return Ok(());
                }
                if self.peek() == Some(&Tok::Arrow) {
                    // Normalize `p->f = q->g…` via a temporary.
                    let tmp = self.fresh_temp();
                    self.parse_field_chain(&tmp, &src, out)?;
                    if is_ptr_field {
                        out.push(Stmt::new(StmtKind::PtrStore {
                            ptr: ptr.to_owned(),
                            field: fsym,
                            src: Some(tmp),
                        }));
                    } else {
                        // Scalar chain result written to a scalar field.
                        out.push(Stmt::new(StmtKind::ScalarWrite {
                            ptr: ptr.to_owned(),
                            field: fsym,
                            value: Expr::Var(tmp),
                        }));
                    }
                    return Ok(());
                }
                if is_ptr_field {
                    if self.var_type(&src).is_none() {
                        return Err(self.err(format!(
                            "{src:?} is not a known pointer variable (stored into pointer field {field:?})"
                        )));
                    }
                    out.push(Stmt::new(StmtKind::PtrStore {
                        ptr: ptr.to_owned(),
                        field: fsym,
                        src: Some(src),
                    }));
                } else {
                    out.push(Stmt::new(StmtKind::ScalarWrite {
                        ptr: ptr.to_owned(),
                        field: fsym,
                        value: Expr::Var(src),
                    }));
                }
                Ok(())
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }
}

/// Parses a program in the mini pointer language.
///
/// # Errors
///
/// Returns [`ParseProgramError`] with a line number on malformed input,
/// unknown types/fields, or stores of the wrong category (pointer vs
/// scalar).
pub fn parse_program(src: &str) -> Result<Program, ParseProgramError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next()? {
        tokens.push(t);
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        var_types: HashMap::new(),
        types: Vec::new(),
        temp_counter: 0,
    };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TREE_TYPE: &str = r"
        type LLBinaryTree {
            ptr L: LLBinaryTree;
            ptr R: LLBinaryTree;
            ptr N: LLBinaryTree;
            data d;
            axiom A1: forall p, p.L <> p.R;
            axiom A2: forall p <> q, p.(L|R) <> q.(L|R);
            axiom A3: forall p <> q, p.N <> q.N;
            axiom A4: forall p, p.(L|R|N)+ <> p.eps;
        }
    ";

    #[test]
    fn parses_type_with_axioms() {
        let prog = parse_program(TREE_TYPE).unwrap();
        let t = prog.type_decl("LLBinaryTree").unwrap();
        assert_eq!(t.pointers.len(), 3);
        assert_eq!(t.scalars.len(), 1);
        assert_eq!(t.axioms.len(), 4);
        assert!(t.axioms.by_name("A4").is_some());
    }

    #[test]
    fn parses_paper_subr() {
        let src = format!(
            "{TREE_TYPE}
            proc subr(root: LLBinaryTree) {{
                root = root->L;
                p = root->L;
                p = p->N;
            S:  p->d = 100;
                p = root;
                q = root->R;
                q = q->N;
            T:  t = q->d;
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let proc = prog.proc("subr").unwrap();
        assert_eq!(proc.body.stmts.len(), 8);
        assert!(proc.body.find_labeled("S").is_some());
        assert!(proc.body.find_labeled("T").is_some());
        let s = proc.body.find_labeled("S").unwrap();
        assert!(matches!(s.kind, StmtKind::ScalarWrite { .. }));
    }

    #[test]
    fn normalizes_multi_field_chain() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                p = root->L->R->N;
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let proc = prog.proc("f").unwrap();
        // One load into p, then two self-relative hops.
        assert_eq!(proc.body.stmts.len(), 3);
        assert!(matches!(
            &proc.body.stmts[0].kind,
            StmtKind::PtrLoad { dst, src, .. } if dst == "p" && src == "root"
        ));
        assert!(matches!(
            &proc.body.stmts[1].kind,
            StmtKind::PtrLoad { dst, src, .. } if dst == "p" && src == "p"
        ));
    }

    #[test]
    fn scalar_chain_reads_through_temp_free_path() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                v = root->L->d;
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let proc = prog.proc("f").unwrap();
        assert_eq!(proc.body.stmts.len(), 2);
        assert!(matches!(&proc.body.stmts[1].kind,
            StmtKind::ScalarRead { var, field, .. } if var == "v" && field.as_str() == "d"));
    }

    #[test]
    fn parses_loop_and_if() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                p = root;
                loop {{
                    p = p->N;
                U:  p->d = fun();
                }}
                if {{ q = root->L; }} else {{ q = root->R; }}
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let proc = prog.proc("f").unwrap();
        assert!(proc.body.find_labeled("U").is_some());
        assert!(matches!(proc.body.stmts[1].kind, StmtKind::Loop { .. }));
        assert!(matches!(proc.body.stmts[2].kind, StmtKind::If { .. }));
    }

    #[test]
    fn structural_store_classified() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                q = malloc(LLBinaryTree);
                root->L = q;
                root->L = null;
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let proc = prog.proc("f").unwrap();
        assert!(matches!(&proc.body.stmts[1].kind,
            StmtKind::PtrStore { src: Some(s), .. } if s == "q"));
        assert!(matches!(
            &proc.body.stmts[2].kind,
            StmtKind::PtrStore { src: None, .. }
        ));
    }

    #[test]
    fn parses_calls() {
        let src = format!(
            "{TREE_TYPE}
            proc helper(t: LLBinaryTree) {{
                t->d = 1;
            }}
            proc f(root: LLBinaryTree) {{
                p = root->L;
                call helper(p);
            }}"
        );
        let prog = parse_program(&src).unwrap();
        let f = prog.proc("f").unwrap();
        assert!(matches!(&f.body.stmts[1].kind,
            StmtKind::Call { callee, args } if callee == "helper" && args == &["p".to_owned()]));
    }

    #[test]
    fn call_rejects_unknown_argument() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                call g(zzz);
            }}"
        );
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn rejects_unknown_field() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{ p = root->Z; }}"
        );
        let err = parse_program(&src).unwrap_err();
        assert!(err.message.contains("no field"));
    }

    #[test]
    fn rejects_int_into_pointer_field() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{ root->L = 5; }}"
        );
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn rejects_unknown_pointer_variable() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{ p = zzz->L; }}"
        );
        assert!(parse_program(&src).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_program("type T {\n  bogus;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn comments_are_skipped() {
        let src = format!(
            "{TREE_TYPE}
            proc f(root: LLBinaryTree) {{
                // the paper's first step
                p = root->L;
            }}"
        );
        assert!(parse_program(&src).is_ok());
    }
}
