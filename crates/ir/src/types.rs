//! Structure type declarations.
//!
//! The paper's examples attach aliasing axioms to C `struct` declarations
//! (Figure 3, Figure 6). A [`StructDecl`] is the IR-level mirror: named
//! pointer fields (each with a target type), scalar data fields, and the
//! axiom text for the structure.

use apt_regex::Symbol;
use std::fmt;

/// A pointer field of a structure: name plus the structure type it points
/// to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointerField {
    /// Field name (interned).
    pub name: Symbol,
    /// Target structure type name.
    pub target: String,
}

/// A structure type with pointer fields, scalar fields, and attached
/// aliasing axioms.
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// The type name.
    pub name: String,
    /// Pointer fields in declaration order.
    pub pointers: Vec<PointerField>,
    /// Scalar (data) fields.
    pub scalars: Vec<Symbol>,
    /// The axioms declared with the type.
    pub axioms: apt_axioms::AxiomSet,
}

impl StructDecl {
    /// Creates a declaration with no fields or axioms.
    pub fn new(name: impl Into<String>) -> StructDecl {
        StructDecl {
            name: name.into(),
            pointers: Vec::new(),
            scalars: Vec::new(),
            axioms: apt_axioms::AxiomSet::new(),
        }
    }

    /// Whether `field` is a pointer field of this type.
    pub fn is_pointer_field(&self, field: Symbol) -> bool {
        self.pointers.iter().any(|p| p.name == field)
    }

    /// Whether `field` is a scalar field of this type.
    pub fn is_scalar_field(&self, field: Symbol) -> bool {
        self.scalars.contains(&field)
    }

    /// The target type of pointer field `field`, if it is one.
    pub fn pointer_target(&self, field: Symbol) -> Option<&str> {
        self.pointers
            .iter()
            .find(|p| p.name == field)
            .map(|p| p.target.as_str())
    }
}

impl fmt::Display for StructDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "type {} {{", self.name)?;
        for p in &self.pointers {
            writeln!(f, "  ptr {}: {};", p.name, p.target)?;
        }
        for s in &self.scalars {
            writeln!(f, "  data {s};")?;
        }
        for a in self.axioms.iter() {
            writeln!(f, "  axiom {a};")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_decl() -> StructDecl {
        let mut d = StructDecl::new("LLBinaryTree");
        for f in ["L", "R", "N"] {
            d.pointers.push(PointerField {
                name: Symbol::intern(f),
                target: "LLBinaryTree".into(),
            });
        }
        d.scalars.push(Symbol::intern("d"));
        d
    }

    #[test]
    fn field_classification() {
        let d = tree_decl();
        assert!(d.is_pointer_field(Symbol::intern("L")));
        assert!(!d.is_pointer_field(Symbol::intern("d")));
        assert!(d.is_scalar_field(Symbol::intern("d")));
        assert_eq!(d.pointer_target(Symbol::intern("N")), Some("LLBinaryTree"));
        assert_eq!(d.pointer_target(Symbol::intern("zzz")), None);
    }

    #[test]
    fn display_renders_declaration() {
        let s = tree_decl().to_string();
        assert!(s.contains("type LLBinaryTree"));
        assert!(s.contains("ptr L: LLBinaryTree;"));
        assert!(s.contains("data d;"));
    }
}
