//! Statements and programs.
//!
//! The IR supports exactly the constructs the paper's code fragments use:
//! pointer assignment (`p = q`, `p = q->f`, `p = malloc(T)`), scalar reads
//! and writes through pointers (`p->d = e`, `i = p->d`), structural updates
//! (`p->f = q`, which modify the data structure), opaque-condition loops,
//! and blocks. Statements carry optional labels (`S:`, `T:`) so dependence
//! queries can refer to them, mirroring the paper's presentation.
//!
//! The IR is already in the normal form of §4.1: every memory access is a
//! single field relative to a single pointer ("we assume that expressions
//! involving multiple fields have already been simplified into this
//! format" \[HDE+93\]). The parser performs that simplification.

use crate::types::StructDecl;
use apt_regex::Symbol;
use std::fmt;

/// A scalar expression. Scalars never affect points-to facts, so the
/// dependence analysis treats them opaquely; reads through pointers are
/// lifted to [`StmtKind::ScalarRead`] by normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// A scalar variable.
    Var(String),
    /// An opaque side-effect-free call (`fun()` in the paper's Figure 1).
    Call(String),
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Call(name) => write!(f, "{name}()"),
        }
    }
}

/// A statement, optionally labeled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// The label, e.g. `S` in `S: p->d = 100;`.
    pub label: Option<String>,
    /// The operation.
    pub kind: StmtKind,
}

impl Stmt {
    /// An unlabeled statement.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { label: None, kind }
    }

    /// A labeled statement.
    pub fn labeled(label: impl Into<String>, kind: StmtKind) -> Stmt {
        Stmt {
            label: Some(label.into()),
            kind,
        }
    }
}

/// The statement forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `dst = src;` — pointer copy.
    PtrCopy {
        /// Destination pointer variable.
        dst: String,
        /// Source pointer variable.
        src: String,
    },
    /// `dst = src->field;` — pointer load. When `dst == src` this is the
    /// self-relative update the paper exempts from handle creation
    /// (induction variables).
    PtrLoad {
        /// Destination pointer variable.
        dst: String,
        /// Source pointer variable.
        src: String,
        /// The traversed pointer field.
        field: Symbol,
    },
    /// `dst = malloc(ty);` — fresh allocation.
    PtrNew {
        /// Destination pointer variable.
        dst: String,
        /// Structure type allocated.
        ty: String,
    },
    /// `dst = null;`
    PtrNull {
        /// Destination pointer variable.
        dst: String,
    },
    /// `ptr->field = src;` — **structural modification** (§3.4).
    PtrStore {
        /// The modified object.
        ptr: String,
        /// The updated pointer field.
        field: Symbol,
        /// New target (a pointer variable), or `None` for null.
        src: Option<String>,
    },
    /// `ptr->field = expr;` — scalar (data) write.
    ScalarWrite {
        /// The written object.
        ptr: String,
        /// The scalar field.
        field: Symbol,
        /// The written value.
        value: Expr,
    },
    /// `var = ptr->field;` — scalar (data) read.
    ScalarRead {
        /// Destination scalar variable.
        var: String,
        /// The read object.
        ptr: String,
        /// The scalar field.
        field: Symbol,
    },
    /// `var = expr;` — pure scalar assignment.
    ScalarAssign {
        /// Destination scalar variable.
        var: String,
        /// The value.
        value: Expr,
    },
    /// `call f(p, q);` — invoke a procedure with pointer arguments
    /// (by value: the callee cannot rebind the caller's variables, but it
    /// can modify the structures they point to).
    Call {
        /// Callee name.
        callee: String,
        /// Pointer-variable arguments.
        args: Vec<String>,
    },
    /// `reassert;` — the programmer asserts that the declared structure
    /// invariants hold again (e.g. an insertion completed), re-enabling
    /// axioms that stores had made suspect (§3.4). Collected access paths
    /// remain invalidated.
    Reassert,
    /// `loop { body }` — a loop with an opaque condition; the analysis
    /// treats the trip count as unknown.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `if { then } else { other }` — opaque condition.
    If {
        /// Taken branch.
        then_branch: Block,
        /// Untaken branch (possibly empty).
        else_branch: Block,
    },
}

/// A statement sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Block {
        Block::default()
    }

    /// Depth-first search for a labeled statement.
    pub fn find_labeled(&self, label: &str) -> Option<&Stmt> {
        for s in &self.stmts {
            if s.label.as_deref() == Some(label) {
                return Some(s);
            }
            match &s.kind {
                StmtKind::Loop { body } => {
                    if let Some(found) = body.find_labeled(label) {
                        return Some(found);
                    }
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                } => {
                    if let Some(found) = then_branch
                        .find_labeled(label)
                        .or_else(|| else_branch.find_labeled(label))
                    {
                        return Some(found);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

/// A procedure: typed pointer parameters plus a body.
#[derive(Debug, Clone)]
pub struct Proc {
    /// Procedure name.
    pub name: String,
    /// `(variable, type)` pointer parameters.
    pub params: Vec<(String, String)>,
    /// The body.
    pub body: Block,
}

/// A whole program: type declarations plus procedures.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Structure types by declaration order.
    pub types: Vec<StructDecl>,
    /// Procedures by declaration order.
    pub procs: Vec<Proc>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a type by name.
    pub fn type_decl(&self, name: &str) -> Option<&StructDecl> {
        self.types.iter().find(|t| t.name == name)
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&Proc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The union of all axioms attached to all types.
    pub fn all_axioms(&self) -> apt_axioms::AxiomSet {
        self.types
            .iter()
            .flat_map(|t| t.axioms.iter().cloned())
            .collect()
    }
}

fn fmt_block(b: &Block, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    for s in &b.stmts {
        if let Some(l) = &s.label {
            write!(f, "{pad}{l}: ")?;
        } else {
            write!(f, "{pad}")?;
        }
        match &s.kind {
            StmtKind::PtrCopy { dst, src } => writeln!(f, "{dst} = {src};")?,
            StmtKind::PtrLoad { dst, src, field } => writeln!(f, "{dst} = {src}->{field};")?,
            StmtKind::PtrNew { dst, ty } => writeln!(f, "{dst} = malloc({ty});")?,
            StmtKind::PtrNull { dst } => writeln!(f, "{dst} = null;")?,
            StmtKind::PtrStore { ptr, field, src } => match src {
                Some(s) => writeln!(f, "{ptr}->{field} = {s};")?,
                None => writeln!(f, "{ptr}->{field} = null;")?,
            },
            StmtKind::ScalarWrite { ptr, field, value } => {
                writeln!(f, "{ptr}->{field} = {value};")?
            }
            StmtKind::ScalarRead { var, ptr, field } => writeln!(f, "{var} = {ptr}->{field};")?,
            StmtKind::ScalarAssign { var, value } => writeln!(f, "{var} = {value};")?,
            StmtKind::Call { callee, args } => writeln!(f, "call {callee}({});", args.join(", "))?,
            StmtKind::Reassert => writeln!(f, "reassert;")?,
            StmtKind::Loop { body } => {
                writeln!(f, "loop {{")?;
                fmt_block(body, f, depth + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            StmtKind::If {
                then_branch,
                else_branch,
            } => {
                writeln!(f, "if {{")?;
                fmt_block(then_branch, f, depth + 1)?;
                if !else_branch.stmts.is_empty() {
                    writeln!(f, "{pad}}} else {{")?;
                    fmt_block(else_branch, f, depth + 1)?;
                }
                writeln!(f, "{pad}}}")?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(v, t)| format!("{v}: {t}"))
            .collect();
        writeln!(f, "proc {}({}) {{", self.name, params.join(", "))?;
        fmt_block(&self.body, f, 1)?;
        write!(f, "}}")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.types {
            writeln!(f, "{t}")?;
            writeln!(f)?;
        }
        for p in &self.procs {
            writeln!(f, "{p}")?;
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_labeled_searches_nested_blocks() {
        let inner = Stmt::labeled(
            "S",
            StmtKind::ScalarWrite {
                ptr: "p".into(),
                field: Symbol::intern("d"),
                value: Expr::Int(1),
            },
        );
        let body: Block = [inner].into_iter().collect();
        let looped = Stmt::new(StmtKind::Loop { body });
        let top: Block = [looped].into_iter().collect();
        assert!(top.find_labeled("S").is_some());
        assert!(top.find_labeled("T").is_none());
    }

    #[test]
    fn program_lookups() {
        let mut prog = Program::new();
        prog.types.push(StructDecl::new("T"));
        prog.procs.push(Proc {
            name: "main".into(),
            params: vec![("root".into(), "T".into())],
            body: Block::new(),
        });
        assert!(prog.type_decl("T").is_some());
        assert!(prog.type_decl("U").is_none());
        assert!(prog.proc("main").is_some());
    }

    #[test]
    fn display_round_trips_shape() {
        let s = Stmt::labeled(
            "S",
            StmtKind::PtrLoad {
                dst: "p".into(),
                src: "root".into(),
                field: Symbol::intern("L"),
            },
        );
        let p = Proc {
            name: "subr".into(),
            params: vec![("root".into(), "T".into())],
            body: [s].into_iter().collect(),
        };
        let text = p.to_string();
        assert!(text.contains("proc subr(root: T)"));
        assert!(text.contains("S: p = root->L;"));
    }
}
