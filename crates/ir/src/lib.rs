//! A miniature imperative pointer IR.
//!
//! Part of the APT reproduction (Hummel, Hendren & Nicolau, PLDI 1994). The
//! paper's prototype consumed C programs through a McCAT-style front-end
//! that normalized every memory access into the `S: … p->f …` form of §4.1;
//! this crate plays that role for the reproduction. It provides:
//!
//! * [`StructDecl`] — structure types with pointer/scalar fields and the
//!   aliasing axioms the paper attaches to type declarations (Figure 3);
//! * [`Program`]/[`Proc`]/[`Stmt`] — the statement forms the paper's
//!   fragments use, with structural modifications ([`StmtKind::PtrStore`])
//!   distinguished from data writes;
//! * [`parse_program`] — a front-end for a C-like concrete syntax that
//!   normalizes multi-field chains into single-field statements during
//!   parsing.
//!
//! The access-path analysis over this IR lives in `apt-paths`.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = apt_ir::parse_program(r"
//!     type List {
//!         ptr next: List;
//!         data val;
//!         axiom A1: forall p <> q, p.next <> q.next;
//!     }
//!     proc walk(head: List) {
//!         p = head;
//!         loop {
//!             p = p->next;
//!         U:  p->val = fun();
//!         }
//!     }
//! ")?;
//! assert_eq!(program.type_decl("List").unwrap().axioms.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parse;
mod types;

pub use ast::{Block, Expr, Proc, Program, Stmt, StmtKind};
pub use parse::{parse_program, ParseProgramError};
pub use types::{PointerField, StructDecl};
