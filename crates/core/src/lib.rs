//! **APT** — the Axiom-based Pointer Test of Hummel, Hendren & Nicolau,
//! *A General Data Dependence Test for Dynamic, Pointer-Based Data
//! Structures* (PLDI 1994).
//!
//! APT decides whether two pointer-based memory references can touch the
//! same heap location. Its two inputs (§3) are:
//!
//! 1. **aliasing axioms** describing uniform properties of the data
//!    structure (`apt-axioms`), and
//! 2. **access paths** for the two references — regular expressions rooted
//!    at fixed *handle* vertices.
//!
//! The tester applies the axioms to the access paths, searching for a proof
//! that the paths can never reach the same vertex. It returns **No** with a
//! machine-checkable [`Proof`] when such a proof exists, **Yes** when the
//! references definitely coincide, and **Maybe** otherwise.
//!
//! # Quick start
//!
//! ```
//! use apt_axioms::adds::leaf_linked_tree_axioms;
//! use apt_core::{AccessPath, Answer, DepTest, Handle, HandleRelation, MemRef};
//! use apt_regex::Path;
//!
//! // The paper's §3.3 example on the Figure 3 leaf-linked binary tree:
//! // S: p->d = 100   where p = root.L.L.N
//! // T: return q->d  where q = root.R.N → anchored as root.L.R.N
//! let axioms = leaf_linked_tree_axioms();
//! let tester = DepTest::new(&axioms);
//! let hroot = Handle::for_variable("root");
//! let s = MemRef::new(AccessPath::new(hroot.clone(), Path::parse("L.L.N").unwrap()), "d");
//! let t = MemRef::new(AccessPath::new(hroot, Path::parse("L.R.N").unwrap()), "d");
//!
//! let outcome = tester.test(&s, &t, HandleRelation::Same);
//! assert_eq!(outcome.answer, Answer::No);
//! println!("{}", outcome.proofs[0]); // the paper's paraphrased proof
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod config;
mod deptest;
pub mod dyck;
mod engine;
mod goal;
mod handle;
mod portfolio;
mod proof;
mod prover;
pub mod refuter;
pub mod telemetry;
mod verdict;

pub use check::{check_proof, ProofError};
pub use config::{Budget, CancelToken, CutoffStats, ProverConfig, ProverStats};
pub use deptest::{
    AccessPath, Answer, DepTest, FieldLayout, LayoutError, MemRef, Reason, TestOutcome,
};
pub use engine::{
    CacheExport, CacheStats, DepEngine, DepQuery, FailedGoalSample, GoalEntry, ImportStats,
    Outcome, QueryKind, SubsetEntry, FAILED_SNAPSHOT_CAP, INLINE_BATCH_THRESHOLD,
};
pub use goal::{Goal, Origin};
pub use handle::{Handle, HandleRelation};
pub use portfolio::{
    EngineKind, EngineSelection, EngineTally, Portfolio, PortfolioConfig, PortfolioStats,
    TallySink, Witness,
};
pub use proof::{PrefixCase, Proof, Rule};
pub use prover::Prover;
pub use telemetry::{peak_rss_kb, MemorySample};
pub use verdict::{MaybeReason, SearchLimit, Verdict};
