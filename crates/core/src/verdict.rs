//! Structured prover outcomes.
//!
//! A plain `Option<Proof>` cannot tell a caller *why* there is no proof —
//! a genuine "the axioms don't decide this" looks identical to "the fuel
//! ran out three levels deep". [`Verdict`] and [`MaybeReason`] make the
//! distinction explicit, which is what lets the CLI report degradation
//! honestly and lets callers retry with a bigger [`crate::Budget`] only
//! when retrying could help.

use crate::deptest::Answer;
use std::fmt;

/// Which search-shaped limit was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchLimit {
    /// The goal-attempt fuel ran out.
    Fuel,
    /// The proof-tree depth bound was reached.
    Depth,
    /// The equality-rewrite bound was reached.
    Rewrites,
}

impl fmt::Display for SearchLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchLimit::Fuel => write!(f, "fuel"),
            SearchLimit::Depth => write!(f, "depth"),
            SearchLimit::Rewrites => write!(f, "rewrites"),
        }
    }
}

/// Why an answer is *Maybe* rather than a definite Yes/No.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaybeReason {
    /// A search limit (fuel, depth, or rewrites) was exhausted; a larger
    /// budget might still decide the query.
    SearchExhausted(SearchLimit),
    /// The wall-clock deadline passed mid-search.
    DeadlineExceeded,
    /// The DFA state budget stopped a subset construction.
    RegexBudget,
    /// The caller cancelled the query.
    Cancelled,
    /// The search ran to completion without resource pressure: the axiom
    /// set simply does not decide the query.
    GenuinelyUnknown,
}

impl MaybeReason {
    /// Whether a retry with a larger budget could change the answer.
    pub fn is_degraded(&self) -> bool {
        !matches!(self, MaybeReason::GenuinelyUnknown)
    }

    /// A stable machine-readable code for wire protocols (the serving
    /// layer's JSON frames); round-trips through
    /// [`MaybeReason::from_code`].
    pub fn code(&self) -> &'static str {
        match self {
            MaybeReason::SearchExhausted(SearchLimit::Fuel) => "fuel",
            MaybeReason::SearchExhausted(SearchLimit::Depth) => "depth",
            MaybeReason::SearchExhausted(SearchLimit::Rewrites) => "rewrites",
            MaybeReason::DeadlineExceeded => "deadline",
            MaybeReason::RegexBudget => "regex_budget",
            MaybeReason::Cancelled => "cancelled",
            MaybeReason::GenuinelyUnknown => "unknown",
        }
    }

    /// Parses a [`MaybeReason::code`] string back to the reason.
    pub fn from_code(code: &str) -> Option<MaybeReason> {
        Some(match code {
            "fuel" => MaybeReason::SearchExhausted(SearchLimit::Fuel),
            "depth" => MaybeReason::SearchExhausted(SearchLimit::Depth),
            "rewrites" => MaybeReason::SearchExhausted(SearchLimit::Rewrites),
            "deadline" => MaybeReason::DeadlineExceeded,
            "regex_budget" => MaybeReason::RegexBudget,
            "cancelled" => MaybeReason::Cancelled,
            "unknown" => MaybeReason::GenuinelyUnknown,
            _ => return None,
        })
    }
}

impl fmt::Display for MaybeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaybeReason::SearchExhausted(limit) => write!(f, "search exhausted: {limit}"),
            MaybeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            MaybeReason::RegexBudget => write!(f, "DFA state budget exhausted"),
            MaybeReason::Cancelled => write!(f, "cancelled"),
            MaybeReason::GenuinelyUnknown => write!(f, "axioms do not decide the query"),
        }
    }
}

/// A dependence answer together with its degradation pedigree.
///
/// The soundness contract: `reason` is `Some` **iff** `answer` is
/// [`Answer::Maybe`]; resource exhaustion can only ever weaken a verdict
/// to Maybe, never produce a wrong Yes/No.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The three-valued dependence answer.
    pub answer: Answer,
    /// For Maybe: why. `None` for definite answers.
    pub reason: Option<MaybeReason>,
}

impl Verdict {
    /// A definite answer (Yes or No).
    ///
    /// # Panics
    ///
    /// Panics if called with [`Answer::Maybe`] — use [`Verdict::maybe`].
    pub fn definite(answer: Answer) -> Verdict {
        assert!(
            answer != Answer::Maybe,
            "definite verdicts need a Yes/No answer"
        );
        Verdict {
            answer,
            reason: None,
        }
    }

    /// A Maybe with its reason.
    pub fn maybe(reason: MaybeReason) -> Verdict {
        Verdict {
            answer: Answer::Maybe,
            reason: Some(reason),
        }
    }

    /// Whether this Maybe was forced by resource exhaustion.
    pub fn is_degraded(&self) -> bool {
        self.reason.is_some_and(|r| r.is_degraded())
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            Some(reason) => write!(f, "{:?} ({reason})", self.answer),
            None => write!(f, "{:?}", self.answer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_invariant_and_display() {
        let v = Verdict::maybe(MaybeReason::DeadlineExceeded);
        assert_eq!(v.answer, Answer::Maybe);
        assert!(v.is_degraded());
        assert_eq!(v.to_string(), "Maybe (deadline exceeded)");

        let d = Verdict::definite(Answer::No);
        assert!(!d.is_degraded());
        assert_eq!(d.to_string(), "No");

        let u = Verdict::maybe(MaybeReason::GenuinelyUnknown);
        assert!(!u.is_degraded());
    }

    #[test]
    #[should_panic(expected = "definite verdicts need")]
    fn definite_rejects_maybe() {
        let _ = Verdict::definite(Answer::Maybe);
    }
}
