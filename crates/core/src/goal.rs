//! Proof goals.
//!
//! Every intermediate statement the prover manipulates is a *disjointness
//! goal*: either `∀x, x.A <> x.B` (the two path sets never meet when rooted
//! at a common vertex) or `∀x<>y, x.A <> y.B` (never meet when rooted at
//! distinct vertices). These correspond one-to-one to the two theorem forms
//! of the paper's `proveDisj` steps A and B (Figure 5).

use apt_regex::Path;
use std::fmt;

/// The origin relationship between the two paths of a goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Both paths start at the same (universally quantified) vertex.
    Same,
    /// The paths start at distinct vertices.
    Distinct,
}

/// A disjointness goal `∀x[,y], x.a <> [x|y].b`.
///
/// Disjointness is symmetric, so goals are kept in a canonical order (the
/// structurally smaller path first, per [`Path`]'s `Ord`); this halves the
/// proof cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Goal {
    origin: Origin,
    a: Path,
    b: Path,
}

impl Goal {
    /// Creates a goal, canonicalizing the symmetric path order.
    ///
    /// Ordering is structural (field components compare by name), so
    /// canonicalization never formats either path — goals on the prover's
    /// hot path are built without string allocation.
    pub fn new(origin: Origin, a: Path, b: Path) -> Goal {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        Goal { origin, a, b }
    }

    /// The origin relationship.
    pub fn origin(&self) -> Origin {
        self.origin
    }

    /// The first path (canonical order).
    pub fn a(&self) -> &Path {
        &self.a
    }

    /// The second path (canonical order).
    pub fn b(&self) -> &Path {
        &self.b
    }

    /// Total component count of both paths — the recursion measure used by
    /// the fuel accounting.
    pub fn weight(&self) -> usize {
        self.a.size() + self.b.size()
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.origin {
            Origin::Same => write!(f, "forall x, x.{} <> x.{}", self.a, self.b),
            Origin::Distinct => write!(f, "forall x <> y, x.{} <> y.{}", self.a, self.b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goals_canonicalize_symmetrically() {
        let p = Path::parse("L.L.N").unwrap();
        let q = Path::parse("L.R.N").unwrap();
        let g1 = Goal::new(Origin::Same, p.clone(), q.clone());
        let g2 = Goal::new(Origin::Same, q, p);
        assert_eq!(g1, g2);
    }

    #[test]
    fn origin_distinguishes_goals() {
        let p = Path::parse("L").unwrap();
        let q = Path::parse("R").unwrap();
        let g1 = Goal::new(Origin::Same, p.clone(), q.clone());
        let g2 = Goal::new(Origin::Distinct, p, q);
        assert_ne!(g1, g2);
    }

    #[test]
    fn display_forms() {
        let g = Goal::new(
            Origin::Same,
            Path::parse("L").unwrap(),
            Path::parse("R").unwrap(),
        );
        assert_eq!(g.to_string(), "forall x, x.L <> x.R");
        let d = Goal::new(
            Origin::Distinct,
            Path::parse("N").unwrap(),
            Path::parse("N").unwrap(),
        );
        assert_eq!(d.to_string(), "forall x <> y, x.N <> y.N");
    }
}
